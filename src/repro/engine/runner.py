"""The batched sweep runner.

:func:`run_one` solves a single :class:`~repro.engine.spec.RunSpec`
cell — look up the cell's :class:`~repro.engine.tasks.base.TaskAdapter`,
rebuild the instance from its spec, fingerprint it, consult the cache,
otherwise time the adapter's ``solve`` and wrap its metric payload in a
flat, JSON-able :class:`RunRecord`.

:func:`run_sweep` executes many cells:

* ``workers <= 1`` — inline, in deterministic grid order (what the
  benchmarks use: no process noise in timings);
* ``workers > 1`` — chunked pool on an explicit *spawn* context
  (fork-safety: workers never inherit parent heap state, so the same
  sweep behaves identically on Linux and macOS).  The pool is capped at
  the number of cells — a sweep smaller than ``--workers`` never spawns
  idle processes.  Workers rebuild instances from their specs (specs
  pickle, instances never cross the pipe) and share any *disk-backed*
  cache through the filesystem; the parent folds returned records into
  its in-memory cache afterwards, so a re-run in the same process is
  pure cache hits either way.

Aggregation groups records per grid cell and summarises cost, oracle
work, and wall time with :func:`repro.analysis.stats.summarize`,
rendering through :func:`repro.analysis.tables.format_table` — the same
row/series structure EXPERIMENTS.md records.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.engine.cache import ResultCache
from repro.engine.spec import RunSpec, SweepSpec
from repro.engine.tasks import get_task

__all__ = ["RunRecord", "SweepResult", "run_one", "run_sweep"]


@dataclass
class RunRecord:
    """Flat digest of one solved cell (JSON-able, pickle-friendly)."""

    family: str
    n_jobs: int
    n_processors: int
    horizon: int
    method: str
    trial: int
    seed: int
    fingerprint: str
    cost: float
    utility: float
    oracle_work: int
    n_chosen: int
    wall_time: float
    cache_hit: bool = False
    task: str = "schedule_all"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def cell(self) -> tuple:
        """Aggregation key: the grid cell this record belongs to."""
        return (self.task, self.family, self.n_jobs, self.n_processors,
                self.horizon, self.method)

    def instance_cell(self) -> tuple:
        """Identity of the underlying instance (method-agnostic)."""
        return (self.task, self.family, self.n_jobs, self.n_processors,
                self.horizon, self.trial, self.fingerprint)


_PAYLOAD_FIELDS = ("cost", "utility", "oracle_work", "n_chosen", "wall_time")


def run_one(spec: RunSpec, cache: Optional[ResultCache] = None) -> RunRecord:
    """Solve one cell, consulting *cache* by task × instance hash × method."""
    adapter = get_task(spec.task)
    instance = adapter.build(spec)
    fingerprint = adapter.fingerprint(instance)
    base = dict(
        family=spec.family, n_jobs=spec.n_jobs, n_processors=spec.n_processors,
        horizon=spec.horizon, method=spec.method, trial=spec.trial, seed=spec.seed,
        fingerprint=fingerprint, task=spec.task,
    )
    key = ResultCache.key_for(fingerprint, spec.method, spec.task)
    if cache is not None:
        payload = cache.get(key)
        # Stale/foreign mirror entries missing fields are misses too.
        if payload is not None and all(f in payload for f in _PAYLOAD_FIELDS):
            return RunRecord(
                **base, **{f: payload[f] for f in _PAYLOAD_FIELDS}, cache_hit=True
            )
    t0 = time.perf_counter()
    solved = adapter.solve(instance, spec)
    wall_time = time.perf_counter() - t0
    payload = dict(
        cost=float(solved["cost"]),
        utility=float(solved["utility"]),
        oracle_work=int(solved["oracle_work"]),
        n_chosen=int(solved["n_chosen"]),
        wall_time=wall_time,
    )
    if cache is not None:
        cache.put(key, payload)
    return RunRecord(**base, **payload)


def _progress_line(done: int, total: int, record: RunRecord) -> str:
    """One per-cell progress row (``repro sweep --verbose``)."""
    outcome = (
        "cache hit" if record.cache_hit else f"{record.wall_time:.3f}s"
    )
    return (
        f"[{done}/{total}] {record.task}/{record.family} "
        f"{record.n_jobs}x{record.n_processors}x{record.horizon} "
        f"{record.method} t{record.trial}: cost={record.cost:.6g} "
        f"oracle={record.oracle_work} ({outcome})"
    )


# -- multiprocessing plumbing ----------------------------------------------

_worker_cache: Optional[ResultCache] = None


def _init_worker(cache_path: Optional[str]) -> None:
    global _worker_cache
    _worker_cache = ResultCache(cache_path) if cache_path else None


def _run_one_worker(spec: RunSpec) -> RunRecord:
    return run_one(spec, _worker_cache)


@dataclass
class SweepResult:
    """All records of one sweep plus aggregation/rendering helpers."""

    records: List[RunRecord]
    sweep: Optional[SweepSpec] = None

    def aggregate(self) -> List[Dict[str, Any]]:
        """Per-cell summary rows in first-seen (grid) order."""
        groups: Dict[tuple, List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.cell(), []).append(record)
        rows = []
        for (task, family, n, p, h, method), cell_records in groups.items():
            costs = summarize([r.cost for r in cell_records])
            work = summarize([float(r.oracle_work) for r in cell_records])
            times = summarize([r.wall_time for r in cell_records])
            rows.append(
                {
                    "task": task, "family": family, "n_jobs": n,
                    "n_processors": p, "horizon": h, "method": method,
                    "trials": costs.count,
                    "mean_cost": costs.mean, "max_cost": costs.maximum,
                    "mean_oracle_work": work.mean, "mean_time": times.mean,
                    "cache_hits": sum(1 for r in cell_records if r.cache_hit),
                }
            )
        return rows

    def to_table(self, title: Optional[str] = None) -> str:
        rows = self.aggregate()
        return format_table(
            ["task", "family", "n", "p", "h", "method", "trials", "mean cost",
             "mean oracle work", "mean time s", "cached"],
            [
                [r["task"], r["family"], r["n_jobs"], r["n_processors"],
                 r["horizon"], r["method"], r["trials"], r["mean_cost"],
                 r["mean_oracle_work"], r["mean_time"], r["cache_hits"]]
                for r in rows
            ],
            title=title,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "records": [r.to_dict() for r in self.records],
            "aggregate": self.aggregate(),
        }
        if self.sweep is not None:
            out["sweep"] = self.sweep.to_dict()
        return out

    def methods_agree(self, tolerance: float = 1e-6) -> bool:
        """True iff every instance got the same cost from every method.

        The Theorem 2.2.1 engines are interchangeable; a disagreement
        means an engine bug, so sweeps over several methods should
        assert this (E12 does).
        """
        by_instance: Dict[tuple, set] = {}
        for record in self.records:
            by_instance.setdefault(record.instance_cell(), set()).add(
                round(record.cost / tolerance) * tolerance
            )
        return all(len(costs) == 1 for costs in by_instance.values())


def run_sweep(
    sweep: Union[SweepSpec, Sequence[RunSpec]],
    *,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    chunk_size: Optional[int] = None,
    verbose: bool = False,
    progress_stream: Optional[TextIO] = None,
) -> SweepResult:
    """Execute a sweep; returns records in deterministic grid order.

    Parameters
    ----------
    sweep:
        A :class:`SweepSpec` (expanded here) or an explicit cell list.
    workers:
        ``<= 1`` runs inline; otherwise a pool of ``min(workers,
        len(cells))`` processes on an explicit spawn context.  Results
        are identical either way — instances are rebuilt
        deterministically from specs in both paths.
    cache:
        Optional :class:`ResultCache`.  Inline runs consult it per cell;
        pool runs share its *disk* mirror (if any) and fold fresh
        records back into it.
    chunk_size:
        Pool chunking override; defaults to an even split, ~4 chunks per
        worker to smooth out cell-size skew.
    verbose:
        Emit one progress line per finished cell (``repro sweep
        --verbose``) to *progress_stream* (default stderr), so long
        grids show where they are instead of going silent.  Pool runs
        stream results in grid order, so the counter is monotone there
        too.
    progress_stream:
        Where verbose lines go; ``None`` means ``sys.stderr``.
    """
    spec_obj = sweep if isinstance(sweep, SweepSpec) else None
    specs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
    out = progress_stream if progress_stream is not None else sys.stderr

    def note(done: int, record: RunRecord) -> None:
        if verbose:
            print(_progress_line(done, len(specs), record), file=out, flush=True)

    if workers <= 1 or len(specs) <= 1:
        records = []
        for spec in specs:
            records.append(run_one(spec, cache))
            note(len(records), records[-1])
        return SweepResult(records=records, sweep=spec_obj)

    n_workers = min(workers, len(specs))
    if chunk_size is None:
        chunk_size = max(1, len(specs) // (n_workers * 4))
    cache_path = cache.path if cache is not None else None
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(
        processes=n_workers, initializer=_init_worker, initargs=(cache_path,)
    ) as pool:
        records = []
        for record in pool.imap(_run_one_worker, specs, chunksize=chunk_size):
            records.append(record)
            note(len(records), record)
    if cache is not None:
        for record in records:
            if not record.cache_hit:
                cache.put(
                    ResultCache.key_for(record.fingerprint, record.method, record.task),
                    {f: getattr(record, f) for f in _PAYLOAD_FIELDS},
                )
    return SweepResult(records=records, sweep=spec_obj)
