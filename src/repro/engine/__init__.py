"""Batched experiment engine.

The benchmarks and EXPERIMENTS.md tables all follow one shape — sweep a
parameter grid (jobs, processors, horizon, workload family, solver
engine) over several seeded trials, solve each instance, and aggregate
cost / oracle-work / wall-time per grid cell.  This package turns that
shape into a subsystem instead of per-file loops:

:mod:`repro.engine.spec`
    :class:`SweepSpec` (the grid) expanding to picklable
    :class:`RunSpec` cells, plus the workload-family registry that turns
    a spec into a concrete :class:`~repro.scheduling.instance.ScheduleInstance`
    deterministically.
:mod:`repro.engine.hashing`
    Stable fingerprints for instances and run specs (cache keys,
    provenance in result records).
:mod:`repro.engine.cache`
    Per-instance result cache (in-memory, optionally disk-backed) keyed
    by ``instance fingerprint × solver method``.
:mod:`repro.engine.runner`
    :func:`run_sweep` — executes the cells inline or with chunked
    ``multiprocessing`` workers, merges cached results, and aggregates
    records into the :mod:`repro.analysis.tables` format.

The CLI's ``repro sweep`` subcommand and the E2/E12 benchmarks are thin
wrappers over :func:`run_sweep`.
"""

from repro.engine.cache import ResultCache
from repro.engine.hashing import instance_fingerprint, spec_fingerprint
from repro.engine.runner import RunRecord, SweepResult, run_one, run_sweep
from repro.engine.spec import FAMILIES, RunSpec, SweepSpec, build_instance

__all__ = [
    "FAMILIES",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "SweepResult",
    "SweepSpec",
    "build_instance",
    "instance_fingerprint",
    "run_one",
    "run_sweep",
    "spec_fingerprint",
]
