"""Batched experiment engine.

The benchmarks and EXPERIMENTS.md tables all follow one shape — sweep a
parameter grid over workload families, solver methods, and seeded
trials, solve each instance, and aggregate cost / oracle-work /
wall-time per grid cell.  This package turns that shape into a
subsystem instead of per-file loops:

:mod:`repro.engine.tasks`
    The pluggable :class:`TaskAdapter` registry — one adapter per solver
    family (``schedule_all``, ``prize_collecting``, ``secretary``,
    ``knapsack_secretary``), each knowing how to build, fingerprint, and
    solve one grid cell.
:mod:`repro.engine.spec`
    :class:`SweepSpec` (the grid) expanding to picklable
    :class:`RunSpec` cells, validated against the cell task's adapter.
:mod:`repro.engine.hashing`
    Stable fingerprints for instances and run specs (cache keys,
    provenance in result records and bench baselines).
:mod:`repro.engine.cache`
    Per-instance result cache (in-memory, optionally disk-backed) keyed
    by ``task × instance fingerprint × solver method``.
:mod:`repro.engine.runner`
    :func:`run_sweep` — executes the cells inline or with chunked
    spawn-context workers, merges cached results, and aggregates
    records into the :mod:`repro.analysis.tables` format.
:mod:`repro.engine.baseline`
    The ``repro bench`` machinery: curated per-task suites
    (``quick``/``full`` profiles), machine-readable ``BENCH_*.json``
    reports, and tolerance-based comparison against the committed
    baselines under ``benchmarks/baselines/`` (the CI perf gate).

The CLI's ``repro sweep`` / ``repro bench`` subcommands and the
E2/E3/E6/E9/E12 benchmarks are thin wrappers over this package.
"""

from repro.engine.cache import ResultCache
from repro.engine.hashing import instance_fingerprint, spec_fingerprint
from repro.engine.spec import FAMILIES, RunSpec, SweepSpec, build_instance
from repro.engine.runner import RunRecord, SweepResult, run_one, run_sweep
from repro.engine.tasks import TASKS, TaskAdapter, get_task, register_task, task_names
from repro.engine.baseline import (
    PROFILES,
    Tolerances,
    compare_reports,
    default_baseline_path,
    load_report,
    run_bench,
    write_report,
)

__all__ = [
    "FAMILIES",
    "PROFILES",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "SweepResult",
    "SweepSpec",
    "TASKS",
    "TaskAdapter",
    "Tolerances",
    "build_instance",
    "compare_reports",
    "default_baseline_path",
    "get_task",
    "instance_fingerprint",
    "load_report",
    "register_task",
    "run_bench",
    "run_one",
    "run_sweep",
    "spec_fingerprint",
    "task_names",
    "write_report",
]
