"""Per-instance result caching for the sweep runner.

Records are keyed by ``instance fingerprint × solver method`` — the
coordinates that determine a solve's outcome — so re-running a sweep
after editing an aggregation, adding a method, or widening a grid only
pays for the cells that actually changed.  The cache is a plain dict,
optionally mirrored to one JSON file per key under a directory (safe to
commit, diff, or rsync between machines; no pickle).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

__all__ = ["ResultCache"]

_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")


def _filename(key: str) -> str:
    cleaned = "".join(c if c in _SAFE else "_" for c in key)
    return cleaned + ".json"


class ResultCache:
    """In-memory result cache with an optional JSON directory mirror.

    ``hits`` / ``misses`` counters make cache behaviour observable in
    tests and sweep summaries.  Disk entries are loaded lazily on first
    :meth:`get` miss, so pointing the cache at a populated directory is
    enough to resume a sweep.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._store: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path:
            os.makedirs(path, exist_ok=True)

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def key_for(fingerprint: str, method: str, task: str = "schedule_all") -> str:
        return f"{task}.{fingerprint}.{method}"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        record = self._store.get(key)
        if record is None and self.path:
            file_path = os.path.join(self.path, _filename(key))
            if os.path.exists(file_path):
                # A corrupt/partial mirror entry (killed worker, torn
                # copy) is a miss, never a crash: the cell just re-runs.
                try:
                    with open(file_path, "r", encoding="utf-8") as fh:
                        record = json.load(fh)
                except (json.JSONDecodeError, OSError, UnicodeDecodeError):
                    record = None
                if not isinstance(record, dict):
                    record = None
                else:
                    self._store[key] = record
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        self._store[key] = record
        if self.path:
            file_path = os.path.join(self.path, _filename(key))
            tmp_path = file_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp_path, file_path)  # atomic: readers never see partial JSON

    def clear(self) -> None:
        """Drop the in-memory store and counters (disk files are kept)."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
