"""The ``schedule_all`` task — Theorem 2.2.1 through the engine.

This is the original engine path, now expressed as an adapter: the
workload-family registry :data:`FAMILIES` turns a spec into a
:class:`~repro.scheduling.instance.ScheduleInstance` and
:func:`~repro.scheduling.solver.schedule_all_jobs` solves it with the
requested engine (``incremental``/``lazy``/``plain``).

Metric mapping: ``cost`` is the schedule's power cost, ``utility`` the
matching utility reached by the greedy, ``oracle_work`` the solver's
oracle-call count, ``n_chosen`` the number of awake intervals bought.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro.engine.hashing import instance_fingerprint
from repro.engine.tasks.base import TaskAdapter, register_task
from repro.errors import InvalidInstanceError
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.power import AffineCost
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import (
    bursty_arrival_instance,
    bursty_instance,
    heterogeneous_energy_instance,
    random_multi_interval_instance,
    small_certifiable_instance,
)

__all__ = ["FAMILIES", "ScheduleAllAdapter", "build_schedule_instance"]


def _params_dict(params: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return dict(params)


def _build_multi(spec, gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return random_multi_interval_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        windows_per_job=int(p.get("windows_per_job", 2)),
        window_length=int(p.get("window_length", 3)),
        value_spread=float(p.get("value_spread", 1.0)),
        cost_model=AffineCost(float(p.get("restart_cost", 2.0))),
        rng=gen,
    )


def _build_bursty(spec, gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return bursty_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        n_bursts=int(p.get("n_bursts", 3)),
        burst_width=int(p.get("burst_width", 4)),
        value_spread=float(p.get("value_spread", 1.0)),
        cost_model=AffineCost(float(p.get("restart_cost", 4.0))),
        rng=gen,
    )


def _build_bursty_arrivals(spec, gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return bursty_arrival_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        n_bursts=int(p.get("n_bursts", 4)),
        burst_jitter=float(p.get("burst_jitter", 1.5)),
        service_window=int(p.get("service_window", 4)),
        processors_per_job=int(p.get("processors_per_job", 2)),
        value_spread=float(p.get("value_spread", 1.0)),
        cost_model=AffineCost(float(p.get("restart_cost", 2.0))),
        rng=gen,
    )


def _build_hetero_energy(spec, gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return heterogeneous_energy_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        efficiency_spread=float(p.get("efficiency_spread", 4.0)),
        windows_per_job=int(p.get("windows_per_job", 2)),
        window_length=int(p.get("window_length", 3)),
        value_spread=float(p.get("value_spread", 1.0)),
        rng=gen,
    )


def _build_certifiable(spec, gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return small_certifiable_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        int(p.get("n_candidate_intervals", 12)),
        value_spread=float(p.get("value_spread", 1.0)),
        rng=gen,
    )


FAMILIES: Dict[str, Callable[[Any, np.random.Generator], ScheduleInstance]] = {
    "multi": _build_multi,
    "bursty": _build_bursty,
    "bursty_arrivals": _build_bursty_arrivals,
    "hetero_energy": _build_hetero_energy,
    "certifiable": _build_certifiable,
}


def build_schedule_instance(spec) -> ScheduleInstance:
    """Deterministically rebuild a scheduling cell's instance."""
    builder = FAMILIES.get(spec.family)
    if builder is None:
        raise InvalidInstanceError(
            f"unknown workload family {spec.family!r}; known: {sorted(FAMILIES)}"
        )
    return builder(spec, np.random.default_rng(spec.seed))


class ScheduleAllAdapter(TaskAdapter):
    """Schedule-all-jobs (Theorem 2.2.1) over the job-workload families."""

    name = "schedule_all"
    methods = ("incremental", "lazy", "plain")
    methods_interchangeable = True

    def families(self) -> Tuple[str, ...]:
        return tuple(FAMILIES)

    def build(self, spec) -> ScheduleInstance:
        return build_schedule_instance(spec)

    def fingerprint(self, instance: ScheduleInstance) -> str:
        return instance_fingerprint(instance)

    def solve(self, instance: ScheduleInstance, spec) -> Dict[str, Any]:
        result = schedule_all_jobs(instance, method=spec.method)
        return {
            "cost": float(result.cost),
            "utility": float(result.greedy.utility),
            "oracle_work": int(result.oracle_work),
            "n_chosen": len(result.greedy.chosen),
        }


register_task(ScheduleAllAdapter())
