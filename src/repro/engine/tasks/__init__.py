"""Task-adapter registry: the engine's pluggable solver families.

Importing this package registers every built-in adapter:

========================  ====================================================
task                      solves
========================  ====================================================
``schedule_all``          Theorem 2.2.1 — schedule every job (E2/E12)
``prize_collecting``      Theorems 2.3.1/2.3.3 — value threshold Z (E3/E4)
``secretary``             Section 3 — online hiring streams (E6/E7)
``knapsack_secretary``    Section 3.4 — knapsack-constrained hiring (E9)
========================  ====================================================

See :mod:`repro.engine.tasks.base` for the adapter contract and
:data:`TASKS` for the live registry.
"""

from repro.engine.tasks.base import TASKS, TaskAdapter, get_task, register_task, task_names
from repro.engine.tasks.knapsack_secretary import KnapsackSecretaryAdapter
from repro.engine.tasks.prize_collecting import PrizeCollectingAdapter
from repro.engine.tasks.schedule_all import FAMILIES, ScheduleAllAdapter
from repro.engine.tasks.secretary import SecretaryAdapter

__all__ = [
    "FAMILIES",
    "TASKS",
    "TaskAdapter",
    "ScheduleAllAdapter",
    "PrizeCollectingAdapter",
    "SecretaryAdapter",
    "KnapsackSecretaryAdapter",
    "get_task",
    "register_task",
    "task_names",
]
