"""The ``secretary`` task — Section 3's online algorithms through the engine.

A cell's grid triple is read as ``(n, k, aux)``: ``n`` stream elements,
``k`` hires, and ``aux`` an optional family-specific size (coverage
universe / facility clients; 0 picks the family default).  Families are
the stream generators of :mod:`repro.workloads.secretary_streams`
(``additive``/``coverage``/``facility``/``cut``); methods are the
algorithms:

``monotone``
    Algorithm 1, :func:`monotone_submodular_secretary` (1/(7e)).
``nonmonotone``
    Algorithm 2, :func:`nonmonotone_submodular_secretary` (8e^2).
``classical``
    Dynkin's single-hire rule on singleton oracle values (k ignored).
``robust``
    The oblivious top-k rule of Section 3.6 on singleton values.

Metric mapping: ``utility`` is the hired set's value under the *base*
(offline) utility; ``cost`` records the offline benchmark the
competitive ratio divides by — exact top-k for additive streams, the
(1 - 1/e) offline greedy otherwise — so ``utility / cost`` is the
per-record competitive ratio.  ``oracle_work`` counts only the online
algorithm's value queries (the benchmark is computed on the unwrapped
function); ``n_chosen`` is the number of hires.

Stream order and coin flips draw from child seeds hash-derived from the
cell seed, so build and solve are deterministic and independent: two
methods on the same cell interview the same arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Tuple

import numpy as np

from repro.analysis.ratio import offline_greedy_cardinality
from repro.core.functions import AdditiveFunction
from repro.core.oracle import CountingOracle
from repro.core.submodular import SetFunction
from repro.engine.hashing import derive_seed, spec_fingerprint
from repro.engine.tasks.base import TaskAdapter, register_task
from repro.errors import InvalidInstanceError
from repro.secretary.classical import best_among_stream
from repro.secretary.robust import robust_topk_secretary
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import (
    monotone_submodular_secretary,
    nonmonotone_submodular_secretary,
)
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    cut_utility,
    facility_utility,
)

__all__ = ["SecretaryInstance", "SecretaryAdapter"]


@dataclass
class SecretaryInstance:
    """A built secretary cell: the utility plus its provenance and seeds.

    ``benchmarks`` maps hire budgets to the precomputed offline value —
    filled at build time for both ``k`` and 1 (the ``classical`` method's
    budget) so ``solve`` wall times measure only the online algorithm.
    """

    fn: SetFunction
    singleton_values: Dict[Hashable, float]
    k: int
    stream_seed: int
    algo_seed: int
    family: str
    benchmarks: Dict[int, float]

    def fingerprint_payload(self) -> Dict[str, Any]:
        return {"task": "secretary", "family": self.family,
                "utility": self.fn.canonical_payload()}


def _offline_benchmark(fn: SetFunction, k: int) -> float:
    """Offline value the competitive ratio is measured against.

    Additive utilities admit the exact optimum (top-k singletons); other
    families use the offline greedy, whose (1 - 1/e) guarantee keeps the
    measured ratio conservative for monotone utilities.
    """
    if type(fn) is AdditiveFunction:  # subclasses truncate; greedy path
        ranked = sorted((fn.value(frozenset({e})) for e in fn.ground_set), reverse=True)
        return float(sum(ranked[:k]))
    _, value = offline_greedy_cardinality(fn, k)
    return float(value)


class SecretaryAdapter(TaskAdapter):
    """Online secretary algorithms over the stream-utility families."""

    name = "secretary"
    methods = ("monotone", "nonmonotone", "classical", "robust")

    def families(self) -> Tuple[str, ...]:
        return ("additive", "coverage", "facility", "cut")

    def build(self, spec) -> SecretaryInstance:
        params = dict(spec.params)
        n = spec.n_jobs
        aux = spec.horizon
        gen = np.random.default_rng(spec.seed)
        if spec.family == "additive":
            fn, _ = additive_values(
                n, distribution=str(params.get("distribution", "uniform")), rng=gen
            )
        elif spec.family == "coverage":
            universe = aux if aux > 0 else max(1, n // 3)
            fn = coverage_utility(
                n, universe,
                skills_per_secretary=int(params.get("skills_per_secretary", 4)),
                rng=gen,
            )
        elif spec.family == "facility":
            clients = aux if aux > 0 else max(2, n // 4)
            fn = facility_utility(n, clients, rng=gen)
        elif spec.family == "cut":
            fn = cut_utility(
                n, edge_probability=float(params.get("edge_probability", 0.3)), rng=gen
            )
        else:
            raise InvalidInstanceError(
                f"unknown secretary family {spec.family!r}; known: {self.families()}"
            )
        k = max(1, spec.n_processors)
        # Only pay for the offline work this cell's method actually
        # reads: the benchmark for its hire budget, and singleton values
        # only for the raw-value rules.
        budget = 1 if spec.method == "classical" else k
        singles = (
            {e: fn.value(frozenset({e})) for e in sorted(fn.ground_set, key=repr)}
            if spec.method == "robust"
            else {}
        )
        return SecretaryInstance(
            fn=fn,
            singleton_values=singles,
            k=k,
            stream_seed=derive_seed(spec.seed, "secretary-stream"),
            algo_seed=derive_seed(spec.seed, "secretary-algo"),
            family=spec.family,
            benchmarks={budget: _offline_benchmark(fn, budget)},
        )

    def fingerprint(self, instance: SecretaryInstance) -> str:
        return spec_fingerprint(instance.fingerprint_payload())

    def solve(self, instance: SecretaryInstance, spec) -> Dict[str, Any]:
        counting = CountingOracle(instance.fn)
        stream = SecretaryStream(counting, rng=np.random.default_rng(instance.stream_seed))
        k = instance.k
        if spec.method == "monotone":
            selected = monotone_submodular_secretary(stream, k).selected
        elif spec.method == "nonmonotone":
            selected = nonmonotone_submodular_secretary(
                stream, k, rng=np.random.default_rng(instance.algo_seed)
            ).selected
        elif spec.method == "classical":
            k = 1
            hired = best_among_stream(
                iter(stream),
                lambda e: stream.oracle.value(frozenset({e})),
                n_hint=stream.n,
            )
            selected = frozenset() if hired is None else frozenset({hired})
        elif spec.method == "robust":
            selected = robust_topk_secretary(
                stream, instance.singleton_values, k
            ).selected
        else:
            raise InvalidInstanceError(
                f"unknown secretary method {spec.method!r}; known: {self.methods}"
            )
        return {
            "cost": instance.benchmarks[k],
            "utility": float(instance.fn.value(frozenset(selected))),
            "oracle_work": int(counting.calls),
            "n_chosen": len(selected),
        }


register_task(SecretaryAdapter())
