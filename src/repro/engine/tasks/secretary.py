"""The ``secretary`` task — Section 3's online algorithms through the engine.

A cell's grid triple is read as ``(n, k, aux)``: ``n`` stream elements,
``k`` hires, and ``aux`` an optional family-specific size (coverage
universe / facility clients; 0 picks the family default).  Families are
the stream generators of :mod:`repro.workloads.secretary_streams`
(``additive``/``coverage``/``facility``/``cut``), optionally qualified
with an arrival process from the online runtime's registry —
``coverage@bursty`` runs the coverage workload under bursty minibatch
arrivals (plain family names mean ``uniform``, the paper's model) —
and/or a shard count: ``coverage@bursty#4`` drives four policy replicas
over a hash-partitioned stream through the sharded runtime
(:mod:`repro.online.sharding`), merging the per-shard hires under the
hire budget.  A ``>``-suffixed shard qualifier (``coverage#2>4``) adds
a mid-stream topology change: half the stream at 2 shards, a suspended
re-partition to 4, and a resumed finish — the re-sharding path measured
as an ordinary sweep cell.  Methods are the policies of :mod:`repro.online.policies`:

``monotone``
    Algorithm 1, :class:`SegmentedSubmodularPolicy` (1/(7e)).
``nonmonotone``
    Algorithm 2, the random-half configuration of Algorithm 1 (8e^2).
``classical``
    Dynkin's single-hire rule on singleton oracle values (k ignored).
``robust``
    The oblivious top-k rule of Section 3.6 on singleton values.

Metric mapping: ``utility`` is the hired set's value under the *base*
(offline) utility; ``cost`` records the offline benchmark the
competitive ratio divides by — exact top-k for additive streams, the
(1 - 1/e) offline greedy otherwise — so ``utility / cost`` is the
per-record competitive ratio.  ``oracle_work`` counts only the online
algorithm's value queries (the benchmark is computed on the unwrapped
function); ``n_chosen`` is the number of hires.

Stream order and coin flips draw from child seeds hash-derived from the
cell seed, so build and solve are deterministic and independent: two
methods on the same cell interview the same arrival order.  Under the
default uniform process the runtime drives arrivals one at a time and
reproduces the legacy per-algorithm loops bit-identically (hired sets
*and* oracle-call counts — the golden suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.analysis.ratio import offline_greedy_cardinality
from repro.core.functions import AdditiveFunction
from repro.core.oracle import CountingOracle
from repro.core.submodular import SetFunction
from repro.engine.hashing import derive_seed, spec_fingerprint
from repro.engine.tasks.base import TaskAdapter, register_task
from repro.errors import InfeasibleError, InvalidInstanceError
from repro.online.arrivals import arrival_process_names, build_arrival_source
from repro.online.driver import OnlineRun
from repro.online.sharding import ShardCounters, ShardedRun
from repro.online.policies import (
    BestSingletonPolicy,
    RobustTopKPolicy,
    SegmentedSubmodularPolicy,
    nonmonotone_half_policy,
)
from repro.workloads.secretary_streams import STREAM_FAMILIES, stream_utility

__all__ = [
    "SecretaryInstance",
    "SecretaryAdapter",
    "split_family",
    "validate_qualified_families",
]


def split_family(family: str) -> Tuple[str, str, int, Optional[int]]:
    """Parse a qualified family: ``base[@process][#shards[>reshard]]``.

    ``"coverage@bursty#4" -> ("coverage", "bursty", 4, None)``; a plain
    name means the uniform process on a single (unsharded) stream, so
    ``"coverage" -> ("coverage", "uniform", 1, None)``.  The shard
    qualifier selects the sharded runtime
    (:mod:`repro.online.sharding`): S policy replicas over a
    hash-partitioned stream, merged under the task's feasibility
    constraint.  A ``>``-suffixed qualifier — ``coverage#2>4`` — runs
    the stream's first half at S shards, suspends, re-partitions the
    manifest to S' lanes (:func:`repro.online.sharding.reshard_manifest`),
    and resumes to completion: the elastic-topology path as one sweep
    cell.
    """
    spec, _, shard_txt = family.partition("#")
    base, _, process = spec.partition("@")
    shards = 1
    reshard_to: Optional[int] = None
    if shard_txt:
        count_txt, _, reshard_txt = shard_txt.partition(">")
        if not count_txt.isdigit() or int(count_txt) < 1:
            raise InvalidInstanceError(
                f"bad shard qualifier in family {family!r}: "
                f"expected a positive integer after '#', got {count_txt!r}"
            )
        shards = int(count_txt)
        if reshard_txt:
            if not reshard_txt.isdigit() or int(reshard_txt) < 1:
                raise InvalidInstanceError(
                    f"bad reshard qualifier in family {family!r}: "
                    f"expected a positive integer after '>', got "
                    f"{reshard_txt!r}"
                )
            reshard_to = int(reshard_txt)
    return base, (process or "uniform"), shards, reshard_to


def validate_qualified_families(adapter: TaskAdapter, families) -> None:
    """Shared family validation for the ``base[@process][#shards]`` axis.

    The shard count is open-ended, so qualified names are validated by
    parsing rather than by enumerating ``adapter.families()``.
    """
    from repro.online.arrivals import arrival_process_names as _procs

    for family in families:
        base, process, _shards, _reshard = split_family(family)
        # "replay" needs a recorded schedule payload the sweep grid
        # cannot supply, so it is not a valid family qualifier.
        if (
            base not in adapter.base_families
            or process == "replay"
            or process not in _procs()
        ):
            raise InvalidInstanceError(
                f"unknown {adapter.name} workload family {family!r}; "
                f"known: {sorted(adapter.families())} (optionally "
                "'#<shards>'-qualified)"
            )


@dataclass
class SecretaryInstance:
    """A built secretary cell: the utility plus its provenance and seeds.

    ``benchmarks`` maps hire budgets to the precomputed offline value —
    filled at build time for both ``k`` and 1 (the ``classical`` method's
    budget) so ``solve`` wall times measure only the online algorithm.
    ``family`` keeps the full (possibly process-qualified) spec family,
    so fingerprints distinguish ``coverage`` from ``coverage@bursty``;
    ``arrival`` is the parsed process name.
    """

    fn: SetFunction
    singleton_values: Dict[Hashable, float]
    k: int
    stream_seed: int
    algo_seed: int
    family: str
    benchmarks: Dict[int, float]
    arrival: str = "uniform"
    shards: int = 1
    reshard_to: Optional[int] = None

    def fingerprint_payload(self) -> Dict[str, Any]:
        return {"task": "secretary", "family": self.family,
                "utility": self.fn.canonical_payload()}


def _offline_benchmark(fn: SetFunction, k: int) -> float:
    """Offline value the competitive ratio is measured against.

    Additive utilities admit the exact optimum (top-k singletons); other
    families use the offline greedy, whose (1 - 1/e) guarantee keeps the
    measured ratio conservative for monotone utilities.
    """
    if type(fn) is AdditiveFunction:  # subclasses truncate; greedy path
        ranked = sorted((fn.value(frozenset({e})) for e in fn.ground_set), reverse=True)
        return float(sum(ranked[:k]))
    _, value = offline_greedy_cardinality(fn, k)
    return float(value)


class SecretaryAdapter(TaskAdapter):
    """Online secretary policies over the stream-utility families."""

    name = "secretary"
    methods = ("monotone", "nonmonotone", "classical", "robust")
    base_families = STREAM_FAMILIES

    def families(self) -> Tuple[str, ...]:
        extra = tuple(
            p for p in arrival_process_names()
            if p not in ("uniform", "replay")
        )
        return self.base_families + tuple(
            f"{b}@{p}" for b in self.base_families for p in extra
        )

    def validate_families(self, sweep) -> None:
        validate_qualified_families(self, sweep.families)

    def build(self, spec) -> SecretaryInstance:
        params = dict(spec.params)
        n = spec.n_jobs
        aux = spec.horizon
        base, arrival, shards, reshard_to = split_family(spec.family)
        if base not in self.base_families:
            raise InvalidInstanceError(
                f"unknown secretary family {spec.family!r}; known: {self.families()}"
            )
        fn = stream_utility(
            base, n, aux=aux, rng=np.random.default_rng(spec.seed), **params
        )
        k = max(1, spec.n_processors)
        # Only pay for the offline work this cell's method actually
        # reads: the benchmark for its hire budget, and singleton values
        # only for the raw-value rules.
        budget = self._budget(spec, k)
        singles = (
            {e: fn.value(frozenset({e})) for e in sorted(fn.ground_set, key=repr)}
            if spec.method == "robust"
            else {}
        )
        return SecretaryInstance(
            fn=fn,
            singleton_values=singles,
            k=k,
            stream_seed=derive_seed(spec.seed, "secretary-stream"),
            algo_seed=derive_seed(spec.seed, "secretary-algo"),
            family=spec.family,
            benchmarks={budget: _offline_benchmark(fn, budget)},
            arrival=arrival,
            shards=shards,
            reshard_to=reshard_to,
        )

    def fingerprint(self, instance: SecretaryInstance) -> str:
        return spec_fingerprint(instance.fingerprint_payload())

    def _policy(
        self, instance: SecretaryInstance, spec, n: int,
        algo_seed: Optional[int] = None,
    ):
        k = instance.k
        if algo_seed is None:
            algo_seed = instance.algo_seed
        if spec.method == "monotone":
            return SegmentedSubmodularPolicy(k), k
        if spec.method == "nonmonotone":
            coin = bool(np.random.default_rng(algo_seed).random() < 0.5)
            return nonmonotone_half_policy(n, k, coin), k
        if spec.method == "classical":
            return BestSingletonPolicy(strict=True), 1
        if spec.method == "robust":
            return RobustTopKPolicy(instance.singleton_values, k), k
        raise InvalidInstanceError(
            f"unknown secretary method {spec.method!r}; known: {self.methods}"
        )

    def _budget(self, spec, k: int) -> int:
        return 1 if spec.method == "classical" else k

    @staticmethod
    def _reshard_midstream(instance, run, counters, policy_factory):
        """Half-stream S -> S' hop: suspend, re-partition, resume.

        The cell measures the elastic-topology path end to end: the
        first half of the stream runs at ``instance.shards`` lanes, the
        suspended manifest is re-partitioned to ``instance.reshard_to``
        lanes (consumed prefixes and hires pinned, suffix re-hashed
        under a new epoch), and the returned run finishes the stream.
        Returns ``(resumed_run, rebuild_calls)`` — the oracle calls the
        resume's frontier re-reveal billed, which the caller nets out.
        """
        from repro.online.sharding import (
            make_sharded_checkpoint,
            reshard_manifest,
            resume_sharded_run,
        )

        run.run(max(1, sum(r.n for r in run.runs) // 2))
        manifest = make_sharded_checkpoint(run)
        resharded = reshard_manifest(
            manifest, instance.reshard_to, instance.fn,
            policy_factory=policy_factory,
        )
        before = counters.calls
        resumed = resume_sharded_run(
            resharded, instance.fn, oracle_factory=counters
        )
        return resumed, counters.calls - before

    def solve(self, instance: SecretaryInstance, spec) -> Dict[str, Any]:
        def source_factory():
            return build_arrival_source(
                instance.arrival, instance.fn, instance.stream_seed
            )

        budget = self._budget(spec, instance.k)
        if instance.shards == 1 and instance.reshard_to is None:
            source = source_factory()
            counting = CountingOracle(instance.fn)
            policy, _ = self._policy(instance, spec, source.n)
            result = OnlineRun(counting, source, policy).run().result()
            calls = counting.calls
        else:
            # One replica per shard (each laid out over its own shard
            # length, nonmonotone coins flipped per shard), merged under
            # the hire budget; oracle work = shard queries + merge.
            counters = ShardCounters()

            def policy_factory(index, shard):
                policy, _ = self._policy(
                    instance, spec, shard.n,
                    algo_seed=derive_seed(instance.algo_seed, "shard", index),
                )
                return policy

            run = ShardedRun.from_source(
                instance.fn, source_factory, instance.shards, policy_factory,
                oracle_factory=counters, limit=budget,
            )
            rebuild_calls = 0
            if instance.reshard_to is not None:
                run, rebuild_calls = self._reshard_midstream(
                    instance, run, counters, policy_factory
                )
            result = run.run().result()
            # Net out the resume-rebuild reveals (the same netting the
            # session layer does), so a reshard hop's oracle_work is
            # comparable to an uninterrupted sharded run's.
            calls = counters.calls - rebuild_calls + run.merge_calls
        selected = result.selected
        if len(selected) > budget:
            raise InfeasibleError(
                f"hired {len(selected)} > budget {budget} "
                f"({instance.shards}-shard merge)"
            )
        return {
            "cost": instance.benchmarks[budget],
            "utility": float(instance.fn.value(frozenset(selected))),
            "oracle_work": int(calls),
            "n_chosen": len(selected),
        }


register_task(SecretaryAdapter())
