"""The ``knapsack_secretary`` task — Section 3.4 through the engine.

A cell's grid triple is read as ``(n, l, unused)``: ``n`` stream
elements and ``l`` unit-capacity knapsacks, with heterogeneous weight
vectors drawn by :func:`repro.workloads.secretary_streams.knapsack_weights`.
The single method ``online`` runs Theorem 3.1.3's coin-flip rule
(:class:`repro.online.policies.KnapsackSecretaryPolicy`) after Lemma
3.4.1's reduction, driven by the unified online runtime.  The family
may be qualified with an arrival process — ``additive@sorted_desc``
replays the same weights under the adversarial sorted order (plain
``additive`` means ``uniform``, the paper's model, bit-identical to the
pre-runtime stream loop) — and/or a shard count: ``additive@bursty#2``
runs one coin-flip replica per shard of a hash-partitioned stream and
merges the per-shard hires under the reduced single-knapsack capacity
(:mod:`repro.online.sharding`); ``additive#2>4`` adds a mid-stream
re-partition from 2 to 4 lanes through the suspended-manifest reshard
path.

Metric mapping: ``utility`` is the hired set's value, ``cost`` the
hindsight density-greedy estimate of the single-knapsack optimum on the
reduced weights (so ``utility / cost`` is the measured ratio for the
O(l) guarantee), ``oracle_work`` the online rule's value queries,
``n_chosen`` the number of hires.  The adapter asserts per-knapsack
feasibility of the hired set — a violation is an algorithm bug, not a
data point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.oracle import CountingOracle
from repro.core.submodular import SetFunction
from repro.engine.hashing import derive_seed, spec_fingerprint
from repro.engine.tasks.base import TaskAdapter, register_task
from repro.engine.tasks.secretary import split_family, validate_qualified_families
from repro.errors import InfeasibleError, InvalidInstanceError
from repro.online.arrivals import arrival_process_names, build_arrival_source
from repro.online.driver import OnlineRun
from repro.online.policies import KnapsackSecretaryPolicy
from repro.online.runtime import offline_knapsack_estimate
from repro.online.sharding import ShardCounters, ShardedRun, knapsack_constraint
from repro.secretary.knapsack_secretary import reduce_knapsacks_to_one
from repro.workloads.secretary_streams import additive_values, knapsack_weights

__all__ = ["KnapsackSecretaryInstance", "KnapsackSecretaryAdapter"]


@dataclass
class KnapsackSecretaryInstance:
    """A built knapsack-secretary cell: utility, weights, capacities."""

    fn: SetFunction
    weights: Mapping[Hashable, List[float]]
    capacities: List[float]
    stream_seed: int
    algo_seed: int
    family: str
    arrival: str = "uniform"
    shards: int = 1
    reshard_to: Optional[int] = None

    def fingerprint_payload(self) -> Dict[str, Any]:
        return {
            "task": "knapsack_secretary",
            "family": self.family,
            "utility": self.fn.canonical_payload(),
            "weights": {repr(k): v for k, v in self.weights.items()},
            "capacities": self.capacities,
        }


class KnapsackSecretaryAdapter(TaskAdapter):
    """Knapsack-constrained submodular secretary (Theorem 3.1.3)."""

    name = "knapsack_secretary"
    methods = ("online",)
    base_families = ("additive",)

    def families(self) -> Tuple[str, ...]:
        extra = tuple(
            p for p in arrival_process_names()
            if p not in ("uniform", "replay")
        )
        return self.base_families + tuple(
            f"{b}@{p}" for b in self.base_families for p in extra
        )

    def validate_families(self, sweep) -> None:
        validate_qualified_families(self, sweep.families)

    def build(self, spec) -> KnapsackSecretaryInstance:
        params = dict(spec.params)
        n, n_knapsacks = spec.n_jobs, max(1, spec.n_processors)
        base, arrival, shards, reshard_to = split_family(spec.family)
        gen = np.random.default_rng(spec.seed)
        if base != "additive":
            raise InvalidInstanceError(
                f"unknown knapsack_secretary family {spec.family!r}; "
                f"known: {self.families()}"
            )
        fn, _ = additive_values(
            n, distribution=str(params.get("distribution", "uniform")), rng=gen
        )
        weights = knapsack_weights(fn.ground_set, n_knapsacks, rng=gen)
        return KnapsackSecretaryInstance(
            fn=fn,
            weights=weights,
            capacities=[float(params.get("capacity", 1.0))] * n_knapsacks,
            stream_seed=derive_seed(spec.seed, "knapsack-stream"),
            algo_seed=derive_seed(spec.seed, "knapsack-algo"),
            family=spec.family,
            arrival=arrival,
            shards=shards,
            reshard_to=reshard_to,
        )

    def fingerprint(self, instance: KnapsackSecretaryInstance) -> str:
        return spec_fingerprint(instance.fingerprint_payload())

    def solve(self, instance: KnapsackSecretaryInstance, spec) -> Dict[str, Any]:
        fn, weights, caps = instance.fn, instance.weights, instance.capacities
        reduced = reduce_knapsacks_to_one(weights, caps)
        benchmark = offline_knapsack_estimate(
            fn, reduced, sorted(fn.ground_set, key=repr), capacity=1.0
        )
        # Source built over the unwrapped function: sorted-order
        # processes query singleton values to rank arrivals, and that
        # ranking is instance data, not online oracle work.  (The live
        # Generator seed routes through the materializing fallback —
        # bit-identical to the eager builder.)
        def source_factory():
            return build_arrival_source(
                instance.arrival, fn, np.random.default_rng(instance.stream_seed)
            )

        if instance.shards == 1 and instance.reshard_to is None:
            counting = CountingOracle(fn)
            heads = bool(np.random.default_rng(instance.algo_seed).random() < 0.5)
            policy = KnapsackSecretaryPolicy(reduced, heads=heads)
            result = OnlineRun(counting, source_factory(), policy).run().result()
            calls = counting.calls
        else:
            # One coin-flip replica per shard; the merge re-ranks the
            # union of shard hires under the reduced unit capacity, so
            # the merged set inherits Lemma 3.4.1's feasibility.
            counters = ShardCounters()

            def policy_factory(index, shard):
                coin = np.random.default_rng(
                    derive_seed(instance.algo_seed, "shard", index)
                ).random()
                return KnapsackSecretaryPolicy(reduced, heads=bool(coin < 0.5))

            run = ShardedRun.from_source(
                fn, source_factory, instance.shards, policy_factory,
                oracle_factory=counters,
                can_take=knapsack_constraint(reduced, 1.0),
            )
            rebuild_calls = 0
            if instance.reshard_to is not None:
                # Half-stream S -> S' hop: suspend, re-partition, resume
                # (the resumed run re-injects the capacity constraint the
                # manifest cannot serialise).
                from repro.online.sharding import (
                    make_sharded_checkpoint,
                    reshard_manifest,
                    resume_sharded_run,
                )

                run.run(max(1, sum(r.n for r in run.runs) // 2))
                resharded = reshard_manifest(
                    make_sharded_checkpoint(run), instance.reshard_to, fn,
                    policy_factory=policy_factory,
                )
                before = counters.calls
                run = resume_sharded_run(
                    resharded, fn, oracle_factory=counters,
                    can_take=knapsack_constraint(reduced, 1.0),
                )
                rebuild_calls = counters.calls - before
            result = run.run().result()
            # Resume-rebuild reveals netted out, matching the session
            # layer's oracle accounting for suspended runs.
            calls = counters.calls - rebuild_calls + run.merge_calls
        for i, cap in enumerate(caps):
            load = sum(weights[e][i] for e in result.selected)
            if load > cap + 1e-9:
                raise InfeasibleError(
                    f"knapsack {i} overfull: load {load} > capacity {cap}"
                )
        return {
            "cost": float(benchmark),
            "utility": float(fn.value(frozenset(result.selected))),
            "oracle_work": int(calls),
            "n_chosen": len(result.selected),
        }


register_task(KnapsackSecretaryAdapter())
