"""Task adapters: how the engine learns to run a solver family.

The sweep machinery (:mod:`repro.engine.spec`, :mod:`repro.engine.runner`)
knows nothing about scheduling, secretaries, or knapsacks — it expands
grids, derives seeds, consults the cache, and aggregates records.  What
it *means* to build and solve one grid cell is delegated to a
:class:`TaskAdapter` looked up by :attr:`RunSpec.task`:

``build``
    Rebuild the cell's problem instance deterministically from the spec
    alone (specs pickle across workers; instances never do).
``fingerprint``
    A stable content hash of the built instance — the cache key and the
    provenance anchor the bench baselines pin instance generation with.
``solve``
    Run the cell's solver method and digest the outcome into the flat
    metric payload (``cost``/``utility``/``oracle_work``/``n_chosen``)
    every :class:`~repro.engine.runner.RunRecord` carries.  Metric
    semantics are task-defined; each adapter documents its mapping.

Adapters register themselves in :data:`TASKS` at import time (the
package ``__init__`` imports every adapter module), so
``SweepSpec(task="secretary", ...)`` works anywhere the engine does.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.errors import InvalidInstanceError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine.spec import RunSpec, SweepSpec

__all__ = ["TaskAdapter", "TASKS", "register_task", "get_task", "task_names"]


class TaskAdapter(abc.ABC):
    """One solver family the engine can sweep over.

    Subclasses set :attr:`name` (the ``task=`` key), :attr:`methods`
    (valid ``RunSpec.method`` values), and implement the build /
    fingerprint / solve triple.  ``families()`` enumerates the workload
    generators the adapter accepts; the grid triple ``(n_jobs,
    n_processors, horizon)`` is reinterpreted per task (e.g. the
    secretary tasks read it as ``(stream length, hires k, unused)``).
    """

    name: str = ""
    methods: Tuple[str, ...] = ()
    #: True when every method realises the same objective on the same
    #: instance (cost disagreement = engine bug).  Only then is
    #: :meth:`SweepResult.methods_agree` meaningful for this task.
    methods_interchangeable: bool = False

    @abc.abstractmethod
    def families(self) -> Tuple[str, ...]:
        """Workload family names this task accepts in a sweep."""

    @abc.abstractmethod
    def build(self, spec: "RunSpec") -> Any:
        """Deterministically rebuild the cell's instance from its spec."""

    @abc.abstractmethod
    def fingerprint(self, instance: Any) -> str:
        """Stable content hash of a built instance."""

    @abc.abstractmethod
    def solve(self, instance: Any, spec: "RunSpec") -> Dict[str, Any]:
        """Solve one cell; return the flat metric payload.

        Must contain ``cost``, ``utility``, ``oracle_work`` and
        ``n_chosen``.  The runner adds ``wall_time`` around this call.
        """

    def validate(self, sweep: "SweepSpec") -> None:
        """Reject sweeps naming unknown families/methods for this task."""
        self.validate_families(sweep)
        bad = [m for m in sweep.methods if m not in self.methods]
        if bad:
            raise InvalidInstanceError(
                f"unknown {self.name} solver methods {bad}; "
                f"known: {sorted(self.methods)}"
            )

    def validate_families(self, sweep: "SweepSpec") -> None:
        """Family half of :meth:`validate`; adapters with open-ended
        family qualifiers (shard counts) override this alone."""
        known = self.families()
        unknown = [f for f in sweep.families if f not in known]
        if unknown:
            raise InvalidInstanceError(
                f"unknown {self.name} workload families {unknown}; "
                f"known: {sorted(known)}"
            )


TASKS: Dict[str, TaskAdapter] = {}


def register_task(adapter: TaskAdapter) -> TaskAdapter:
    """Add *adapter* to the registry (last registration wins)."""
    if not adapter.name:
        raise InvalidInstanceError("task adapter must have a non-empty name")
    TASKS[adapter.name] = adapter
    return adapter


def get_task(name: str) -> TaskAdapter:
    """Look up a registered adapter or fail with the known names."""
    adapter = TASKS.get(name)
    if adapter is None:
        raise InvalidInstanceError(
            f"unknown task {name!r}; known tasks: {sorted(TASKS)}"
        )
    return adapter


def task_names() -> Tuple[str, ...]:
    """Registered task names, sorted (stable CLI/docs order)."""
    return tuple(sorted(TASKS))
