"""The ``prize_collecting`` task — Theorems 2.3.1 / 2.3.3 through the engine.

Cells reuse the scheduling workload families (the prize-collecting
solvers run on ordinary :class:`~repro.scheduling.instance.ScheduleInstance`
draws) with two extra grid parameters:

``target_fraction`` (default 0.6)
    The value threshold Z as a fraction of the instance's total job
    value — fractional so one parameterisation scales across grid sizes.
``epsilon`` (default 0.25)
    Bicriteria slack for the ``lazy``/``plain`` methods (ignored by
    ``exact``, which derives its own eps per Theorem 2.3.3).

Metric mapping: ``cost`` is the bought intervals' power cost, ``utility``
the job value actually collected, ``oracle_work`` the matching-oracle
call count, ``n_chosen`` the number of intervals bought (top-ups
included for ``exact``).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.engine.hashing import instance_fingerprint
from repro.engine.tasks.base import TaskAdapter, register_task
from repro.engine.tasks.schedule_all import FAMILIES, build_schedule_instance
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.prize_collecting import (
    prize_collecting_exact_value,
    prize_collecting_schedule,
)

__all__ = ["PrizeCollectingAdapter"]


class PrizeCollectingAdapter(TaskAdapter):
    """Prize-collecting scheduling over the job-workload families."""

    name = "prize_collecting"
    methods = ("lazy", "plain", "exact")

    def families(self) -> Tuple[str, ...]:
        return tuple(FAMILIES)

    def build(self, spec) -> ScheduleInstance:
        return build_schedule_instance(spec)

    def fingerprint(self, instance: ScheduleInstance) -> str:
        return instance_fingerprint(instance)

    def solve(self, instance: ScheduleInstance, spec) -> Dict[str, Any]:
        params = dict(spec.params)
        fraction = float(params.get("target_fraction", 0.6))
        target = fraction * instance.total_value()
        if spec.method == "exact":
            result = prize_collecting_exact_value(instance, target)
        else:
            epsilon = float(params.get("epsilon", 0.25))
            result = prize_collecting_schedule(
                instance, target, epsilon, method=spec.method
            )
        return {
            "cost": float(result.cost),
            "utility": float(result.value),
            "oracle_work": int(result.oracle_calls),
            "n_chosen": len(result.greedy.chosen),
        }


register_task(PrizeCollectingAdapter())
