"""Sweep specifications over the pluggable task registry.

A :class:`SweepSpec` is the declarative grid; :meth:`SweepSpec.expand`
turns it into :class:`RunSpec` cells — small frozen dataclasses that
pickle cleanly across ``multiprocessing`` workers.  A cell's instance is
rebuilt from the cell alone (:func:`build_instance`): the cell's
``task`` selects a :class:`~repro.engine.tasks.base.TaskAdapter`, the
family selects one of the adapter's workload generators, and the
hash-derived seed makes the draw deterministic, so workers never ship
instances over pipes and a cache hit never needs the original process.

All methods of one ``(task, family, n_jobs, n_processors, horizon,
trial)`` cell share a seed, hence solve the *same* instance — that is
what makes engine-level agreement checks (E12) meaningful.  The grid
triple's meaning is task-defined; the scheduling tasks read it as
``(jobs, processors, horizon)``, the secretary tasks as ``(stream
length, hires/knapsacks, aux size)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, List, Tuple

from repro.engine.hashing import derive_seed
from repro.engine.tasks import FAMILIES, get_task
from repro.errors import InvalidInstanceError

__all__ = ["FAMILIES", "RunSpec", "SweepSpec", "build_instance"]

Params = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class RunSpec:
    """One grid cell: a concrete instance draw plus a solver method."""

    family: str
    n_jobs: int
    n_processors: int
    horizon: int
    method: str
    trial: int
    seed: int
    params: Params = ()
    task: str = "schedule_all"

    def instance_key(self) -> tuple:
        """Coordinates identifying the instance (method excluded)."""
        return (self.task, self.family, self.n_jobs, self.n_processors,
                self.horizon, self.trial, self.seed, self.params)

    def label(self) -> str:
        prefix = "" if self.task == "schedule_all" else f"{self.task}: "
        return (
            f"{prefix}{self.family} n={self.n_jobs} p={self.n_processors} "
            f"h={self.horizon} t{self.trial} [{self.method}]"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over one task's families and methods.

    ``grid`` entries are ``(n_jobs, n_processors, horizon)`` triples —
    explicit triples rather than a cross product, because feasible
    second coordinates scale with the first.  ``trials`` instances are
    drawn per cell with hash-derived child seeds of ``master_seed``.
    Families and methods are validated against the task's adapter at
    construction time, so a bad sweep fails before any cell runs.
    """

    families: Tuple[str, ...]
    grid: Tuple[Tuple[int, int, int], ...]
    methods: Tuple[str, ...] = ("incremental",)
    trials: int = 3
    master_seed: int = 20100612
    params: Params = ()
    task: str = "schedule_all"

    def __post_init__(self) -> None:
        if not self.families or not self.grid or not self.methods:
            raise InvalidInstanceError("families, grid, and methods must be non-empty")
        if self.trials <= 0:
            raise InvalidInstanceError("trials must be positive")
        adapter = get_task(self.task)  # raises on unknown task
        adapter.validate(self)

    def expand(self) -> List[RunSpec]:
        """All run cells, in deterministic grid order.

        Seeds hash only the cell coordinates (not the task name), so the
        ``schedule_all`` cells of pre-task sweeps rebuild bit-identical
        instances — committed baselines and E2/E12 records stay stable.
        """
        runs: List[RunSpec] = []
        for family, (n, p, h), trial in product(self.families, self.grid, range(self.trials)):
            seed = derive_seed(self.master_seed, family, n, p, h, trial, self.params)
            for method in self.methods:
                runs.append(
                    RunSpec(
                        family=family, n_jobs=n, n_processors=p, horizon=h,
                        method=method, trial=trial, seed=seed, params=self.params,
                        task=self.task,
                    )
                )
        return runs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "families": list(self.families),
            "grid": [list(g) for g in self.grid],
            "methods": list(self.methods),
            "trials": self.trials,
            "master_seed": self.master_seed,
            "params": [list(kv) for kv in self.params],
        }


def build_instance(spec: RunSpec):
    """Deterministically rebuild the cell's instance via its task adapter."""
    return get_task(spec.task).build(spec)
