"""Sweep specifications and the workload-family registry.

A :class:`SweepSpec` is the declarative grid; :meth:`SweepSpec.expand`
turns it into :class:`RunSpec` cells — small frozen dataclasses that
pickle cleanly across ``multiprocessing`` workers.  A cell's instance is
rebuilt from the cell alone (:func:`build_instance`): the family name
selects a generator from :data:`FAMILIES` and the hash-derived seed
makes the draw deterministic, so workers never ship instances over
pipes and a cache hit never needs the original process.

All methods of one ``(family, n_jobs, n_processors, horizon, trial)``
cell share a seed, hence solve the *same* instance — that is what makes
engine-level engine-agreement checks (E12) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.engine.hashing import derive_seed
from repro.errors import InvalidInstanceError
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.power import AffineCost
from repro.workloads.jobs import (
    bursty_arrival_instance,
    bursty_instance,
    heterogeneous_energy_instance,
    random_multi_interval_instance,
    small_certifiable_instance,
)

__all__ = ["FAMILIES", "RunSpec", "SweepSpec", "build_instance"]

_METHODS = ("incremental", "lazy", "plain")

Params = Tuple[Tuple[str, Any], ...]


def _params_dict(params: Params) -> Dict[str, Any]:
    return dict(params)


def _build_multi(spec: "RunSpec", gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return random_multi_interval_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        windows_per_job=int(p.get("windows_per_job", 2)),
        window_length=int(p.get("window_length", 3)),
        value_spread=float(p.get("value_spread", 1.0)),
        cost_model=AffineCost(float(p.get("restart_cost", 2.0))),
        rng=gen,
    )


def _build_bursty(spec: "RunSpec", gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return bursty_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        n_bursts=int(p.get("n_bursts", 3)),
        burst_width=int(p.get("burst_width", 4)),
        value_spread=float(p.get("value_spread", 1.0)),
        cost_model=AffineCost(float(p.get("restart_cost", 4.0))),
        rng=gen,
    )


def _build_bursty_arrivals(spec: "RunSpec", gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return bursty_arrival_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        n_bursts=int(p.get("n_bursts", 4)),
        burst_jitter=float(p.get("burst_jitter", 1.5)),
        service_window=int(p.get("service_window", 4)),
        processors_per_job=int(p.get("processors_per_job", 2)),
        value_spread=float(p.get("value_spread", 1.0)),
        cost_model=AffineCost(float(p.get("restart_cost", 2.0))),
        rng=gen,
    )


def _build_hetero_energy(spec: "RunSpec", gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return heterogeneous_energy_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        efficiency_spread=float(p.get("efficiency_spread", 4.0)),
        windows_per_job=int(p.get("windows_per_job", 2)),
        window_length=int(p.get("window_length", 3)),
        value_spread=float(p.get("value_spread", 1.0)),
        rng=gen,
    )


def _build_certifiable(spec: "RunSpec", gen: np.random.Generator) -> ScheduleInstance:
    p = _params_dict(spec.params)
    return small_certifiable_instance(
        spec.n_jobs,
        spec.n_processors,
        spec.horizon,
        int(p.get("n_candidate_intervals", 12)),
        value_spread=float(p.get("value_spread", 1.0)),
        rng=gen,
    )


FAMILIES: Dict[str, Callable[["RunSpec", np.random.Generator], ScheduleInstance]] = {
    "multi": _build_multi,
    "bursty": _build_bursty,
    "bursty_arrivals": _build_bursty_arrivals,
    "hetero_energy": _build_hetero_energy,
    "certifiable": _build_certifiable,
}


@dataclass(frozen=True)
class RunSpec:
    """One grid cell: a concrete instance draw plus a solver method."""

    family: str
    n_jobs: int
    n_processors: int
    horizon: int
    method: str
    trial: int
    seed: int
    params: Params = ()

    def instance_key(self) -> tuple:
        """Coordinates identifying the instance (method excluded)."""
        return (self.family, self.n_jobs, self.n_processors, self.horizon,
                self.trial, self.seed, self.params)

    def label(self) -> str:
        return (
            f"{self.family} n={self.n_jobs} p={self.n_processors} "
            f"h={self.horizon} t{self.trial} [{self.method}]"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over workload families and engines.

    ``grid`` entries are ``(n_jobs, n_processors, horizon)`` triples —
    explicit triples rather than a cross product, because feasible
    processor counts scale with job counts.  ``trials`` instances are
    drawn per cell with hash-derived child seeds of ``master_seed``.
    """

    families: Tuple[str, ...]
    grid: Tuple[Tuple[int, int, int], ...]
    methods: Tuple[str, ...] = ("incremental",)
    trials: int = 3
    master_seed: int = 20100612
    params: Params = ()

    def __post_init__(self) -> None:
        if not self.families or not self.grid or not self.methods:
            raise InvalidInstanceError("families, grid, and methods must be non-empty")
        unknown = [f for f in self.families if f not in FAMILIES]
        if unknown:
            raise InvalidInstanceError(
                f"unknown workload families {unknown}; known: {sorted(FAMILIES)}"
            )
        bad_methods = [m for m in self.methods if m not in _METHODS]
        if bad_methods:
            raise InvalidInstanceError(
                f"unknown solver methods {bad_methods}; known: {sorted(_METHODS)}"
            )
        if self.trials <= 0:
            raise InvalidInstanceError("trials must be positive")

    def expand(self) -> List[RunSpec]:
        """All run cells, in deterministic grid order."""
        runs: List[RunSpec] = []
        for family, (n, p, h), trial in product(self.families, self.grid, range(self.trials)):
            seed = derive_seed(self.master_seed, family, n, p, h, trial, self.params)
            for method in self.methods:
                runs.append(
                    RunSpec(
                        family=family, n_jobs=n, n_processors=p, horizon=h,
                        method=method, trial=trial, seed=seed, params=self.params,
                    )
                )
        return runs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "families": list(self.families),
            "grid": [list(g) for g in self.grid],
            "methods": list(self.methods),
            "trials": self.trials,
            "master_seed": self.master_seed,
            "params": [list(kv) for kv in self.params],
        }


def build_instance(spec: RunSpec) -> ScheduleInstance:
    """Deterministically rebuild the cell's instance from its spec."""
    builder = FAMILIES.get(spec.family)
    if builder is None:
        raise InvalidInstanceError(
            f"unknown workload family {spec.family!r}; known: {sorted(FAMILIES)}"
        )
    return builder(spec, np.random.default_rng(spec.seed))
