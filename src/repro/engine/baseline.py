"""``repro bench`` — curated suites, reports, and the perf-regression gate.

Every registered task contributes cells to a curated suite per profile:

``smoke``
    Seconds; what the test suite exercises end to end.
``quick``
    Tens of seconds inline; what CI's ``bench-gate`` job runs on every
    push against the committed baseline.
``full``
    Minutes; the number EXPERIMENTS.md-scale regressions are judged by.

A bench run produces a machine-readable report (``BENCH_<profile>.json``)
keyed by cell id ``task/family/NxPxH/method`` with per-cell mean cost,
utility, oracle work, and wall time plus the sorted instance
fingerprints — enough to distinguish "the solver got slower" from "the
workload generator changed" at comparison time.

:func:`compare_reports` checks a measured report against a committed
baseline with per-metric tolerances:

* **fingerprints** and the **suite fingerprint** must match exactly
  (instance-generation / suite-definition drift fails loudly);
* **cost** and **utility** are deterministic, so any relative drift
  beyond ``1e-6`` fails in *either* direction — a solver change that
  alters solutions must be accompanied by a baseline regeneration;
* **oracle work** may improve freely but may not grow more than 10 %;
* **wall time** may not exceed ``1.8 x max(baseline, 0.1 s)`` — the
  absolute floor keeps millisecond cells from flapping on noisy or
  slower CI runners (those cells are still gated by the deterministic
  metrics above) while catching the 2x regressions the gate exists for
  on any cell whose baseline is at least the floor.

Baselines live in ``benchmarks/baselines/`` and are regenerated with
``repro bench --profile <p> --update-baseline`` (see README).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.analysis.tables import format_delta, format_table
from repro.engine.hashing import spec_fingerprint
from repro.engine.runner import run_sweep
from repro.engine.spec import SweepSpec
from repro.errors import InvalidInstanceError

__all__ = [
    "BENCH_FORMAT",
    "PROFILES",
    "Regression",
    "Tolerances",
    "compare_reports",
    "default_baseline_path",
    "load_report",
    "regression_table",
    "run_bench",
    "write_report",
]

BENCH_FORMAT = "repro-bench/1"

_PRIZE_PARAMS = (
    ("epsilon", 0.25),
    ("n_candidate_intervals", 12),
    ("target_fraction", 0.6),
    ("value_spread", 4.0),
)

PROFILES: Dict[str, Tuple[SweepSpec, ...]] = {
    "smoke": (
        SweepSpec(task="schedule_all", families=("multi",), grid=((8, 2, 16),),
                  methods=("incremental",), trials=1),
        SweepSpec(task="prize_collecting", families=("certifiable",), grid=((6, 2, 12),),
                  methods=("lazy",), trials=1, params=(("n_candidate_intervals", 10),)),
        SweepSpec(task="secretary", families=("additive",), grid=((30, 3, 0),),
                  methods=("monotone",), trials=1),
        SweepSpec(task="knapsack_secretary", families=("additive",), grid=((20, 2, 0),),
                  methods=("online",), trials=1),
    ),
    "quick": (
        SweepSpec(task="schedule_all", families=("multi", "bursty"),
                  grid=((12, 3, 24), (20, 3, 32)), methods=("incremental",), trials=2),
        SweepSpec(task="schedule_all", families=("multi",), grid=((15, 3, 24),),
                  methods=("plain", "lazy", "incremental"), trials=2),
        SweepSpec(task="prize_collecting", families=("certifiable",), grid=((7, 2, 16),),
                  methods=("lazy", "exact"), trials=2, params=_PRIZE_PARAMS),
        SweepSpec(task="secretary", families=("additive", "coverage"),
                  grid=((60, 4, 0),), methods=("monotone", "classical"), trials=2),
        SweepSpec(task="secretary", families=("cut",), grid=((40, 4, 0),),
                  methods=("nonmonotone", "robust"), trials=2),
        SweepSpec(task="knapsack_secretary", families=("additive",),
                  grid=((40, 2, 0), (40, 4, 0)), methods=("online",), trials=2),
        # Non-uniform arrival orders through the online runtime: an
        # adversarial deterministic order, bursty minibatch delivery
        # (exercising the vectorized batch driver), and the
        # nearly-sorted sliding-window replay.
        SweepSpec(task="secretary", families=("additive@sorted_desc", "coverage@bursty"),
                  grid=((60, 4, 0),), methods=("monotone",), trials=2),
        SweepSpec(task="knapsack_secretary", families=("additive@sliding_window",),
                  grid=((40, 2, 0),), methods=("online",), trials=2),
        # Sharded runtime: the same coverage@bursty cell split across
        # two policy replicas + merge, recording multi-shard wall time
        # against the single-shard cell above.
        SweepSpec(task="secretary", families=("coverage@bursty#2",),
                  grid=((60, 4, 0),), methods=("monotone",), trials=2),
    ),
    "full": (
        SweepSpec(task="schedule_all",
                  families=("multi", "bursty", "bursty_arrivals", "hetero_energy"),
                  grid=((20, 3, 32), (40, 4, 48)),
                  methods=("incremental",), trials=3),
        SweepSpec(task="schedule_all", families=("multi", "hetero_energy"),
                  grid=((60, 5, 80),), methods=("incremental",), trials=3),
        SweepSpec(task="schedule_all", families=("multi",), grid=((50, 4, 60),),
                  methods=("plain", "lazy", "incremental"), trials=3),
        SweepSpec(task="prize_collecting", families=("certifiable",),
                  grid=((7, 2, 16), (8, 2, 18)), methods=("lazy", "plain", "exact"),
                  trials=5, params=_PRIZE_PARAMS),
        SweepSpec(task="secretary", families=("additive", "coverage", "facility"),
                  grid=((150, 6, 0), (400, 8, 0)),
                  methods=("monotone", "classical", "robust"), trials=3),
        SweepSpec(task="secretary", families=("cut",), grid=((150, 8, 0),),
                  methods=("nonmonotone",), trials=3),
        SweepSpec(task="knapsack_secretary", families=("additive",),
                  grid=((120, 1, 0), (120, 2, 0), (120, 4, 0)), methods=("online",),
                  trials=5),
        # Arrival-process sweep at experiment scale: every non-uniform
        # process on one coverage cell (monotone hires under adversarial,
        # bursty, Poisson-tick, and nearly-sorted orders), plus the
        # bursty batch-driver path on a large facility stream.
        SweepSpec(task="secretary",
                  families=("coverage@sorted_desc", "coverage@sorted_asc",
                            "coverage@bursty", "coverage@poisson",
                            "coverage@sliding_window"),
                  grid=((150, 6, 0),), methods=("monotone",), trials=3),
        SweepSpec(task="secretary", families=("facility@bursty",),
                  grid=((400, 8, 0),), methods=("monotone",), trials=2),
        SweepSpec(task="knapsack_secretary",
                  families=("additive@bursty", "additive@sorted_desc"),
                  grid=((120, 2, 0),), methods=("online",), trials=3),
        # Sharded runtime at experiment scale: the coverage@bursty and
        # additive@bursty cells above re-run at S=2 and S=4 (secretary)
        # and S=2 (knapsack), so throughput scaling of the shard axis is
        # recorded against the matching single-shard baselines.
        SweepSpec(task="secretary",
                  families=("coverage@bursty#2", "coverage@bursty#4"),
                  grid=((150, 6, 0),), methods=("monotone",), trials=3),
        SweepSpec(task="knapsack_secretary", families=("additive@bursty#2",),
                  grid=((120, 2, 0),), methods=("online",), trials=3),
        # Production-scale cells, tractable only with the vectorized
        # incremental oracle kernels (PR 3): a 200-job/8-processor
        # scheduling floor, multi-thousand-arrival secretary streams,
        # and a knapsack stream whose offline estimate alone is ~n^2
        # oracle evaluations naively.
        SweepSpec(task="schedule_all", families=("hetero_energy", "bursty_arrivals"),
                  grid=((200, 8, 96),), methods=("incremental",), trials=2),
        SweepSpec(task="secretary", families=("coverage", "facility"),
                  grid=((2000, 8, 400),), methods=("monotone",), trials=2),
        SweepSpec(task="knapsack_secretary", families=("additive",),
                  grid=((1500, 2, 0),), methods=("online",), trials=3),
    ),
}


@dataclass(frozen=True)
class Tolerances:
    """Per-metric regression tolerances (see module docstring)."""

    cost_rtol: float = 1e-6
    utility_rtol: float = 1e-6
    oracle_factor: float = 1.10
    wall_factor: float = 1.8
    wall_floor: float = 0.1


DEFAULT_TOLERANCES = Tolerances()


@dataclass(frozen=True)
class Regression:
    """One comparison finding; only ``severity == "fail"`` gates CI."""

    cell: str
    metric: str
    baseline: float
    measured: float
    limit: float
    severity: str = "fail"
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell, "metric": self.metric, "baseline": self.baseline,
            "measured": self.measured, "limit": self.limit,
            "severity": self.severity, "note": self.note,
        }


def _cell_id(record) -> str:
    return (
        f"{record.task}/{record.family}/"
        f"{record.n_jobs}x{record.n_processors}x{record.horizon}/{record.method}"
    )


def suite_for(profile: str) -> Tuple[SweepSpec, ...]:
    """The curated sweep list for *profile* (raises on unknown names)."""
    suite = PROFILES.get(profile)
    if suite is None:
        raise InvalidInstanceError(
            f"unknown bench profile {profile!r}; known: {sorted(PROFILES)}"
        )
    return suite


def run_bench(profile: str, *, workers: int = 0, warmup: bool = True) -> Dict[str, Any]:
    """Run the profile's suite across all tasks; return the report dict.

    Deliberately cache-free: a result cache would replay pre-change
    metrics on cache hits and silently defeat the regression gate.

    *warmup* first runs each task's smoke cell untimed, so the first
    timed cell does not absorb one-off interpreter costs (numpy/BLAS
    initialisation, lazily built kernel machinery) — on millisecond
    cells that cold-start hit used to dominate the mean.  The warmup
    runs inline, so it covers the ``workers=0`` mode baselines and CI
    use; pool workers (``workers>1``) are fresh processes and still pay
    their own first-cell cost.
    """
    suite = suite_for(profile)
    if warmup:
        tasks = {sweep.task for sweep in suite}
        for sweep in PROFILES["smoke"]:
            if sweep.task in tasks:
                run_sweep(sweep, workers=0)
    groups: Dict[str, List] = {}
    for sweep in suite:
        result = run_sweep(sweep, workers=workers)
        for record in result.records:
            groups.setdefault(_cell_id(record), []).append(record)
    cells: Dict[str, Any] = {}
    for cid in sorted(groups):
        records = groups[cid]
        n = len(records)
        cells[cid] = {
            "trials": n,
            "mean_cost": sum(r.cost for r in records) / n,
            "mean_utility": sum(r.utility for r in records) / n,
            "mean_oracle_work": sum(r.oracle_work for r in records) / n,
            "mean_wall_time": sum(r.wall_time for r in records) / n,
            "fingerprints": sorted({r.fingerprint for r in records}),
        }
    return {
        "format": BENCH_FORMAT,
        "profile": profile,
        "suite_fingerprint": spec_fingerprint([s.to_dict() for s in suite]),
        "cells": cells,
    }


def compare_reports(
    measured: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerances: Tolerances = DEFAULT_TOLERANCES,
) -> List[Regression]:
    """All findings from checking *measured* against *baseline*.

    CI gates on the ``fail`` findings (:func:`has_failures`); ``info``
    findings (new cells not yet in the baseline) are surfaced so a
    forgotten baseline regeneration is visible without blocking.
    """
    findings: List[Regression] = []
    if measured.get("profile") != baseline.get("profile"):
        findings.append(Regression(
            cell="<report>", metric="profile", baseline=0.0, measured=0.0,
            note=f"profile mismatch: measured {measured.get('profile')!r} "
                 f"vs baseline {baseline.get('profile')!r}", limit=0.0,
        ))
        return findings
    if measured.get("suite_fingerprint") != baseline.get("suite_fingerprint"):
        findings.append(Regression(
            cell="<report>", metric="suite_fingerprint", baseline=0.0,
            measured=0.0, limit=0.0,
            note="bench suite definition changed; regenerate the baseline "
                 "with repro bench --update-baseline",
        ))

    m_cells = measured.get("cells", {})
    b_cells = baseline.get("cells", {})
    for cid, b in b_cells.items():
        m = m_cells.get(cid)
        if m is None:
            findings.append(Regression(
                cell=cid, metric="presence", baseline=1.0, measured=0.0,
                limit=1.0, note="cell missing from measured report",
            ))
            continue
        if m.get("fingerprints") != b.get("fingerprints"):
            findings.append(Regression(
                cell=cid, metric="fingerprints", baseline=0.0, measured=0.0,
                limit=0.0, note="instance fingerprints changed "
                                "(workload generation drift)",
            ))
        for metric, rtol in (("mean_cost", tolerances.cost_rtol),
                             ("mean_utility", tolerances.utility_rtol)):
            bv, mv = float(b[metric]), float(m[metric])
            limit = rtol * max(abs(bv), 1e-12)
            if abs(mv - bv) > limit:
                findings.append(Regression(
                    cell=cid, metric=metric, baseline=bv, measured=mv,
                    limit=limit, note="deterministic metric drifted",
                ))
        bv, mv = float(b["mean_oracle_work"]), float(m["mean_oracle_work"])
        limit = tolerances.oracle_factor * bv + 1e-9
        if mv > limit:
            findings.append(Regression(
                cell=cid, metric="mean_oracle_work", baseline=bv, measured=mv,
                limit=limit, note="oracle-call count regressed",
            ))
        bv, mv = float(b["mean_wall_time"]), float(m["mean_wall_time"])
        limit = tolerances.wall_factor * max(bv, tolerances.wall_floor)
        if mv > limit:
            findings.append(Regression(
                cell=cid, metric="mean_wall_time", baseline=bv, measured=mv,
                limit=limit, note="wall time regressed",
            ))
    for cid in m_cells:
        if cid not in b_cells:
            findings.append(Regression(
                cell=cid, metric="presence", baseline=0.0, measured=1.0,
                limit=0.0, severity="info",
                note="new cell not in baseline (regenerate to pin it)",
            ))
    return findings


def has_failures(findings: List[Regression]) -> bool:
    """True when any finding should gate (non-info severity)."""
    return any(f.severity == "fail" for f in findings)


def regression_table(findings: List[Regression]) -> str:
    """Human-readable findings table (empty string when clean)."""
    if not findings:
        return ""
    rows = [
        [f.severity, f.cell, f.metric, f.baseline, f.measured,
         format_delta(f.measured, f.baseline), f.note]
        for f in findings
    ]
    return format_table(
        ["severity", "cell", "metric", "baseline", "measured", "delta", "note"],
        rows,
        title="bench comparison findings",
    )


def default_baseline_path(profile: str, root: str = ".") -> str:
    """Committed baseline location for *profile* under repo *root*."""
    return os.path.join(root, "benchmarks", "baselines", f"BENCH_{profile}.json")


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as stable, diff-friendly JSON (atomic replace)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp_path, path)


def load_report(path: str) -> Dict[str, Any]:
    """Load a report, validating the format marker.

    Corrupt/garbled JSON raises :class:`InvalidInstanceError` (a
    :class:`~repro.errors.ReproError`), so the CLI reports a clean usage
    error instead of a traceback-as-regression.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            report = json.load(fh)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(report, dict) or report.get("format") != BENCH_FORMAT:
        raise InvalidInstanceError(
            f"{path} is not a {BENCH_FORMAT} report"
        )
    return report
