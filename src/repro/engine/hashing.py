"""Stable fingerprints for instances and run specs.

Cache keys must survive process boundaries, hash randomisation, and
dict-ordering accidents, so everything is hashed through a canonical
JSON encoding (sorted keys, no whitespace) of the library's versioned
interchange format (:mod:`repro.io`).  Two structurally identical
instances — regardless of how their job/slot containers were built —
produce the same fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.io import instance_to_dict
from repro.scheduling.instance import ScheduleInstance

__all__ = ["canonical_json", "instance_fingerprint", "spec_fingerprint", "derive_seed"]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def instance_fingerprint(instance: ScheduleInstance) -> str:
    """SHA-256 over the canonical interchange form of *instance*.

    Jobs are serialised with sorted slot lists and the cost model with
    its full parameterisation, so the fingerprint identifies the
    mathematical problem, not the Python objects holding it.
    """
    payload = instance_to_dict(instance)
    payload["jobs"] = sorted(payload["jobs"], key=lambda j: j["id"])
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def spec_fingerprint(payload: Any) -> str:
    """SHA-256 of any JSON-able spec payload (sweep provenance ids)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def derive_seed(master_seed: int, *parts: Any) -> int:
    """Stable 63-bit child seed for one grid cell.

    Hash-derived (not sequentially drawn), so a cell's seed depends only
    on the master seed and the cell's own coordinates — reordering,
    filtering, or chunking the sweep never changes which instance a cell
    solves.
    """
    digest = hashlib.sha256(repr((master_seed,) + parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
