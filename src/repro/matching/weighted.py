"""Maximum vertex-weighted bipartite matching (weights on the job side).

Lemma 2.3.2 needs ``F(S) = maximum weight of a matching saturating only
slots of S``, where a matching's weight is the sum of the *values of the
jobs it saturates*.  Because weights sit on one side only, the family of
job sets matchable into ``S`` is a transversal matroid, and the matroid
greedy is exact: process jobs in non-increasing value order and accept a
job iff an augmenting path (holding all previously accepted jobs
matched) exists.  The feasibility test is a single Kuhn augmentation
from the job side, so the whole solve is ``O(|Y| * E)``.

This gives a *certified optimal* weighted matching without implementing
a general Hungarian algorithm — and the greedy's exactness is itself a
matroid fact the property tests verify against brute force.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from repro.matching.graph import BipartiteGraph, Matching, Vertex

__all__ = ["max_weight_matching", "weighted_matching_value"]


def _augment_from_right(
    graph: BipartiteGraph,
    matching: Matching,
    start: Vertex,
    allowed: FrozenSet[Vertex],
) -> bool:
    """Kuhn augmentation from free job *start* over slots in *allowed*.

    Iterative with explicit parent pointers (mirror image of
    :func:`repro.matching.hopcroft_karp.augment_from_left`).
    """
    adj = graph.adj_right()
    match_l = matching.left_to_right
    match_r = matching.right_to_left

    parent: Dict[Vertex, Vertex] = {}  # slot -> job we reached it from
    visited_slots: Set[Vertex] = set()
    stack = [start]
    free_slot: Optional[Vertex] = None

    while stack and free_slot is None:
        y = stack.pop()
        for x in adj[y]:
            if x not in allowed or x in visited_slots:
                continue
            visited_slots.add(x)
            parent[x] = y
            w = match_l.get(x)
            if w is None:
                free_slot = x
                break
            stack.append(w)

    if free_slot is None:
        return False

    x = free_slot
    while True:
        y = parent[x]
        prev_x = match_r.get(y)
        match_l[x] = y
        match_r[y] = x
        if prev_x is None:
            break
        x = prev_x
    return True


def max_weight_matching(
    graph: BipartiteGraph,
    job_values: Mapping[Vertex, float],
    allowed_left: Optional[Iterable[Vertex]] = None,
) -> Matching:
    """Maximum job-value matching saturating only *allowed_left* slots.

    Jobs with value 0 are still scheduled when free capacity remains
    (they cannot hurt), keeping parity with the unweighted solver on
    all-equal values.  Negative job values are rejected: the paper's
    prize-collecting model has non-negative prizes.
    """
    negative = [j for j, v in job_values.items() if v < 0]
    if negative:
        raise ValueError(f"job values must be non-negative: {sorted(map(repr, negative))[:5]}")
    allowed: FrozenSet[Vertex] = (
        graph.left if allowed_left is None else frozenset(allowed_left) & graph.left
    )
    matching = Matching()
    # Sort by value descending; tie-break on repr for determinism.
    order = sorted(graph.right, key=lambda y: (-job_values.get(y, 0.0), repr(y)))
    for y in order:
        _augment_from_right(graph, matching, y, allowed)
    return matching


def weighted_matching_value(
    graph: BipartiteGraph,
    job_values: Mapping[Vertex, float],
    allowed_left: Optional[Iterable[Vertex]] = None,
) -> float:
    """``F(S)`` of Lemma 2.3.2 — the optimal scheduled job value using S."""
    matching = max_weight_matching(graph, job_values, allowed_left)
    return float(sum(job_values.get(y, 0.0) for y in matching.right_to_left))
