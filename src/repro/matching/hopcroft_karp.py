"""Hopcroft–Karp maximum-cardinality bipartite matching.

Implemented from scratch (no networkx dependency in library code) with
one extension the scheduling reduction needs: the matching may be
restricted to saturate only an *allowed subset* of left vertices, which
is exactly the ``F(S)`` of Lemma 2.2.2 — "the maximum cardinality
matching that saturates only vertices of S in part X".

The algorithm alternates BFS phases (building a layered graph of
shortest alternating paths from free left vertices) with DFS phases
(extracting a maximal set of vertex-disjoint shortest augmenting
paths); O(E sqrt(V)) overall.  The actual search runs on the graph's
int-indexed view (:mod:`repro.matching.fastgraph`); this module
translates between hashable vertices and dense indices at the API
boundary only.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from repro.matching.fastgraph import hk_solve, indexed_view, kuhn_augment
from repro.matching.graph import BipartiteGraph, Matching, Vertex

__all__ = ["hopcroft_karp", "max_matching_size"]


def hopcroft_karp(
    graph: BipartiteGraph,
    allowed_left: Optional[Iterable[Vertex]] = None,
    *,
    seed_matching: Optional[Matching] = None,
) -> Matching:
    """Return a maximum matching saturating only *allowed_left* slots.

    Parameters
    ----------
    graph:
        The bipartite graph.
    allowed_left:
        Left vertices the matching may use.  ``None`` means all of them.
    seed_matching:
        Optional valid partial matching (already confined to
        *allowed_left*) to warm-start from; augmenting paths only ever
        grow a matching, so seeding with the matching of a smaller slot
        set is both correct and the source of the incremental oracle's
        speed.
    """
    view = indexed_view(graph)
    mask = None if allowed_left is None else view.mask_of(allowed_left)
    if seed_matching is not None:
        match_l, match_r, _ = view.matching_to_arrays(seed_matching)
    else:
        match_l = match_r = None
    match_l, match_r, _ = hk_solve(view, mask, match_l, match_r)
    return view.arrays_to_matching(match_l)


def max_matching_size(
    graph: BipartiteGraph, allowed_left: Optional[Iterable[Vertex]] = None
) -> int:
    """``F(S)`` of Lemma 2.2.2: maximum matching cardinality using slots S."""
    view = indexed_view(graph)
    mask = None if allowed_left is None else view.mask_of(allowed_left)
    _, _, size = hk_solve(view, mask)
    return size


def augment_from_left(
    graph: BipartiteGraph,
    matching: Matching,
    start: Vertex,
    allowed: FrozenSet[Vertex],
) -> bool:
    """Try one Kuhn augmentation from free left vertex *start*; in-place.

    Iterative alternating-path DFS (explicit stack, so deep paths cannot
    hit the recursion limit).  All intermediate left vertices on the path
    are matched already and therefore inside *allowed*; *start* itself
    must be in *allowed*, which this wrapper checks.

    Returns ``True`` and applies the augmentation if a path to a free
    right vertex exists; otherwise leaves *matching* untouched.
    """
    if start in matching.left_to_right or start not in allowed:
        return False
    view = indexed_view(graph)
    start_idx = view.left_index.get(start)
    if start_idx is None:
        return False
    match_l, match_r, _ = view.matching_to_arrays(matching)
    visited = [0] * view.n_right
    parent = [-1] * view.n_right
    if not kuhn_augment(view, match_l, match_r, start_idx, visited, 1, parent):
        return False
    view.arrays_to_matching(match_l, out=matching)
    return True
