"""Hopcroft–Karp maximum-cardinality bipartite matching.

Implemented from scratch (no networkx dependency in library code) with
one extension the scheduling reduction needs: the matching may be
restricted to saturate only an *allowed subset* of left vertices, which
is exactly the ``F(S)`` of Lemma 2.2.2 — "the maximum cardinality
matching that saturates only vertices of S in part X".

The algorithm alternates BFS phases (building a layered graph of
shortest alternating paths from free left vertices) with DFS phases
(extracting a maximal set of vertex-disjoint shortest augmenting
paths); O(E sqrt(V)) overall.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.matching.graph import BipartiteGraph, Matching, Vertex

__all__ = ["hopcroft_karp", "max_matching_size"]

_INF = float("inf")


def hopcroft_karp(
    graph: BipartiteGraph,
    allowed_left: Optional[Iterable[Vertex]] = None,
    *,
    seed_matching: Optional[Matching] = None,
) -> Matching:
    """Return a maximum matching saturating only *allowed_left* slots.

    Parameters
    ----------
    graph:
        The bipartite graph.
    allowed_left:
        Left vertices the matching may use.  ``None`` means all of them.
    seed_matching:
        Optional valid partial matching (already confined to
        *allowed_left*) to warm-start from; augmenting paths only ever
        grow a matching, so seeding with the matching of a smaller slot
        set is both correct and the source of the incremental oracle's
        speed.
    """
    allowed: FrozenSet[Vertex] = (
        graph.left if allowed_left is None else frozenset(allowed_left) & graph.left
    )
    adj = graph.adj_left()

    matching = seed_matching.copy() if seed_matching is not None else Matching()
    match_l = matching.left_to_right
    match_r = matching.right_to_left

    dist: Dict[Vertex, float] = {}

    def bfs() -> bool:
        """Layer free allowed-left vertices; True if some free right is reachable."""
        queue: deque = deque()
        for u in allowed:
            if u not in match_l:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_r.get(v)
                if w is None:
                    found = True
                elif w in allowed and dist.get(w, _INF) == _INF:
                    dist[w] = dist[u] + 1.0
                    queue.append(w)
        return found

    def dfs(u: Vertex) -> bool:
        for v in adj[u]:
            w = match_r.get(v)
            if w is None or (
                w in allowed and dist.get(w, _INF) == dist[u] + 1.0 and dfs(w)
            ):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in list(allowed):
            if u not in match_l and dist.get(u) == 0.0:
                dfs(u)
        dist.clear()

    return matching


def max_matching_size(
    graph: BipartiteGraph, allowed_left: Optional[Iterable[Vertex]] = None
) -> int:
    """``F(S)`` of Lemma 2.2.2: maximum matching cardinality using slots S."""
    return len(hopcroft_karp(graph, allowed_left))


def augment_from_left(
    graph: BipartiteGraph,
    matching: Matching,
    start: Vertex,
    allowed: FrozenSet[Vertex],
) -> bool:
    """Try one Kuhn augmentation from free left vertex *start*; in-place.

    Iterative alternating-path DFS (explicit stack, so deep paths cannot
    hit the recursion limit).  All intermediate left vertices on the path
    are matched already and therefore inside *allowed*; *start* itself
    must be in *allowed*, which the caller guarantees.

    Returns ``True`` and applies the augmentation if a path to a free
    right vertex exists; otherwise leaves *matching* untouched.
    """
    adj = graph.adj_left()
    match_l = matching.left_to_right
    match_r = matching.right_to_left

    if start in match_l or start not in allowed:
        return False

    # parent[y] = the left vertex from which we reached right vertex y.
    parent: Dict[Vertex, Vertex] = {}
    visited_right: Set[Vertex] = set()
    stack = [start]
    free_right: Optional[Vertex] = None

    while stack and free_right is None:
        u = stack.pop()
        for v in adj[u]:
            if v in visited_right:
                continue
            visited_right.add(v)
            parent[v] = u
            w = match_r.get(v)
            if w is None:
                free_right = v
                break
            stack.append(w)

    if free_right is None:
        return False

    # Walk back flipping matched/unmatched edges along the path.
    v = free_right
    while True:
        u = parent[v]
        prev_v = match_l.get(u)
        match_l[u] = v
        match_r[v] = u
        if prev_v is None:
            break
        v = prev_v
    return True
