"""Bipartite-matching substrate.

Section 2.2 reduces power-minimizing scheduling to maximizing a matching
function over slot subsets: slots (time-unit, processor pairs) on the
left side ``X``, jobs on the right side ``Y``, and

    F(S) = size (or job-value weight) of the maximum matching that
           saturates only slots of S,

which Lemmas 2.2.2 and 2.3.2 prove monotone submodular.  This package
implements the graph type, Hopcroft–Karp maximum-cardinality matching,
maximum vertex-weighted matching (matroid greedy over the transversal
matroid with augmenting-path feasibility tests), and the incremental
oracle that makes the budgeted greedy's marginal-gain probes cheap.

All matchers run on a shared int-indexed view of the graph
(:mod:`repro.matching.fastgraph`): contiguous int adjacency, flat array
matchings, byte-mask subset restrictions.  The hashable-vertex API here
is a thin translation layer over those kernels.
"""

from repro.matching.fastgraph import IndexedView, indexed_view
from repro.matching.graph import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp, max_matching_size
from repro.matching.weighted import max_weight_matching, weighted_matching_value
from repro.matching.incremental import IncrementalMatchingOracle, MatchingUtility, WeightedMatchingUtility

__all__ = [
    "BipartiteGraph",
    "IndexedView",
    "Matching",
    "indexed_view",
    "hopcroft_karp",
    "max_matching_size",
    "max_weight_matching",
    "weighted_matching_value",
    "IncrementalMatchingOracle",
    "MatchingUtility",
    "WeightedMatchingUtility",
]
