"""Bipartite graph and matching value types.

The graph is deliberately small and dictionary-backed: scheduling
instances have sparse adjacency (each job lists a handful of valid
slot/processor pairs), so adjacency lists beat dense matrices both in
memory and in augmenting-path traversal cost.  Vertices are arbitrary
hashables so slots can be ``(processor, time)`` tuples and jobs can be
job ids without any translation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.errors import InvalidInstanceError

__all__ = ["BipartiteGraph", "Matching"]

Vertex = Hashable


class BipartiteGraph:
    """A bipartite graph with named sides ``left`` (slots) and ``right`` (jobs).

    Parameters
    ----------
    left, right:
        Vertex collections for the two sides.  They must be disjoint.
    edges:
        Iterable of ``(left_vertex, right_vertex)`` pairs.  Duplicate
        edges are collapsed.
    """

    def __init__(
        self,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
        edges: Iterable[Tuple[Vertex, Vertex]],
    ):
        self._left: FrozenSet[Vertex] = frozenset(left)
        self._right: FrozenSet[Vertex] = frozenset(right)
        overlap = self._left & self._right
        if overlap:
            raise InvalidInstanceError(
                f"left/right sides must be disjoint; shared: {sorted(map(repr, overlap))[:5]}"
            )
        self._adj_left: Dict[Vertex, Set[Vertex]] = {v: set() for v in self._left}
        self._adj_right: Dict[Vertex, Set[Vertex]] = {v: set() for v in self._right}
        for u, v in edges:
            if u not in self._adj_left:
                raise InvalidInstanceError(f"edge endpoint {u!r} is not a left vertex")
            if v not in self._adj_right:
                raise InvalidInstanceError(f"edge endpoint {v!r} is not a right vertex")
            self._adj_left[u].add(v)
            self._adj_right[v].add(u)

    # -- accessors ----------------------------------------------------

    @property
    def left(self) -> FrozenSet[Vertex]:
        return self._left

    @property
    def right(self) -> FrozenSet[Vertex]:
        return self._right

    def neighbors_of_left(self, u: Vertex) -> FrozenSet[Vertex]:
        return frozenset(self._adj_left[u])

    def neighbors_of_right(self, v: Vertex) -> FrozenSet[Vertex]:
        return frozenset(self._adj_right[v])

    def adj_left(self) -> Mapping[Vertex, Set[Vertex]]:
        """Raw left adjacency (treat as read-only; used by the matchers)."""
        return self._adj_left

    def adj_right(self) -> Mapping[Vertex, Set[Vertex]]:
        return self._adj_right

    def edge_count(self) -> int:
        return sum(len(s) for s in self._adj_left.values())

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        for u in self._adj_left:
            for v in self._adj_left[u]:
                yield (u, v)

    def degree_histogram_right(self) -> Dict[int, int]:
        """How many jobs have each slot-degree (workload diagnostics)."""
        hist: Dict[int, int] = {}
        for v in self._right:
            d = len(self._adj_right[v])
            hist[d] = hist.get(d, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(|left|={len(self._left)}, |right|={len(self._right)}, "
            f"edges={self.edge_count()})"
        )


@dataclass
class Matching:
    """A (partial) matching as a pair of mutually inverse dictionaries.

    ``left_to_right[x] == y  <=>  right_to_left[y] == x``.  The dataclass
    owns its dictionaries; :meth:`copy` is used by the incremental oracle
    to probe candidate augmentations without committing them.
    """

    left_to_right: Dict[Vertex, Vertex] = field(default_factory=dict)
    right_to_left: Dict[Vertex, Vertex] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.left_to_right)

    def copy(self) -> "Matching":
        return Matching(dict(self.left_to_right), dict(self.right_to_left))

    def pairs(self) -> List[Tuple[Vertex, Vertex]]:
        return sorted(self.left_to_right.items(), key=lambda p: (repr(p[0]), repr(p[1])))

    def match(self, u: Vertex, v: Vertex) -> None:
        """Add (or re-point) the pair ``u -- v`` keeping both maps in sync."""
        old_v = self.left_to_right.pop(u, None)
        if old_v is not None:
            self.right_to_left.pop(old_v, None)
        old_u = self.right_to_left.pop(v, None)
        if old_u is not None:
            self.left_to_right.pop(old_u, None)
        self.left_to_right[u] = v
        self.right_to_left[v] = u

    def validate(self, graph: BipartiteGraph) -> None:
        """Assert structural consistency against *graph*.

        Checks mutual inversity and that every matched pair is an actual
        edge; raises :class:`InvalidInstanceError` otherwise.  Solvers
        call this before returning, making silent corruption loud.
        """
        for u, v in self.left_to_right.items():
            if self.right_to_left.get(v) != u:
                raise InvalidInstanceError(f"matching maps out of sync at {u!r} -> {v!r}")
            if v not in graph.neighbors_of_left(u):
                raise InvalidInstanceError(f"matched pair ({u!r}, {v!r}) is not an edge")
        for v, u in self.right_to_left.items():
            if self.left_to_right.get(u) != v:
                raise InvalidInstanceError(f"matching maps out of sync at {v!r} -> {u!r}")
