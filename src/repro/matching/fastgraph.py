"""Array-index bipartite matching kernels.

The public matching API (:mod:`repro.matching.hopcroft_karp`,
:mod:`repro.matching.incremental`) speaks arbitrary hashable vertices —
slots are ``(processor, time)`` tuples, jobs are string ids.  Hashing
those objects and churning dict/frozenset copies dominated the
``schedule_all_jobs`` hot path, so the kernels here work on a one-time
*indexed view* of the graph instead:

* every left/right vertex is assigned a dense ``int`` id (in sorted-repr
  order, which also makes the returned matchings independent of hash
  randomisation);
* adjacency is a contiguous ``list[list[int]]``;
* matchings are flat ``list[int]`` arrays with ``-1`` for unmatched;
* allowed-subset restrictions are byte masks;
* DFS "visited" sets are version-stamped int arrays, so probes reuse one
  buffer instead of allocating a set per augmentation.

The view is built once per :class:`~repro.matching.graph.BipartiteGraph`
(see :func:`indexed_view`) and shared by every solver touching the graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.matching.graph import BipartiteGraph, Matching, Vertex

__all__ = [
    "IndexedView",
    "indexed_view",
    "hk_solve",
    "kuhn_augment",
    "kuhn_search",
    "apply_augmenting_path",
]

_INF = float("inf")


class IndexedView:
    """Immutable int-indexed mirror of a :class:`BipartiteGraph`."""

    __slots__ = (
        "graph",
        "left_ids",
        "right_ids",
        "left_index",
        "right_index",
        "adj",
        "n_left",
        "n_right",
    )

    def __init__(self, graph: BipartiteGraph):
        self.graph = graph
        self.left_ids: List[Vertex] = sorted(graph.left, key=repr)
        self.right_ids: List[Vertex] = sorted(graph.right, key=repr)
        self.left_index: Dict[Vertex, int] = {v: i for i, v in enumerate(self.left_ids)}
        self.right_index: Dict[Vertex, int] = {v: i for i, v in enumerate(self.right_ids)}
        raw = graph.adj_left()
        self.adj: List[List[int]] = [
            sorted(self.right_index[v] for v in raw[u]) for u in self.left_ids
        ]
        self.n_left = len(self.left_ids)
        self.n_right = len(self.right_ids)

    # -- conversions ---------------------------------------------------

    def mask_of(self, vertices) -> bytearray:
        """Byte mask over left indices for an iterable of left vertices."""
        mask = bytearray(self.n_left)
        index = self.left_index
        for v in vertices:
            i = index.get(v)
            if i is not None:
                mask[i] = 1
        return mask

    def matching_to_arrays(self, matching: Matching) -> Tuple[List[int], List[int], int]:
        match_l = [-1] * self.n_left
        match_r = [-1] * self.n_right
        for u, v in matching.left_to_right.items():
            i, j = self.left_index[u], self.right_index[v]
            match_l[i] = j
            match_r[j] = i
        return match_l, match_r, len(matching)

    def arrays_to_matching(self, match_l: List[int], out: Optional[Matching] = None) -> Matching:
        matching = out if out is not None else Matching()
        l2r, r2l = matching.left_to_right, matching.right_to_left
        l2r.clear()
        r2l.clear()
        left_ids, right_ids = self.left_ids, self.right_ids
        for i, j in enumerate(match_l):
            if j >= 0:
                u, v = left_ids[i], right_ids[j]
                l2r[u] = v
                r2l[v] = u
        return matching


def indexed_view(graph: BipartiteGraph) -> IndexedView:
    """The (cached) indexed view of *graph*.

    The view is memoised on the graph object: every matcher touching the
    same graph shares one index, so the translation cost is paid once per
    instance rather than once per oracle probe.
    """
    view = getattr(graph, "_indexed_view", None)
    if view is None or view.graph is not graph:
        view = IndexedView(graph)
        graph._indexed_view = view  # type: ignore[attr-defined]
    return view


def hk_solve(
    view: IndexedView,
    allowed: Optional[bytearray] = None,
    match_l: Optional[List[int]] = None,
    match_r: Optional[List[int]] = None,
) -> Tuple[List[int], List[int], int]:
    """Hopcroft–Karp on the indexed view; returns ``(match_l, match_r, size)``.

    ``allowed`` restricts the left side (``None`` = all).  ``match_l`` /
    ``match_r`` warm-start from an existing valid matching confined to
    ``allowed`` (mutated in place).  O(E sqrt(V)) phases of BFS layering
    plus shortest-augmenting-path DFS, all on flat int arrays.
    """
    n_left = view.n_left
    adj = view.adj
    if match_l is None:
        match_l = [-1] * n_left
        match_r = [-1] * view.n_right
    assert match_r is not None

    if allowed is None:
        active = range(n_left)
    else:
        active = [i for i in range(n_left) if allowed[i]]

    dist: List[float] = [_INF] * n_left
    queue: deque = deque()

    def bfs() -> bool:
        queue.clear()
        for u in active:
            if match_l[u] < 0:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            du = dist[u]
            for v in adj[u]:
                w = match_r[v]
                if w < 0:
                    found = True
                elif dist[w] == _INF and (allowed is None or allowed[w]):
                    dist[w] = du + 1.0
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        du1 = dist[u] + 1.0
        for v in adj[u]:
            w = match_r[v]
            if w < 0 or (
                dist[w] == du1 and (allowed is None or allowed[w]) and dfs(w)
            ):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INF
        return False

    size = sum(1 for u in active if match_l[u] >= 0)
    while bfs():
        for u in active:
            if match_l[u] < 0 and dist[u] == 0.0:
                if dfs(u):
                    size += 1
    return match_l, match_r, size


def kuhn_search(
    view: IndexedView,
    match_r: List[int],
    start: int,
    visited: List[int],
    stamp: int,
    parent: List[int],
    dead: Optional[List[int]] = None,
    dead_version: int = -1,
    trail: Optional[List[int]] = None,
) -> int:
    """Find an augmenting path from free left vertex *start* (no mutation).

    Returns the free right endpoint's index (with ``parent`` holding the
    back-trail for :func:`apply_augmenting_path`) or ``-1``.  ``visited``
    is a right-side int buffer stamped with *stamp*.

    The split from the apply step buys two probe-level optimizations in
    :class:`~repro.matching.incremental.IncrementalMatchingOracle`:

    * a *failed* search leaves the matching untouched, so its stamped
      vertices remain valid dead ends for every later start under the
      same matching — callers reuse the stamp across consecutive
      failures instead of re-exploring the same alternating component
      per start (the classical Kuhn phase trick);
    * probes only pay for matching copies when a search actually
      succeeds (copy-on-success), so gain-0 probes are allocation-free.

    ``dead`` (stamped with ``dead_version``) extends the same argument
    *across* probes: a right vertex inside a fully-failed exploration
    cannot reach a free job until the committed matching changes, and
    augmenting paths can never pass through such a region (it is closed
    under the alternating step and free-job-free), so skipping it is
    exact for every probe of the same commit version.  ``trail``, when
    given, collects the vertices stamped by this search so the caller
    can promote a failed exploration to the dead set in O(visited)
    instead of rescanning the whole right side.
    """
    adj = view.adj
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if visited[v] == stamp or (dead is not None and dead[v] == dead_version):
                continue
            visited[v] = stamp
            if trail is not None:
                trail.append(v)
            parent[v] = u
            w = match_r[v]
            if w < 0:
                return v
            stack.append(w)
    return -1


def apply_augmenting_path(
    match_l: List[int], match_r: List[int], free_right: int, parent: List[int]
) -> None:
    """Flip the alternating path ending at *free_right* into the matching."""
    v = free_right
    while True:
        u = parent[v]
        prev_v = match_l[u]
        match_l[u] = v
        match_r[v] = u
        if prev_v < 0:
            break
        v = prev_v


def kuhn_augment(
    view: IndexedView,
    match_l: List[int],
    match_r: List[int],
    start: int,
    visited: List[int],
    stamp: int,
    parent: List[int],
) -> bool:
    """One iterative Kuhn augmentation from free left vertex *start*.

    ``visited`` is a right-side int buffer stamped with *stamp* (callers
    bump the stamp instead of clearing the buffer), ``parent`` a right-side
    scratch array recording the left vertex each right vertex was reached
    from.  Intermediate left vertices on alternating paths are matched
    already, hence inside any allowed set the matching is confined to —
    so no allowed mask is needed here; callers restrict *start* instead.

    Returns ``True`` and applies the augmentation in place if a path to a
    free right vertex exists; otherwise leaves the matching untouched.
    """
    free_right = kuhn_search(view, match_r, start, visited, stamp, parent)
    if free_right < 0:
        return False
    apply_augmenting_path(match_l, match_r, free_right, parent)
    return True
