"""Matching utilities as :class:`SetFunction`s, plus the incremental oracle.

Two layers:

* :class:`MatchingUtility` / :class:`WeightedMatchingUtility` — the
  submodular functions of Lemmas 2.2.2 and 2.3.2 packaged as plain
  value oracles over slot subsets.  These are what the budgeted greedy
  optimises in Theorems 2.2.1 / 2.3.1.

* :class:`IncrementalMatchingOracle` — the performance-critical version
  for the cardinality case.  The greedy asks for ``F(S ∪ I) - F(S)``
  for *every* candidate interval ``I`` each round; recomputing a maximum
  matching from scratch per probe is ``O(m · E·sqrt(V))`` per round.
  Instead we keep the maximum matching ``M`` of the committed slot set
  and evaluate a probe by augmenting a *copy* of ``M`` from the probe's
  new slots only.  Correct because a maximum matching of ``S`` extends
  to a maximum matching of ``S ∪ I`` through augmenting paths (the
  matroid-rank update rule), which is also the engine of the paper's
  Lemma 2.1.1 accounting.

All state lives on the graph's int-indexed view
(:mod:`repro.matching.fastgraph`): the matching is a pair of flat int
arrays, the committed set a byte mask, and a probe costs two
``list.copy()`` calls plus one stamped DFS per new slot — no dict or
frozenset churn on the hot path.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Mapping

from repro.core.submodular import SetFunction
from repro.matching.fastgraph import (
    apply_augmenting_path,
    hk_solve,
    indexed_view,
    kuhn_search,
)
from repro.matching.graph import BipartiteGraph, Matching, Vertex
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.weighted import max_weight_matching, weighted_matching_value

__all__ = ["MatchingUtility", "WeightedMatchingUtility", "IncrementalMatchingOracle"]


class MatchingUtility(SetFunction):
    """``F(S) = max-cardinality matching saturating only slots in S``.

    Ground set is the graph's left side.  Stateless; each evaluation
    runs Hopcroft–Karp on the restriction.  Use the incremental oracle
    when evaluating many overlapping subsets.
    """

    def __init__(self, graph: BipartiteGraph):
        self.graph = graph

    @property
    def ground_set(self) -> FrozenSet[Vertex]:
        return self.graph.left

    def value(self, subset: FrozenSet[Vertex]) -> float:
        view = indexed_view(self.graph)
        _, _, size = hk_solve(view, view.mask_of(subset))
        return float(size)


class WeightedMatchingUtility(SetFunction):
    """``F(S) = max job-value matching saturating only slots in S``.

    The prize-collecting utility of Lemma 2.3.2.
    """

    def __init__(self, graph: BipartiteGraph, job_values: Mapping[Vertex, float]):
        self.graph = graph
        self.job_values = {k: float(v) for k, v in job_values.items()}

    @property
    def ground_set(self) -> FrozenSet[Vertex]:
        return self.graph.left

    def value(self, subset: FrozenSet[Vertex]) -> float:
        return weighted_matching_value(self.graph, self.job_values, subset)

    def best_matching(self, subset: Iterable[Vertex]) -> Matching:
        """The optimal matching itself (used to extract the schedule)."""
        return max_weight_matching(self.graph, self.job_values, frozenset(subset))


class IncrementalMatchingOracle(SetFunction):
    """Stateful cardinality-matching oracle with cheap marginal probes.

    The :meth:`value` method satisfies the plain ``SetFunction``
    contract for *any* subset (falling back to a fresh solve when the
    query is not a superset of the committed slots), so this object can
    be dropped anywhere a :class:`MatchingUtility` is expected.  The
    fast path is:

    ``gain(extra)``   marginal cardinality of ``committed | extra``
    ``commit(extra)`` grow the committed set, reusing the matching

    Both run augmentations only from the new slots.  ``commit_version``
    counts commits — it is the selection fingerprint solvers use to
    memoise gains (a gain probed at version ``k`` is stale the moment
    the version changes, and by submodularity only an *upper bound*
    afterwards).
    """

    def __init__(self, graph: BipartiteGraph, committed: Iterable[Vertex] = ()):  # noqa: D401
        self.graph = graph
        self._view = indexed_view(graph)
        self._committed_mask = bytearray(self._view.n_left)
        self._match_l: List[int] = [-1] * self._view.n_left
        self._match_r: List[int] = [-1] * self._view.n_right
        self._size = 0
        # Right-side scratch buffers shared by every probe: stamped
        # visited array + parent trail (see fastgraph.kuhn_augment),
        # plus the per-commit-version dead-region memo (a job marked
        # dead cannot reach a free job until the next commit — see
        # kuhn_search).
        self._visited = [0] * self._view.n_right
        self._parent = [-1] * self._view.n_right
        self._dead = [-1] * self._view.n_right
        self._stamp = 0
        self.probe_augmentations = 0  # instrumentation for E12
        self.commit_version = 0
        if committed:
            self.commit(committed)

    # -- SetFunction interface ---------------------------------------

    @property
    def ground_set(self) -> FrozenSet[Vertex]:
        return self.graph.left

    def value(self, subset: FrozenSet[Vertex]) -> float:
        index = self._view.left_index
        mask = self._committed_mask
        ids = {i for i in (index.get(v) for v in subset) if i is not None}
        covered = sum(1 for i in ids if mask[i])
        if covered == sum(mask):  # subset ⊇ committed: reuse the matching
            return float(self._size + self._gain_indices([i for i in ids if not mask[i]]))
        return float(len(hopcroft_karp(self.graph, subset)))

    # -- incremental API ----------------------------------------------

    @property
    def committed(self) -> FrozenSet[Vertex]:
        ids = self._view.left_ids
        mask = self._committed_mask
        return frozenset(ids[i] for i in range(len(mask)) if mask[i])

    @property
    def matching(self) -> Matching:
        """The committed maximum matching, materialised on demand."""
        return self._view.arrays_to_matching(self._match_l)

    @property
    def matching_size(self) -> int:
        """``F(committed)`` without materialising the matching."""
        return self._size

    def _gain_indices(self, new_ids: List[int]) -> int:
        """Gain from augmenting a scratch copy of the matching (no commit).

        Three probe-level optimizations, all result-preserving:

        * *copy-on-success* — the scratch matching copies are made only
          when the first augmentation succeeds, so gain-0 probes (the
          bulk of end-game CELF re-probes) are allocation-free;
        * *shared failure stamps* — a failed search leaves the matching
          unchanged, so its visited marks stay valid for the next start
          (if a vertex could not reach a free job, it still cannot); the
          stamp is bumped only after a successful augmentation mutates
          the matching.  This caps a k-slot probe's failure cost at one
          exploration of the alternating component instead of k;
        * *free-job early exit* — the gain can never exceed the number
          of unmatched jobs, so the slot loop stops once they are all
          saturated (every later search is a guaranteed failure).
        """
        if not new_ids:
            return 0
        match_l = self._match_l
        match_r = self._match_r
        view = self._view
        visited, parent, dead = self._visited, self._parent, self._dead
        version = self.commit_version
        free_jobs = view.n_right - self._size
        gained = 0
        copied = False
        trail: List[int] = []
        self._stamp += 1
        for i in new_ids:
            if gained >= free_jobs:
                break
            self.probe_augmentations += 1
            if match_l[i] >= 0:
                continue
            free_right = kuhn_search(
                view, match_r, i, visited, self._stamp, parent, dead, version, trail
            )
            if free_right < 0:
                continue
            if not copied:
                match_l = match_l.copy()
                match_r = match_r.copy()
                copied = True
            apply_augmenting_path(match_l, match_r, free_right, parent)
            gained += 1
            self._stamp += 1
            trail.clear()  # marks now belong to a post-success epoch
        if gained == 0:
            # Every search failed against the *committed* matching, so
            # the explored region is dead for the rest of this commit
            # version — future probes skip it (O(visited) promotion).
            for v in trail:
                dead[v] = version
        return gained

    def gain_indices(self, new_ids: List[int]) -> int:
        """Fast-path probe for solvers that pre-translated slots to indices.

        *new_ids* must be disjoint from the committed set (callers filter
        against :meth:`committed_mask` first).
        """
        return self._gain_indices(new_ids)

    def extension_gains(self, steps: List[List[int]]) -> List[int]:
        """Cumulative gains along a *nested* chain of slot sets.

        ``steps[j]`` holds the fresh slot indices added at extension
        ``j`` (disjoint from the committed set and from earlier steps);
        the return value's ``j``-th entry is
        ``F(committed ∪ steps[0..j]) - F(committed)``.

        This is the batched scoring path for candidate pools with
        prefix structure — all awake intervals sharing a processor and
        a start time are nested, so one scratch matching (and one
        shared failure stamp) sweeps the entire row with one
        augmentation attempt per slot, instead of re-augmenting every
        interval from scratch (``O(T)`` attempts per row instead of
        ``O(T)`` per *interval*).  The reported numbers are identical
        to per-interval :meth:`gain_indices` probes: augmenting from
        each new free slot in any order reaches a maximum matching of
        the union (the Lemma 2.1.1 matroid-rank update), so the
        cumulative count is order-independent.
        """
        view = self._view
        visited, parent, dead = self._visited, self._parent, self._dead
        version = self.commit_version
        match_l = self._match_l
        match_r = self._match_r
        free_jobs = view.n_right - self._size
        gained = 0
        copied = False
        out: List[int] = []
        self._stamp += 1
        for ids in steps:
            for i in ids:
                if gained >= free_jobs:
                    break
                self.probe_augmentations += 1
                if match_l[i] >= 0:
                    continue
                free_right = kuhn_search(
                    view, match_r, i, visited, self._stamp, parent, dead, version
                )
                if free_right < 0:
                    continue
                if not copied:
                    match_l = match_l.copy()
                    match_r = match_r.copy()
                    copied = True
                apply_augmenting_path(match_l, match_r, free_right, parent)
                gained += 1
                self._stamp += 1
            out.append(gained)
        return out

    @property
    def committed_mask(self) -> bytearray:
        """Read-only byte mask of committed left indices (do not mutate)."""
        return self._committed_mask

    @property
    def view(self):
        """The shared :class:`~repro.matching.fastgraph.IndexedView`."""
        return self._view

    def gain(self, extra: Iterable[Vertex]) -> int:
        """``F(committed | extra) - F(committed)`` without committing."""
        index = self._view.left_index
        mask = self._committed_mask
        new_ids = []
        seen = set()
        for v in extra:
            i = index.get(v)
            if i is not None and not mask[i] and i not in seen:
                seen.add(i)
                new_ids.append(i)
        # Index order == sorted-repr order (the view sorts left_ids), so
        # probes stay independent of the caller's set-iteration order.
        new_ids.sort()
        return self._gain_indices(new_ids)

    def commit(self, extra: Iterable[Vertex]) -> int:
        """Grow the committed slot set; returns the cardinality gained."""
        index = self._view.left_index
        new_ids = []
        mask = self._committed_mask
        for v in extra:
            i = index.get(v)
            if i is not None and not mask[i]:
                mask[i] = 1
                new_ids.append(i)
        # Sorted (== sorted-repr) order keeps the committed matching
        # assignment identical across processes for set-typed callers.
        new_ids.sort()
        return self.commit_indices(new_ids, already_masked=True)

    def commit_indices(self, new_ids: List[int], *, already_masked: bool = False) -> int:
        """Index-level :meth:`commit`; *new_ids* must be fresh indices.

        Uses the same shared-failure-stamp and free-job-exhaustion
        shortcuts as the probes (see :meth:`_gain_indices`); the
        committed matching stays maximum on the committed slot set.
        """
        mask = self._committed_mask
        if not already_masked:
            new_ids = [i for i in new_ids if not mask[i]]
            for i in new_ids:
                mask[i] = 1
        view = self._view
        match_l, match_r = self._match_l, self._match_r
        visited, parent, dead = self._visited, self._parent, self._dead
        version = self.commit_version
        free_jobs = view.n_right - self._size
        gained = 0
        self._stamp += 1
        for i in new_ids:
            if gained >= free_jobs:
                break
            if match_l[i] >= 0:
                continue
            free_right = kuhn_search(
                view, match_r, i, visited, self._stamp, parent, dead, version
            )
            if free_right < 0:
                continue
            apply_augmenting_path(match_l, match_r, free_right, parent)
            gained += 1
            self._stamp += 1
        self._size += gained
        self.commit_version += 1
        return gained

    def reset(self) -> None:
        self._committed_mask = bytearray(self._view.n_left)
        self._match_l = [-1] * self._view.n_left
        self._match_r = [-1] * self._view.n_right
        self._dead = [-1] * self._view.n_right
        self._size = 0
        self.probe_augmentations = 0
        self.commit_version = 0
