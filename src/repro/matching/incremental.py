"""Matching utilities as :class:`SetFunction`s, plus the incremental oracle.

Two layers:

* :class:`MatchingUtility` / :class:`WeightedMatchingUtility` — the
  submodular functions of Lemmas 2.2.2 and 2.3.2 packaged as plain
  value oracles over slot subsets.  These are what the budgeted greedy
  optimises in Theorems 2.2.1 / 2.3.1.

* :class:`IncrementalMatchingOracle` — the performance-critical version
  for the cardinality case.  The greedy asks for ``F(S ∪ I) - F(S)``
  for *every* candidate interval ``I`` each round; recomputing a maximum
  matching from scratch per probe is ``O(m · E·sqrt(V))`` per round.
  Instead we keep the maximum matching ``M`` of the committed slot set
  and evaluate a probe by augmenting a *copy* of ``M`` from the probe's
  new slots only.  Correct because a maximum matching of ``S`` extends
  to a maximum matching of ``S ∪ I`` through augmenting paths (the
  matroid-rank update rule), which is also the engine of the paper's
  Lemma 2.1.1 accounting.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.core.submodular import SetFunction
from repro.matching.graph import BipartiteGraph, Matching, Vertex
from repro.matching.hopcroft_karp import augment_from_left, hopcroft_karp
from repro.matching.weighted import max_weight_matching, weighted_matching_value

__all__ = ["MatchingUtility", "WeightedMatchingUtility", "IncrementalMatchingOracle"]


class MatchingUtility(SetFunction):
    """``F(S) = max-cardinality matching saturating only slots in S``.

    Ground set is the graph's left side.  Stateless; each evaluation
    runs Hopcroft–Karp on the restriction.  Use the incremental oracle
    when evaluating many overlapping subsets.
    """

    def __init__(self, graph: BipartiteGraph):
        self.graph = graph

    @property
    def ground_set(self) -> FrozenSet[Vertex]:
        return self.graph.left

    def value(self, subset: FrozenSet[Vertex]) -> float:
        return float(len(hopcroft_karp(self.graph, subset)))


class WeightedMatchingUtility(SetFunction):
    """``F(S) = max job-value matching saturating only slots in S``.

    The prize-collecting utility of Lemma 2.3.2.
    """

    def __init__(self, graph: BipartiteGraph, job_values: Mapping[Vertex, float]):
        self.graph = graph
        self.job_values = {k: float(v) for k, v in job_values.items()}

    @property
    def ground_set(self) -> FrozenSet[Vertex]:
        return self.graph.left

    def value(self, subset: FrozenSet[Vertex]) -> float:
        return weighted_matching_value(self.graph, self.job_values, subset)

    def best_matching(self, subset: Iterable[Vertex]) -> Matching:
        """The optimal matching itself (used to extract the schedule)."""
        return max_weight_matching(self.graph, self.job_values, frozenset(subset))


class IncrementalMatchingOracle(SetFunction):
    """Stateful cardinality-matching oracle with cheap marginal probes.

    The :meth:`value` method satisfies the plain ``SetFunction``
    contract for *any* subset (falling back to a fresh solve when the
    query is not a superset of the committed slots), so this object can
    be dropped anywhere a :class:`MatchingUtility` is expected.  The
    fast path is:

    ``gain(extra)``   marginal cardinality of ``committed | extra``
    ``commit(extra)`` grow the committed set, reusing the matching

    Both run augmentations only from the new slots.
    """

    def __init__(self, graph: BipartiteGraph, committed: Iterable[Vertex] = ()):  # noqa: D401
        self.graph = graph
        self._committed: set = set()
        self._matching = Matching()
        self.probe_augmentations = 0  # instrumentation for E12
        if committed:
            self.commit(committed)

    # -- SetFunction interface ---------------------------------------

    @property
    def ground_set(self) -> FrozenSet[Vertex]:
        return self.graph.left

    def value(self, subset: FrozenSet[Vertex]) -> float:
        subset = frozenset(subset)
        if subset >= self._committed:
            return float(len(self._matching) + self._gain_over(subset - self._committed, subset))
        return float(len(hopcroft_karp(self.graph, subset)))

    # -- incremental API ----------------------------------------------

    @property
    def committed(self) -> FrozenSet[Vertex]:
        return frozenset(self._committed)

    @property
    def matching(self) -> Matching:
        return self._matching

    def _gain_over(self, new_slots: Iterable[Vertex], allowed: FrozenSet[Vertex]) -> int:
        """Gain from augmenting a scratch copy of the matching (no commit)."""
        probe = self._matching.copy()
        gained = 0
        for slot in sorted(new_slots, key=repr):
            self.probe_augmentations += 1
            if augment_from_left(self.graph, probe, slot, allowed):
                gained += 1
        return gained

    def gain(self, extra: Iterable[Vertex]) -> int:
        """``F(committed | extra) - F(committed)`` without committing."""
        extra_set = frozenset(extra) - self._committed
        allowed = frozenset(self._committed) | extra_set
        return self._gain_over(extra_set, allowed)

    def commit(self, extra: Iterable[Vertex]) -> int:
        """Grow the committed slot set; returns the cardinality gained."""
        extra_set = frozenset(extra) - self._committed
        self._committed |= extra_set
        allowed = frozenset(self._committed)
        gained = 0
        for slot in sorted(extra_set, key=repr):
            if augment_from_left(self.graph, self._matching, slot, allowed):
                gained += 1
        return gained

    def reset(self) -> None:
        self._committed.clear()
        self._matching = Matching()
        self.probe_augmentations = 0
