"""Random scheduling instances.

Three generators:

* :func:`random_multi_interval_instance` — the general multi-interval
  workload: each job gets a few random contiguous windows, possibly on
  different processors (the paper's "the job needs specific resources
  held by different processors at different times").

* :func:`bursty_instance` — jobs cluster around burst centres; the
  regime where interval sharing pays most and the gap to per-job
  baselines is widest.

* :func:`small_certifiable_instance` — instances built *around* a small
  explicit candidate-interval pool so the branch-and-bound reference can
  certify the optimum (the E2/E3 ratio experiments need exact OPT).

All generators guarantee feasibility of schedule-all by construction or
by post-check + repair, and state which.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

import numpy as np

from repro.errors import InvalidInstanceError
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.rng import as_generator
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost, CostModel

__all__ = [
    "random_multi_interval_instance",
    "bursty_instance",
    "bursty_arrival_instance",
    "heterogeneous_energy_instance",
    "small_certifiable_instance",
]


def _random_values(n: int, spread: float, gen: np.random.Generator) -> List[float]:
    """Job values in [1, spread] (spread = Delta of Theorem 2.3.3)."""
    if spread <= 1.0:
        return [1.0] * n
    return [float(v) for v in 1.0 + (spread - 1.0) * gen.random(n)]


def _is_feasible(instance: ScheduleInstance) -> bool:
    graph = instance.bipartite_graph()
    return len(hopcroft_karp(graph)) == instance.n_jobs


def _private_slot_repair(
    jobs: List[Job],
    processors: List[Hashable],
    horizon: int,
    matching,
) -> List[Job]:
    """Deterministic last-resort repair for infeasible generator draws.

    Every job a maximum *matching* left out gets one private slot that
    is distinct and unused by the matching — so the repaired instance is
    feasible in a single pass.  Enumerates all ``P * horizon`` slots in
    ``divmod`` order (picking ``cursor % P`` with ``cursor % horizon``
    instead would only reach ``lcm(P, horizon)`` of them, and a slot
    already carrying a matched job would silently waste the repair).
    """
    matched = set(matching.right_to_left)
    used = set(matching.left_to_right)
    free = (
        (processors[q % len(processors)], t)
        for q, t in (divmod(c, horizon) for c in range(len(processors) * horizon))
    )
    free_iter = (slot for slot in free if slot not in used)
    repaired: List[Job] = []
    for job in jobs:
        if job.id in matched:
            repaired.append(job)
            continue
        slot = next(free_iter, None)
        if slot is None:
            raise InvalidInstanceError(
                f"cannot repair instance: {len(jobs)} jobs exceed the "
                f"{len(processors) * horizon}-slot capacity"
            )
        repaired.append(Job(job.id, job.slots | {slot}, job.value))
    return repaired


def random_multi_interval_instance(
    n_jobs: int,
    n_processors: int,
    horizon: int,
    *,
    windows_per_job: int = 2,
    window_length: int = 3,
    value_spread: float = 1.0,
    cost_model: Optional[CostModel] = None,
    rng=None,
    ensure_feasible: bool = True,
) -> ScheduleInstance:
    """General random multi-interval instance.

    Each job receives *windows_per_job* windows of *window_length* slots
    at uniform positions on uniform processors; its valid set ``T_i`` is
    the union of those windows' slots.  With ``ensure_feasible`` the
    generator appends a dedicated private slot for any job that a
    maximum matching leaves out (repair preserves the distribution of
    everything else and guarantees schedule-all feasibility).
    """
    gen = as_generator(rng)
    if n_jobs <= 0 or n_processors <= 0 or horizon <= 0:
        raise InvalidInstanceError("n_jobs, n_processors, horizon must be positive")
    if window_length > horizon:
        raise InvalidInstanceError("window_length cannot exceed the horizon")
    processors = [f"P{i}" for i in range(n_processors)]
    values = _random_values(n_jobs, value_spread, gen)

    jobs: List[Job] = []
    for j in range(n_jobs):
        slots: set = set()
        for _ in range(windows_per_job):
            proc = processors[int(gen.integers(n_processors))]
            start = int(gen.integers(horizon - window_length + 1))
            slots |= {(proc, t) for t in range(start, start + window_length)}
        jobs.append(Job(id=f"j{j}", slots=frozenset(slots), value=values[j]))

    model = cost_model if cost_model is not None else AffineCost(restart_cost=2.0)
    instance = ScheduleInstance(processors, jobs, horizon, model)

    if ensure_feasible and not _is_feasible(instance):
        graph = instance.bipartite_graph()
        matching = hopcroft_karp(graph)
        matched = set(matching.right_to_left)
        repaired: List[Job] = []
        for job in jobs:
            if job.id in matched:
                repaired.append(job)
                continue
            # Give the job one extra uniformly random slot and retry; as a
            # last resort open a slot on a random processor at a random time.
            proc = processors[int(gen.integers(n_processors))]
            t = int(gen.integers(horizon))
            repaired.append(Job(job.id, job.slots | {(proc, t)}, job.value))
        instance = ScheduleInstance(processors, repaired, horizon, model)
        if not _is_feasible(instance):
            # Deterministic fallback: private slots unused by the matching.
            graph = instance.bipartite_graph()
            matching = hopcroft_karp(graph)
            final = _private_slot_repair(repaired, processors, horizon, matching)
            instance = ScheduleInstance(processors, final, horizon, model)
            if not _is_feasible(instance):
                raise InvalidInstanceError(
                    "could not repair instance to feasibility; relax the parameters "
                    f"(n_jobs={n_jobs} vs. capacity {n_processors * horizon})"
                )
    return instance


def bursty_instance(
    n_jobs: int,
    n_processors: int,
    horizon: int,
    *,
    n_bursts: int = 3,
    burst_width: int = 4,
    value_spread: float = 1.0,
    cost_model: Optional[CostModel] = None,
    rng=None,
) -> ScheduleInstance:
    """Jobs clustered around *n_bursts* random burst centres.

    Every job can run on every processor within its burst window —
    the co-scheduling regime where one shared awake interval serves many
    jobs.  Feasibility requires ``n_jobs`` per burst to fit in
    ``n_processors * burst_width``; the generator spreads jobs evenly
    across bursts and validates.
    """
    gen = as_generator(rng)
    if n_bursts <= 0 or burst_width <= 0:
        raise InvalidInstanceError("n_bursts and burst_width must be positive")
    if burst_width > horizon:
        raise InvalidInstanceError("burst_width cannot exceed the horizon")
    per_burst_capacity = n_processors * burst_width
    per_burst_jobs = (n_jobs + n_bursts - 1) // n_bursts
    if per_burst_jobs > per_burst_capacity:
        raise InvalidInstanceError(
            f"{per_burst_jobs} jobs per burst exceed capacity {per_burst_capacity}"
        )
    processors = [f"P{i}" for i in range(n_processors)]
    centres = sorted(int(gen.integers(horizon - burst_width + 1)) for _ in range(n_bursts))
    values = _random_values(n_jobs, value_spread, gen)

    jobs: List[Job] = []
    for j in range(n_jobs):
        c = centres[j % n_bursts]
        slots = frozenset(
            (p, t) for p in processors for t in range(c, c + burst_width)
        )
        jobs.append(Job(id=f"j{j}", slots=slots, value=values[j]))

    model = cost_model if cost_model is not None else AffineCost(restart_cost=2.0)
    instance = ScheduleInstance(processors, jobs, horizon, model)
    if not _is_feasible(instance):
        raise InvalidInstanceError("bursty instance infeasible despite capacity check")
    return instance


def bursty_arrival_instance(
    n_jobs: int,
    n_processors: int,
    horizon: int,
    *,
    n_bursts: int = 4,
    burst_jitter: float = 1.5,
    service_window: int = 4,
    processors_per_job: int = 2,
    value_spread: float = 1.0,
    cost_model: Optional[CostModel] = None,
    rng=None,
) -> ScheduleInstance:
    """Jobs whose *release times* cluster in arrival bursts.

    Models a request queue under bursty traffic: burst epochs are drawn
    uniformly over the horizon, each job's arrival is its burst epoch
    plus geometric-tailed jitter of scale *burst_jitter*, and the job
    must run within ``[arrival, arrival + service_window - 1]`` on one of
    *processors_per_job* uniformly drawn processors.  Unlike
    :func:`bursty_instance` (whole-fleet burst windows), jobs here keep
    private processor subsets and staggered deadlines — the regime where
    the greedy must trade a shared awake interval against per-burst
    restarts.

    Feasibility is guaranteed by post-check + repair: jobs a maximum
    matching leaves out get deterministic round-robin private slots.
    """
    gen = as_generator(rng)
    if n_jobs <= 0 or n_processors <= 0 or horizon <= 0:
        raise InvalidInstanceError("n_jobs, n_processors, horizon must be positive")
    if n_bursts <= 0 or service_window <= 0:
        raise InvalidInstanceError("n_bursts and service_window must be positive")
    if service_window > horizon:
        raise InvalidInstanceError("service_window cannot exceed the horizon")
    processors = [f"P{i}" for i in range(n_processors)]
    k = max(1, min(processors_per_job, n_processors))
    epochs = [int(gen.integers(horizon)) for _ in range(n_bursts)]
    values = _random_values(n_jobs, value_spread, gen)

    jobs: List[Job] = []
    for j in range(n_jobs):
        epoch = epochs[int(gen.integers(n_bursts))]
        jitter = int(gen.geometric(1.0 / (1.0 + burst_jitter))) - 1
        arrival = min(horizon - 1, epoch + jitter)
        end = min(horizon, arrival + service_window)
        procs_idx = gen.choice(n_processors, size=k, replace=False)
        slots = frozenset(
            (processors[p], t) for p in procs_idx for t in range(arrival, end)
        )
        jobs.append(Job(id=f"j{j}", slots=slots, value=values[j]))

    model = cost_model if cost_model is not None else AffineCost(restart_cost=2.0)
    instance = ScheduleInstance(processors, jobs, horizon, model)
    if _is_feasible(instance):
        return instance

    # Deterministic repair: private slots distinct from the matching's.
    graph = instance.bipartite_graph()
    matching = hopcroft_karp(graph)
    repaired = _private_slot_repair(jobs, processors, horizon, matching)
    instance = ScheduleInstance(processors, repaired, horizon, model)
    if not _is_feasible(instance):
        raise InvalidInstanceError(
            "could not repair bursty-arrival instance to feasibility; relax the "
            f"parameters (n_jobs={n_jobs} vs. capacity {n_processors * horizon})"
        )
    return instance


def heterogeneous_energy_instance(
    n_jobs: int,
    n_processors: int,
    horizon: int,
    *,
    efficiency_spread: float = 4.0,
    restart_range: Tuple[float, float] = (1.0, 4.0),
    windows_per_job: int = 2,
    window_length: int = 3,
    value_spread: float = 1.0,
    rng=None,
) -> ScheduleInstance:
    """Multi-interval jobs on a fleet with per-processor energy profiles.

    Pairs :func:`random_multi_interval_instance` job structure with a
    :class:`~repro.scheduling.power.PerProcessorRateCost` drawn by
    :func:`repro.workloads.energy.heterogeneous_fleet_rates` — efficiency
    cores are cheap to keep awake but contended, performance cores burn
    energy fast.  The cost draw and the job draw share *rng*, so one seed
    reproduces the whole scenario.
    """
    from repro.scheduling.power import PerProcessorRateCost
    from repro.workloads.energy import heterogeneous_fleet_rates

    gen = as_generator(rng)
    processors = [f"P{i}" for i in range(n_processors)]
    rates, restarts = heterogeneous_fleet_rates(
        processors,
        efficiency_spread=efficiency_spread,
        restart_range=restart_range,
        rng=gen,
    )
    return random_multi_interval_instance(
        n_jobs,
        n_processors,
        horizon,
        windows_per_job=windows_per_job,
        window_length=window_length,
        value_spread=value_spread,
        cost_model=PerProcessorRateCost(rates, restarts),
        rng=gen,
    )


def small_certifiable_instance(
    n_jobs: int,
    n_processors: int,
    horizon: int,
    n_candidate_intervals: int,
    *,
    interval_length_range: Tuple[int, int] = (2, 5),
    value_spread: float = 1.0,
    cost_model: Optional[CostModel] = None,
    rng=None,
) -> ScheduleInstance:
    """Instance with a small *explicit* candidate pool for exact solvers.

    Construction guarantees feasibility: candidate intervals are sampled
    first; each job then draws its valid slots from *within* the sampled
    intervals, and a repair pass adds capacity when the matching check
    fails.  The exact branch-and-bound reference explores at most
    ``2^n_candidate_intervals`` subsets, so keep the pool <= ~20.
    """
    gen = as_generator(rng)
    lo, hi = interval_length_range
    if lo <= 0 or hi < lo or hi > horizon:
        raise InvalidInstanceError(f"bad interval_length_range {interval_length_range}")
    processors = [f"P{i}" for i in range(n_processors)]

    pool: List[AwakeInterval] = []
    seen = set()
    guard = 50 * n_candidate_intervals
    while len(pool) < n_candidate_intervals and guard > 0:
        guard -= 1
        proc = processors[int(gen.integers(n_processors))]
        length = int(gen.integers(lo, hi + 1))
        start = int(gen.integers(horizon - length + 1))
        iv = AwakeInterval(proc, start, start + length - 1)
        if iv not in seen:
            seen.add(iv)
            pool.append(iv)
    if len(pool) < n_candidate_intervals:
        raise InvalidInstanceError("could not sample enough distinct intervals")

    all_slots = sorted({s for iv in pool for s in iv.slots()}, key=repr)
    if n_jobs > len(all_slots):
        raise InvalidInstanceError(
            f"{n_jobs} jobs cannot fit in {len(all_slots)} candidate slots"
        )
    values = _random_values(n_jobs, value_spread, gen)
    jobs: List[Job] = []
    for j in range(n_jobs):
        n_slots = int(gen.integers(2, max(3, len(all_slots) // 3)))
        idx = gen.choice(len(all_slots), size=min(n_slots, len(all_slots)), replace=False)
        slots = frozenset(all_slots[i] for i in idx)
        jobs.append(Job(id=f"j{j}", slots=slots, value=values[j]))

    model = cost_model if cost_model is not None else AffineCost(restart_cost=2.0)
    instance = ScheduleInstance(
        processors, jobs, horizon, model, candidate_intervals=pool
    )

    # Repair: jobs a maximum matching cannot place get extra slots from
    # the pool until the instance is feasible (bounded by |all_slots|).
    for _ in range(len(all_slots)):
        graph = instance.bipartite_graph()
        matching = hopcroft_karp(graph)
        if len(matching) == n_jobs:
            return instance
        matched = set(matching.right_to_left)
        repaired = []
        for job in instance.jobs:
            if job.id in matched:
                repaired.append(job)
            else:
                extra = {all_slots[int(gen.integers(len(all_slots)))]}
                repaired.append(Job(job.id, job.slots | extra, job.value))
        instance = ScheduleInstance(
            processors, repaired, horizon, model, candidate_intervals=pool
        )
    graph = instance.bipartite_graph()
    if len(hopcroft_karp(graph)) != n_jobs:
        raise InvalidInstanceError("certifiable instance could not be made feasible")
    return instance
