"""Energy-price traces for the time-of-use cost experiments.

Two families standing in for real market data (Introduction, motivation
2: "energy cost ... varies substantially in energy markets over the
course of a day"):

* :func:`tou_price_trace` — a smooth diurnal curve: cheap at night,
  expensive in the afternoon peak, with optional noise;
* :func:`spot_market_trace` — a flat base price with random short
  spikes, the caricature of spot-market volatility.

Both return plain numpy arrays consumable by
:class:`repro.scheduling.power.TimeOfUseCost`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.rng import as_generator

__all__ = ["tou_price_trace", "spot_market_trace", "heterogeneous_fleet_rates"]


def tou_price_trace(
    horizon: int,
    *,
    base: float = 1.0,
    peak_multiplier: float = 3.0,
    period: int | None = None,
    noise: float = 0.0,
    rng=None,
) -> np.ndarray:
    """Sinusoidal day-curve prices over *horizon* slots.

    The curve bottoms at ``base`` and tops at ``base * peak_multiplier``;
    *period* defaults to the full horizon (one "day").  *noise* adds
    i.i.d. uniform jitter of that relative magnitude, clipped at zero.
    """
    if horizon <= 0:
        raise InvalidInstanceError(f"horizon must be positive, got {horizon}")
    if base < 0 or peak_multiplier < 1:
        raise InvalidInstanceError("need base >= 0 and peak_multiplier >= 1")
    period = horizon if period is None else period
    t = np.arange(horizon)
    # Phase-shifted so slot 0 is the cheap trough (night).
    curve = 0.5 * (1.0 - np.cos(2.0 * np.pi * t / max(1, period)))
    prices = base * (1.0 + (peak_multiplier - 1.0) * curve)
    if noise > 0:
        gen = as_generator(rng)
        prices = prices * (1.0 + noise * (gen.random(horizon) - 0.5))
    return np.clip(prices, 0.0, None)


def spot_market_trace(
    horizon: int,
    *,
    base: float = 1.0,
    spike_probability: float = 0.05,
    spike_multiplier: float = 10.0,
    rng=None,
) -> np.ndarray:
    """Flat price with random multiplicative spikes."""
    if horizon <= 0:
        raise InvalidInstanceError(f"horizon must be positive, got {horizon}")
    if not (0.0 <= spike_probability <= 1.0):
        raise InvalidInstanceError("spike probability must be in [0, 1]")
    gen = as_generator(rng)
    prices = np.full(horizon, float(base))
    spikes = gen.random(horizon) < spike_probability
    prices[spikes] *= float(spike_multiplier)
    return prices


def heterogeneous_fleet_rates(
    processors,
    *,
    efficiency_spread: float = 4.0,
    restart_range: tuple = (1.0, 4.0),
    rng=None,
):
    """Per-processor energy profiles for a heterogeneous fleet.

    Motivation 1 of the paper's introduction: "different processors do
    not necessarily consume energy at the same rate, so we cannot
    scale".  Draws a log-uniform running rate in ``[1, efficiency_spread]``
    (big.LITTLE-style efficiency vs. performance cores) and a uniform
    restart cost in *restart_range* for every processor; feed the result
    to :class:`repro.scheduling.power.PerProcessorRateCost`.

    Returns ``(rates, restart_costs)`` dicts keyed by processor.
    """
    if efficiency_spread < 1.0:
        raise InvalidInstanceError("efficiency_spread must be >= 1")
    lo, hi = restart_range
    if lo < 0 or hi < lo:
        raise InvalidInstanceError(f"bad restart_range {restart_range}")
    gen = as_generator(rng)
    procs = list(processors)
    rates = {
        p: float(np.exp(gen.uniform(0.0, np.log(efficiency_spread))))
        if efficiency_spread > 1.0
        else 1.0
        for p in procs
    }
    restart_costs = {p: float(gen.uniform(lo, hi)) for p in procs}
    return rates, restart_costs
