"""Utility generators for the secretary experiments.

Each helper builds a concrete submodular utility (plus any side data the
experiment needs) over a fresh ground set of ``n`` elements:

* :func:`additive_values` — i.i.d. values (uniform or heavy-tailed
  lognormal), the multiple-choice secretary benchmark [36];
* :func:`coverage_utility` — secretaries covering random skill subsets,
  the Max-Cover-flavoured monotone utility;
* :func:`facility_utility` — facility-location benefit matrices;
* :func:`cut_utility` — weighted cut functions on G(n, p) graphs, the
  canonical non-monotone family for Algorithm 2.

:func:`arrival_stream` bridges these utilities to the online runtime's
arrival-process registry: it returns a legacy
:class:`~repro.secretary.stream.SecretaryStream` whose order is drawn
by any registered process, so stream-based consumers (the E6–E11
benchmarks, examples) can replay adversarial/bursty/nearly-sorted
orders without switching to the driver API.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.functions import (
    AdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    WeightedCoverageFunction,
)
from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.rng import as_generator

__all__ = [
    "STREAM_FAMILIES",
    "additive_values",
    "coverage_utility",
    "facility_utility",
    "cut_utility",
    "knapsack_weights",
    "arrival_stream",
    "stream_utility",
    "sparse_coverage_utility",
    "sparse_cut_utility",
    "sparse_additive_utility",
]

STREAM_FAMILIES = ("additive", "coverage", "facility", "cut")


def stream_utility(family: str, n: int, *, aux: int = 0, rng=None, **params):
    """Build one stream-utility family by name (the single source of
    family dispatch and aux-size defaults).

    Both the engine's secretary adapters and the online session layer
    construct their instances through this function, so a given
    ``(family, n, aux, seed)`` names the same utility everywhere.
    ``aux`` is the family-specific auxiliary size (coverage universe /
    facility clients; 0 picks the default); *params* forwards the
    family's knobs (``distribution``, ``skills_per_secretary``,
    ``edge_probability``).

    A ``backend`` param (``"dense"``/``"sparse"``/``"naive"``/
    ``"auto"``) pins the returned utility's kernel backend via
    :meth:`~repro.core.submodular.SetFunction.set_default_backend`, so
    sweep specs can select it without any consumer-side plumbing — the
    instance itself is identical either way (backends are
    bit-identical; only wall time changes).
    """
    backend = params.pop("backend", None)
    gen = as_generator(rng)
    fn = None
    if family == "additive":
        fn, _ = additive_values(
            n, distribution=str(params.get("distribution", "uniform")), rng=gen
        )
    elif family == "coverage":
        universe = aux if aux > 0 else max(1, n // 3)
        fn = coverage_utility(
            n, universe,
            skills_per_secretary=int(params.get("skills_per_secretary", 4)),
            rng=gen,
        )
    elif family == "facility":
        clients = aux if aux > 0 else max(2, n // 4)
        fn = facility_utility(n, clients, rng=gen)
    elif family == "cut":
        fn = cut_utility(
            n, edge_probability=float(params.get("edge_probability", 0.3)), rng=gen
        )
    if fn is None:
        raise InvalidInstanceError(
            f"unknown stream-utility family {family!r}; known: {STREAM_FAMILIES}"
        )
    if backend is not None:
        fn.set_default_backend(str(backend))
    return fn


def additive_values(
    n: int,
    *,
    distribution: str = "uniform",
    rng=None,
) -> Tuple[AdditiveFunction, Dict[str, float]]:
    """i.i.d. per-element values; returns (utility, raw values)."""
    gen = as_generator(rng)
    if n <= 0:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    if distribution == "uniform":
        raw = gen.random(n)
    elif distribution == "lognormal":
        raw = gen.lognormal(mean=0.0, sigma=1.0, size=n)
    else:
        raise InvalidInstanceError(f"unknown distribution {distribution!r}")
    values = {f"s{i}": float(v) for i, v in enumerate(raw)}
    return AdditiveFunction(values), values


def knapsack_weights(
    elements,
    n_knapsacks: int,
    *,
    low: float = 0.05,
    high: float = 0.5,
    rng=None,
) -> Dict:
    """Heterogeneous per-element weight vectors for ``l`` unit knapsacks.

    Weights are i.i.d. uniform on ``[low, high)``.  Elements are visited
    in sorted-by-repr order so the draws land on the same elements in
    every process (set iteration order is hash-randomised).
    """
    gen = as_generator(rng)
    if n_knapsacks <= 0:
        raise InvalidInstanceError(
            f"n_knapsacks must be positive, got {n_knapsacks}"
        )
    if not (0.0 <= low < high):
        raise InvalidInstanceError(f"need 0 <= low < high, got [{low}, {high})")
    span = high - low
    return {
        e: [float(low + span * gen.random()) for _ in range(n_knapsacks)]
        for e in sorted(elements, key=repr)
    }


def arrival_stream(utility: SetFunction, process: str = "uniform", seed=None, **params):
    """A :class:`SecretaryStream` ordered by a registered arrival process.

    ``arrival_stream(fn, "uniform", seed)`` is interchangeable with
    ``SecretaryStream(fn, rng=seed)`` (same permutation for the same
    seed); other processes reuse the stream API with their own orders.
    Minibatch structure is a driver concern — a legacy stream reveals
    one element at a time regardless of the process's batching.
    """
    # Imported here: repro.secretary imports this module's generators.
    from repro.online.arrivals import build_arrival_schedule
    from repro.secretary.stream import SecretaryStream

    schedule = build_arrival_schedule(process, utility, seed, **params)
    return SecretaryStream(utility, order=schedule.order)


def coverage_utility(
    n: int,
    universe_size: int,
    *,
    skills_per_secretary: int = 4,
    rng=None,
) -> CoverageFunction:
    """Each secretary covers a random subset of a skill universe."""
    gen = as_generator(rng)
    if n <= 0 or universe_size <= 0:
        raise InvalidInstanceError("n and universe_size must be positive")
    covers = {}
    for i in range(n):
        size = min(universe_size, max(1, int(gen.integers(1, skills_per_secretary + 1))))
        idx = gen.choice(universe_size, size=size, replace=False)
        covers[f"s{i}"] = {f"u{j}" for j in idx}
    return CoverageFunction(covers)


def facility_utility(
    n: int,
    n_clients: int,
    *,
    rng=None,
) -> FacilityLocationFunction:
    """Random non-negative client-benefit matrix (uniform [0, 1))."""
    gen = as_generator(rng)
    if n <= 0 or n_clients <= 0:
        raise InvalidInstanceError("n and n_clients must be positive")
    benefit = gen.random((n_clients, n))
    return FacilityLocationFunction([f"s{i}" for i in range(n)], benefit)


def cut_utility(
    n: int,
    *,
    edge_probability: float = 0.3,
    rng=None,
) -> CutFunction:
    """Weighted cut function of a G(n, p) graph — non-monotone submodular."""
    gen = as_generator(rng)
    if n <= 0:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    if not (0.0 <= edge_probability <= 1.0):
        raise InvalidInstanceError("edge probability must be in [0, 1]")
    vertices = [f"s{i}" for i in range(n)]
    edges: List[Tuple[str, str, float]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < edge_probability:
                edges.append((vertices[i], vertices[j], float(gen.random())))
    return CutFunction(vertices, edges)


# -- array-built sparse instances (10^6-element ground sets) -----------------
#
# The mapping-based builders above top out around n≈10^4 — python dicts
# of frozensets dominate memory long before the kernels do.  These
# builders generate the instance directly in CSR/COO numpy arrays and
# hand it to the ``from_arrays`` constructors, so a million-element
# utility costs its nnz and nothing more.  Elements are the integers
# ``0..n-1`` (positional kernels skip the element-index dict entirely).


def sparse_coverage_utility(
    n: int,
    universe_size: int,
    *,
    skills_per_secretary: int = 6,
    weighted: bool = False,
    rng=None,
) -> CoverageFunction:
    """CSR-built (weighted) coverage over integer elements/items.

    Per-element item draws are uniform **with replacement** and
    deduplicated during kernel canonicalization, so a row's effective
    size can be slightly below its draw count — the price of fully
    vectorized generation (no per-element ``choice`` loop, which is
    what makes n=10^6 constructible in seconds).
    """
    gen = as_generator(rng)
    if n <= 0 or universe_size <= 0:
        raise InvalidInstanceError("n and universe_size must be positive")
    if skills_per_secretary <= 0:
        raise InvalidInstanceError("skills_per_secretary must be positive")
    hi = min(universe_size, skills_per_secretary) + 1
    sizes = gen.integers(1, hi, size=n) if hi > 2 else np.ones(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    indices = gen.integers(0, universe_size, size=int(indptr[-1]))
    if weighted:
        weights = gen.random(universe_size)
        return WeightedCoverageFunction.from_arrays(
            indptr, indices, weights, n_items=universe_size
        )
    return CoverageFunction.from_arrays(indptr, indices, n_items=universe_size)


def sparse_cut_utility(
    n: int,
    *,
    avg_degree: float = 8.0,
    rng=None,
) -> CutFunction:
    """COO-built weighted cut on a uniform random multigraph.

    Draws ``n · avg_degree / 2`` endpoint pairs uniformly (self-loops
    dropped, parallel edges consolidated by weight sum in the kernel) —
    the sparse analogue of :func:`cut_utility`'s G(n, p), constructible
    at n=10^6 where the O(n²) pair scan is not.
    """
    gen = as_generator(rng)
    if n <= 0:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    if avg_degree <= 0:
        raise InvalidInstanceError(f"avg_degree must be positive, got {avg_degree}")
    m = max(1, int(n * avg_degree / 2))
    u = gen.integers(0, n, size=m)
    v = gen.integers(0, n, size=m)
    w = gen.random(m)
    return CutFunction.from_arrays(n, u, v, w)


def sparse_additive_utility(
    n: int,
    *,
    distribution: str = "uniform",
    rng=None,
) -> AdditiveFunction:
    """Value-vector additive utility over integer elements ``0..n-1``."""
    gen = as_generator(rng)
    if n <= 0:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    if distribution == "uniform":
        raw = gen.random(n)
    elif distribution == "lognormal":
        raw = gen.lognormal(mean=0.0, sigma=1.0, size=n)
    else:
        raise InvalidInstanceError(f"unknown distribution {distribution!r}")
    return AdditiveFunction.from_arrays(raw)
