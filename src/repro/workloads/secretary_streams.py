"""Utility generators for the secretary experiments.

Each helper builds a concrete submodular utility (plus any side data the
experiment needs) over a fresh ground set of ``n`` elements:

* :func:`additive_values` — i.i.d. values (uniform or heavy-tailed
  lognormal), the multiple-choice secretary benchmark [36];
* :func:`coverage_utility` — secretaries covering random skill subsets,
  the Max-Cover-flavoured monotone utility;
* :func:`facility_utility` — facility-location benefit matrices;
* :func:`cut_utility` — weighted cut functions on G(n, p) graphs, the
  canonical non-monotone family for Algorithm 2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.functions import (
    AdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
)
from repro.errors import InvalidInstanceError
from repro.rng import as_generator

__all__ = [
    "additive_values",
    "coverage_utility",
    "facility_utility",
    "cut_utility",
    "knapsack_weights",
]


def additive_values(
    n: int,
    *,
    distribution: str = "uniform",
    rng=None,
) -> Tuple[AdditiveFunction, Dict[str, float]]:
    """i.i.d. per-element values; returns (utility, raw values)."""
    gen = as_generator(rng)
    if n <= 0:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    if distribution == "uniform":
        raw = gen.random(n)
    elif distribution == "lognormal":
        raw = gen.lognormal(mean=0.0, sigma=1.0, size=n)
    else:
        raise InvalidInstanceError(f"unknown distribution {distribution!r}")
    values = {f"s{i}": float(v) for i, v in enumerate(raw)}
    return AdditiveFunction(values), values


def knapsack_weights(
    elements,
    n_knapsacks: int,
    *,
    low: float = 0.05,
    high: float = 0.5,
    rng=None,
) -> Dict:
    """Heterogeneous per-element weight vectors for ``l`` unit knapsacks.

    Weights are i.i.d. uniform on ``[low, high)``.  Elements are visited
    in sorted-by-repr order so the draws land on the same elements in
    every process (set iteration order is hash-randomised).
    """
    gen = as_generator(rng)
    if n_knapsacks <= 0:
        raise InvalidInstanceError(
            f"n_knapsacks must be positive, got {n_knapsacks}"
        )
    if not (0.0 <= low < high):
        raise InvalidInstanceError(f"need 0 <= low < high, got [{low}, {high})")
    span = high - low
    return {
        e: [float(low + span * gen.random()) for _ in range(n_knapsacks)]
        for e in sorted(elements, key=repr)
    }


def coverage_utility(
    n: int,
    universe_size: int,
    *,
    skills_per_secretary: int = 4,
    rng=None,
) -> CoverageFunction:
    """Each secretary covers a random subset of a skill universe."""
    gen = as_generator(rng)
    if n <= 0 or universe_size <= 0:
        raise InvalidInstanceError("n and universe_size must be positive")
    covers = {}
    for i in range(n):
        size = min(universe_size, max(1, int(gen.integers(1, skills_per_secretary + 1))))
        idx = gen.choice(universe_size, size=size, replace=False)
        covers[f"s{i}"] = {f"u{j}" for j in idx}
    return CoverageFunction(covers)


def facility_utility(
    n: int,
    n_clients: int,
    *,
    rng=None,
) -> FacilityLocationFunction:
    """Random non-negative client-benefit matrix (uniform [0, 1))."""
    gen = as_generator(rng)
    if n <= 0 or n_clients <= 0:
        raise InvalidInstanceError("n and n_clients must be positive")
    benefit = gen.random((n_clients, n))
    return FacilityLocationFunction([f"s{i}" for i in range(n)], benefit)


def cut_utility(
    n: int,
    *,
    edge_probability: float = 0.3,
    rng=None,
) -> CutFunction:
    """Weighted cut function of a G(n, p) graph — non-monotone submodular."""
    gen = as_generator(rng)
    if n <= 0:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    if not (0.0 <= edge_probability <= 1.0):
        raise InvalidInstanceError("edge probability must be in [0, 1]")
    vertices = [f"s{i}" for i in range(n)]
    edges: List[Tuple[str, str, float]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < edge_probability:
                edges.append((vertices[i], vertices[j], float(gen.random())))
    return CutFunction(vertices, edges)
