"""Synthetic workload generators.

The paper evaluates nothing empirically; these generators provide the
laptop-scale synthetic equivalents the experiments run on (see the
substitution note in DESIGN.md): random multi-interval job sets, bursty
arrival patterns, time-of-use energy price traces, and the utility
streams the secretary experiments consume.  Everything is seeded through
:func:`repro.rng.as_generator` for bit-for-bit reproducibility.
"""

from repro.workloads.jobs import (
    bursty_instance,
    random_multi_interval_instance,
    small_certifiable_instance,
)
from repro.workloads.energy import spot_market_trace, tou_price_trace
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    cut_utility,
    facility_utility,
)

__all__ = [
    "random_multi_interval_instance",
    "bursty_instance",
    "small_certifiable_instance",
    "tou_price_trace",
    "spot_market_trace",
    "additive_values",
    "coverage_utility",
    "cut_utility",
    "facility_utility",
]
