"""Partition matroid: at most ``capacity[block]`` elements per block.

One of Babaioff et al.'s constant-competitive special cases (truncated
partition matroids); also the natural "at most c hires per department"
constraint for the secretary experiments.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Mapping

from repro.errors import InvalidInstanceError
from repro.matroids.base import Matroid

__all__ = ["PartitionMatroid"]


class PartitionMatroid(Matroid):
    """Ground set partitioned into blocks, each with a capacity.

    Parameters
    ----------
    blocks:
        Mapping from element to its block label.  Every element belongs
        to exactly one block (a partition — enforced by the mapping).
    capacities:
        Mapping from block label to a non-negative capacity.  Blocks
        absent from the mapping default to capacity 1.
    """

    def __init__(
        self,
        blocks: Mapping[Hashable, Hashable],
        capacities: Mapping[Hashable, int] | None = None,
    ):
        self._block_of: Dict[Hashable, Hashable] = dict(blocks)
        self._ground = frozenset(self._block_of)
        self._capacity: Dict[Hashable, int] = dict(capacities or {})
        for label, cap in self._capacity.items():
            if cap < 0:
                raise InvalidInstanceError(f"block {label!r} has negative capacity {cap}")

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def capacity_of(self, label: Hashable) -> int:
        return self._capacity.get(label, 1)

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        s = frozenset(subset)
        if not s <= self._ground:
            return False
        counts: Dict[Hashable, int] = {}
        for e in s:
            label = self._block_of[e]
            counts[label] = counts.get(label, 0) + 1
            if counts[label] > self.capacity_of(label):
                return False
        return True

    def rank(self, subset: Iterable[Hashable] | None = None) -> int:
        pool = self._ground if subset is None else frozenset(subset) & self._ground
        counts: Dict[Hashable, int] = {}
        for e in pool:
            label = self._block_of[e]
            counts[label] = counts.get(label, 0) + 1
        return sum(min(c, self.capacity_of(label)) for label, c in counts.items())
