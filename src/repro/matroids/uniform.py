"""Uniform matroid: independent iff size at most k.

The cardinality constraint of the basic submodular secretary problem
("select a set of at most k applicants") *is* the uniform matroid; the
matroid secretary algorithm run on it must therefore match Algorithm 1's
behaviour, which the integration tests check.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable

from repro.errors import InvalidInstanceError
from repro.matroids.base import Matroid

__all__ = ["UniformMatroid"]


class UniformMatroid(Matroid):
    """All subsets of size at most *k* are independent."""

    def __init__(self, ground: Iterable[Hashable], k: int):
        self._ground = frozenset(ground)
        if k < 0:
            raise InvalidInstanceError(f"k must be non-negative, got {k}")
        self.k = int(k)

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        s = frozenset(subset)
        if not s <= self._ground:
            return False
        return len(s) <= self.k

    def rank(self, subset: Iterable[Hashable] | None = None) -> int:
        pool = self._ground if subset is None else frozenset(subset)
        return min(self.k, len(pool & self._ground))
