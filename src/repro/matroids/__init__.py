"""Matroid substrate for the submodular matroid secretary problem (§3.3).

Matroids are given by independence oracles, exactly as in the paper
("assume we have an oracle to answer whether a subset of U belongs to I
or not").  Implemented families: uniform, partition, graphic,
transversal, and laminar — the special cases Babaioff et al. [8] and
the paper's experiments use — plus an axiom checker used by the
property-based tests.
"""

from repro.matroids.base import Matroid, check_matroid_axioms
from repro.matroids.uniform import UniformMatroid
from repro.matroids.partition import PartitionMatroid
from repro.matroids.graphic import GraphicMatroid
from repro.matroids.transversal import TransversalMatroid
from repro.matroids.laminar import LaminarMatroid
from repro.matroids.adapters import MatroidIntersection, TruncatedMatroid

__all__ = [
    "TruncatedMatroid",
    "MatroidIntersection",
    "Matroid",
    "check_matroid_axioms",
    "UniformMatroid",
    "PartitionMatroid",
    "GraphicMatroid",
    "TransversalMatroid",
    "LaminarMatroid",
]
