"""Graphic matroid: edge sets that are forests.

Independence tested with a union-find over the edge set (cycle
detection), giving near-linear oracle calls — important because the
secretary algorithm probes independence at every arrival.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Tuple

from repro.errors import InvalidInstanceError
from repro.matroids.base import Matroid

__all__ = ["GraphicMatroid"]

Edge = Hashable


class _UnionFind:
    """Path-compressing union-find over arbitrary hashables."""

    def __init__(self) -> None:
        self.parent: Dict[Hashable, Hashable] = {}

    def find(self, x: Hashable) -> Hashable:
        root = x
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


class GraphicMatroid(Matroid):
    """Matroid of forests of a multigraph.

    Parameters
    ----------
    edges:
        Mapping from edge identifier to its ``(u, v)`` endpoints.
        Parallel edges and self-loops are allowed (self-loops are simply
        never independent with themselves — they close a cycle of
        length one — matching matroid convention that loops are
        dependent).
    """

    def __init__(self, edges: "dict[Edge, Tuple[Hashable, Hashable]]"):
        if not isinstance(edges, dict):
            raise InvalidInstanceError("edges must be a dict of id -> (u, v)")
        self._edges = dict(edges)
        self._ground = frozenset(self._edges)

    @property
    def ground_set(self) -> FrozenSet[Edge]:
        return self._ground

    def endpoints(self, edge: Edge) -> Tuple[Hashable, Hashable]:
        return self._edges[edge]

    def is_independent(self, subset: Iterable[Edge]) -> bool:
        s = frozenset(subset)
        if not s <= self._ground:
            return False
        uf = _UnionFind()
        for e in sorted(s, key=repr):
            u, v = self._edges[e]
            if u == v:
                return False
            if not uf.union(u, v):
                return False
        return True
