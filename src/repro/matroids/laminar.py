"""Laminar matroid: nested capacity constraints.

A laminar family is a collection of sets where any two are disjoint or
nested; each carries a capacity, and a set is independent when it
respects every capacity.  Generalises partition matroids (one level of
nesting) and models hierarchical hiring quotas in the secretary
experiments (team <= 3, department <= 5, company <= 8, ...).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from repro.errors import InvalidInstanceError
from repro.matroids.base import Matroid

__all__ = ["LaminarMatroid"]


class LaminarMatroid(Matroid):
    """Matroid from a laminar family with capacities.

    Parameters
    ----------
    ground:
        The ground set.
    family:
        Mapping from a label to ``(member_set, capacity)``.  The member
        sets must form a laminar family over *ground* (validated).  The
        whole ground set is implicitly unconstrained unless listed.
    """

    def __init__(
        self,
        ground: Iterable[Hashable],
        family: Mapping[Hashable, Tuple[Iterable[Hashable], int]],
    ):
        self._ground = frozenset(ground)
        self._family: Dict[Hashable, Tuple[FrozenSet[Hashable], int]] = {}
        for label, (members, cap) in family.items():
            mset = frozenset(members)
            if not mset <= self._ground:
                raise InvalidInstanceError(
                    f"family set {label!r} contains non-ground elements"
                )
            if cap < 0:
                raise InvalidInstanceError(f"family set {label!r} has negative capacity")
            self._family[label] = (mset, int(cap))
        self._check_laminar()

    def _check_laminar(self) -> None:
        sets: List[Tuple[Hashable, FrozenSet[Hashable]]] = [
            (label, s) for label, (s, _) in self._family.items()
        ]
        for i, (la, a) in enumerate(sets):
            for lb, b in sets[i + 1 :]:
                if a & b and not (a <= b or b <= a):
                    raise InvalidInstanceError(
                        f"family is not laminar: {la!r} and {lb!r} properly overlap"
                    )

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        s = frozenset(subset)
        if not s <= self._ground:
            return False
        for members, cap in self._family.values():
            if len(s & members) > cap:
                return False
        return True
