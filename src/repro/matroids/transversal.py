"""Transversal matroid: subsets of the left side matchable into the right.

This is the matroid the whole scheduling reduction secretly lives in
(job sets matchable into a slot set), so the implementation reuses the
matching substrate's augmenting-path machinery.  Independence of a set
``S`` is checked by building a matching that saturates all of ``S``.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Mapping

from repro.matching.graph import BipartiteGraph, Matching
from repro.matching.weighted import _augment_from_right
from repro.matroids.base import Matroid

__all__ = ["TransversalMatroid"]


class TransversalMatroid(Matroid):
    """Matroid on *elements*, independent iff matchable into *resources*.

    Parameters
    ----------
    adjacency:
        Mapping from each ground element to the iterable of resources it
        may be matched to.
    """

    def __init__(self, adjacency: Mapping[Hashable, Iterable[Hashable]]):
        self._adjacency = {k: frozenset(v) for k, v in adjacency.items()}
        self._ground = frozenset(self._adjacency)
        resources = frozenset().union(*self._adjacency.values()) if self._adjacency else frozenset()
        # Elements live on the RIGHT side of the matching substrate so we
        # can reuse the job-side augmentation directly.
        self._graph = BipartiteGraph(
            left=resources,
            right=self._ground,
            edges=[(r, e) for e, rs in self._adjacency.items() for r in rs],
        )
        self._resources = resources

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        s = frozenset(subset)
        if not s <= self._ground:
            return False
        matching = Matching()
        for e in sorted(s, key=repr):
            if not _augment_from_right(self._graph, matching, e, self._resources):
                return False
        return True
