"""Matroid ABC and the axiom checker.

A matroid ``(U, I)`` satisfies (1) the empty set is independent, (2)
independence is closed under containment, and (3) the augmentation
property.  Implementations provide :meth:`is_independent`; rank and
maximal-independent-subset queries are derived (correct for any matroid
by the greedy/exchange property).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import FrozenSet, Hashable, Iterable, List

from repro.errors import InvalidInstanceError

__all__ = ["Matroid", "check_matroid_axioms"]

Element = Hashable


class Matroid(ABC):
    """Independence-oracle matroid."""

    @property
    @abstractmethod
    def ground_set(self) -> FrozenSet[Element]:
        """The matroid's ground set."""

    @abstractmethod
    def is_independent(self, subset: Iterable[Element]) -> bool:
        """Membership of *subset* in the independent-set family ``I``."""

    # -- derived queries ------------------------------------------------

    def rank(self, subset: Iterable[Element] | None = None) -> int:
        """Rank of *subset* (of the whole matroid when ``None``).

        Computed by the incremental greedy: scan elements in a
        deterministic order, keep those preserving independence.  Exact
        for matroids by the exchange property.
        """
        return len(self.max_independent_subset(subset))

    def max_independent_subset(
        self, subset: Iterable[Element] | None = None
    ) -> FrozenSet[Element]:
        """A maximal independent subset of *subset* (a basis of it)."""
        pool = self.ground_set if subset is None else frozenset(subset)
        stray = pool - self.ground_set
        if stray:
            raise InvalidInstanceError(
                f"elements outside the ground set: {sorted(map(repr, stray))[:5]}"
            )
        chosen: List[Element] = []
        for e in sorted(pool, key=repr):
            if self.is_independent([*chosen, e]):
                chosen.append(e)
        return frozenset(chosen)

    def can_add(self, independent: Iterable[Element], element: Element) -> bool:
        """Whether *independent* + *element* stays independent.

        The primitive the online algorithms call at each arrival.
        """
        base = list(independent)
        if element in base:
            return True
        return self.is_independent([*base, element])


def check_matroid_axioms(matroid: Matroid, *, max_ground: int = 12) -> bool:
    """Exhaustively verify the three matroid axioms on a small ground set.

    Used by the test suite on every implemented family (with ground sets
    small enough for the ``2^n`` sweep).  Raises
    :class:`InvalidInstanceError` with a witness on failure.
    """
    ground = sorted(matroid.ground_set, key=repr)
    if len(ground) > max_ground:
        raise InvalidInstanceError(
            f"axiom check is exponential; ground set of {len(ground)} exceeds {max_ground}"
        )
    if not matroid.is_independent([]):
        raise InvalidInstanceError("axiom 1 violated: empty set not independent")

    independents: List[FrozenSet[Element]] = []
    for r in range(len(ground) + 1):
        for combo in combinations(ground, r):
            if matroid.is_independent(combo):
                independents.append(frozenset(combo))

    indep_set = set(independents)
    for s in independents:
        for e in s:
            if s - {e} not in indep_set:
                raise InvalidInstanceError(
                    f"axiom 2 (hereditary) violated: {set(s)} independent but "
                    f"{set(s - {e})} is not"
                )
    for a in independents:
        for b in independents:
            if len(a) > len(b):
                if not any(matroid.is_independent(b | {e}) for e in a - b):
                    raise InvalidInstanceError(
                        f"axiom 3 (augmentation) violated for A={set(a)}, B={set(b)}"
                    )
    return True
