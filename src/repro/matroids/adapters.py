"""Matroid adapters: truncation and intersection.

* :class:`TruncatedMatroid` — cap any matroid at rank ``k``.  Truncation
  of a matroid is a matroid; Algorithm 3's analysis implicitly works
  with rank-``k`` truncations when it guesses ``|S*|``, and the paper's
  related work highlights *truncated partition matroids* as a
  constant-competitive special case of Babaioff et al.

* :class:`MatroidIntersection` — the conjunction of several matroids'
  independence (a common *independence system*, in general NOT a
  matroid; the axiom checker proves that on a witness in the tests).
  This is the feasibility structure of the ``l``-matroid secretary
  problem, packaged so it can be handed to anything expecting a single
  ``is_independent`` oracle.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Sequence

from repro.errors import InvalidInstanceError
from repro.matroids.base import Matroid

__all__ = ["TruncatedMatroid", "MatroidIntersection"]


class TruncatedMatroid(Matroid):
    """``I' = { S in I : |S| <= k }`` — still a matroid."""

    def __init__(self, base: Matroid, k: int):
        if k < 0:
            raise InvalidInstanceError(f"truncation rank must be non-negative, got {k}")
        self.base = base
        self.k = int(k)

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return frozenset(self.base.ground_set)

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        s = frozenset(subset)
        return len(s) <= self.k and self.base.is_independent(s)

    def rank(self, subset: Iterable[Hashable] | None = None) -> int:
        return min(self.k, self.base.rank(subset))


class MatroidIntersection(Matroid):
    """Conjunction of several matroids' independence oracles.

    Warning: despite subclassing :class:`Matroid` for interface
    compatibility, the intersection of two or more matroids generally
    violates the augmentation axiom — derived queries (``rank``,
    ``max_independent_subset``) are greedy *approximations*, not exact
    ranks.  The online algorithms only ever call ``is_independent`` /
    ``can_add``, which are exact.
    """

    def __init__(self, matroids: Sequence[Matroid]):
        if not matroids:
            raise InvalidInstanceError("need at least one matroid")
        self.matroids = list(matroids)
        ground = frozenset(self.matroids[0].ground_set)
        for m in self.matroids[1:]:
            ground &= frozenset(m.ground_set)
        self._ground = ground

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        s = frozenset(subset)
        if not s <= self._ground:
            return False
        return all(m.is_independent(s) for m in self.matroids)
