"""Gap statistics — the metric of the prior-work "minimum-gap" model.

Baptiste [9] and Demaine et al. [13] phrase power saving as minimizing
the number of *gaps* (maximal idle periods, each charged a restart
alpha).  The paper generalises away from per-gap charging, but the gap
count remains the natural diagnostic of a schedule's sleep structure;
these helpers compute it so experiments and examples can report both
views of the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.instance import ScheduleInstance
    from repro.scheduling.schedule import Schedule

__all__ = ["GapReport", "gap_statistics"]


@dataclass(frozen=True)
class GapReport:
    """Per-schedule sleep/awake structure."""

    awake_runs: int
    awake_slots: int
    busy_slots: int
    idle_awake_slots: int
    gaps: int
    gap_slots: int

    @property
    def utilization(self) -> float:
        """Busy fraction of awake time (1.0 = no wasted energy)."""
        return self.busy_slots / self.awake_slots if self.awake_slots else 1.0


def gap_statistics(schedule: "Schedule", instance: "ScheduleInstance") -> GapReport:
    """Compute the gap structure of *schedule* over *instance*'s horizon.

    A *gap* is a maximal asleep period on a processor that lies strictly
    between two of that processor's awake runs (leading/trailing sleep
    is not a gap — matching the minimum-gap literature, where only
    restarts between busy periods cost alpha).
    """
    runs_by_proc: Dict[Hashable, List] = {}
    for iv in schedule.awake_pattern():
        runs_by_proc.setdefault(iv.processor, []).append(iv)

    awake_runs = 0
    awake_slots = 0
    gaps = 0
    gap_slots = 0
    for proc, runs in runs_by_proc.items():
        runs.sort(key=lambda iv: iv.start)
        awake_runs += len(runs)
        awake_slots += sum(iv.length for iv in runs)
        for prev, nxt in zip(runs, runs[1:]):
            gaps += 1
            gap_slots += nxt.start - prev.end - 1

    busy = len(schedule.assignment)
    return GapReport(
        awake_runs=awake_runs,
        awake_slots=awake_slots,
        busy_slots=busy,
        idle_awake_slots=awake_slots - busy,
        gaps=gaps,
        gap_slots=gap_slots,
    )
