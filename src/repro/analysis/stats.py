"""Trial aggregation: means, deviations, normal-approximation CIs.

Deliberately dependency-light (numpy only) — the experiments report a
mean ratio with a 95% confidence band, which is enough to compare
against the paper's bounds; anything fancier belongs in a notebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["TrialStats", "summarize"]


@dataclass(frozen=True)
class TrialStats:
    """Summary statistics of a batch of scalar trial outcomes."""

    count: int
    mean: float
    std: float
    stderr: float
    ci95_low: float
    ci95_high: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {1.96 * self.stderr:.2g} "
            f"(n={self.count}, range [{self.minimum:.4g}, {self.maximum:.4g}])"
        )


def summarize(values: Iterable[float] | Sequence[float]) -> TrialStats:
    """Summarise trial outcomes; raises on an empty batch (a silent empty
    summary would hide a broken experiment loop)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise zero trials")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    stderr = std / float(np.sqrt(arr.size)) if arr.size > 1 else 0.0
    return TrialStats(
        count=int(arr.size),
        mean=mean,
        std=std,
        stderr=stderr,
        ci95_low=mean - 1.96 * stderr,
        ci95_high=mean + 1.96 * stderr,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
