"""Certificate-free lower bounds for scheduling optima.

The exact branch-and-bound reference caps out around ~26 candidate
intervals; beyond that, ratio experiments still need *some* floor under
OPT.  Two cheap, always-valid lower bounds:

* :func:`job_cover_lower_bound` — every feasible schedule buys, for each
  job, at least one interval containing one of its slots; a fractional
  charging argument (each bought interval can serve many jobs, so charge
  each job ``c(I)/|jobs I can serve|``) yields a valid LP-flavoured
  floor without solving an LP.

* :func:`capacity_lower_bound` — any interval covering ``s`` usable
  slots schedules at most ``s`` jobs, so OPT >= n * (cheapest
  cost-per-usable-slot).  Tight when jobs are dense, vacuous when slots
  are plentiful; the maximum of the two bounds is reported by
  :func:`schedule_cost_lower_bound`.

Both are deliberately simple: their role is regression-guarding large
experiments, not replacing the exact reference where it is affordable.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.errors import InfeasibleError
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.intervals import AwakeInterval

__all__ = [
    "job_cover_lower_bound",
    "capacity_lower_bound",
    "schedule_cost_lower_bound",
]


def _finite_pool(instance: ScheduleInstance, candidates):
    pool = list(candidates) if candidates is not None else instance.candidates()
    slot_map = {
        iv: slots for iv, slots in instance.interval_slot_map(pool).items() if slots
    }
    costs = {iv: instance.cost_of(iv) for iv in slot_map}
    return (
        {iv: s for iv, s in slot_map.items() if not math.isinf(costs[iv])},
        {iv: c for iv, c in costs.items() if not math.isinf(c)},
    )


def job_cover_lower_bound(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> float:
    """Fractional job-charging floor under the schedule-all optimum.

    For each job j let ``m_j = min over intervals I usable by j of
    c(I) / (number of jobs I can serve)``; then OPT >= sum_j m_j,
    because in any solution each bought interval I's cost can be split
    evenly across the <= (jobs I can serve) jobs charged to it, and
    each job is charged to at least one bought interval.
    """
    slot_map, costs = _finite_pool(instance, candidates)
    if not slot_map:
        raise InfeasibleError("no finite-cost candidate interval covers any slot")

    serves: Dict[AwakeInterval, int] = {}
    for iv, slots in slot_map.items():
        serves[iv] = sum(1 for job in instance.jobs if job.slots & slots)

    total = 0.0
    for job in instance.jobs:
        best = math.inf
        for iv, slots in slot_map.items():
            if job.slots & slots and serves[iv] > 0:
                best = min(best, costs[iv] / serves[iv])
        if math.isinf(best):
            raise InfeasibleError(f"job {job.id!r} is not coverable by any interval")
        total += best
    return total


def capacity_lower_bound(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> float:
    """Slot-capacity floor: OPT >= n * min over intervals of cost/slots."""
    slot_map, costs = _finite_pool(instance, candidates)
    if not slot_map:
        raise InfeasibleError("no finite-cost candidate interval covers any slot")
    per_slot = min(costs[iv] / len(slots) for iv, slots in slot_map.items())
    return instance.n_jobs * per_slot


def schedule_cost_lower_bound(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> float:
    """The better (larger) of the two floors — still always valid."""
    return max(
        job_cover_lower_bound(instance, candidates),
        capacity_lower_bound(instance, candidates),
    )
