"""Plain-text experiment tables.

The benchmark harness prints each experiment's table in the same
row/series structure EXPERIMENTS.md records, so a bench run and the
document can be diffed by eye.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_delta"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (no external deps)."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_delta(measured: float, baseline: float) -> str:
    """Render a measured-vs-baseline change as a signed percentage.

    Used by the bench comparison tables; a zero/absent baseline renders
    as ``n/a`` rather than dividing by zero.
    """
    if baseline == 0:
        return "n/a" if measured == 0 else "+inf%"
    return f"{100.0 * (measured - baseline) / abs(baseline):+.1f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
