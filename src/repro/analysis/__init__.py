"""Experiment harness: optimum certification, ratio statistics, tables."""

from repro.analysis.ratio import (
    offline_greedy_cardinality,
    offline_optimum_cardinality,
    competitive_trials,
)
from repro.analysis.stats import TrialStats, summarize
from repro.analysis.tables import format_table
from repro.analysis.bounds import (
    capacity_lower_bound,
    job_cover_lower_bound,
    schedule_cost_lower_bound,
)
from repro.analysis.gaps import GapReport, gap_statistics
from repro.analysis.render import render_schedule

__all__ = [
    "GapReport",
    "gap_statistics",
    "render_schedule",
    "job_cover_lower_bound",
    "capacity_lower_bound",
    "schedule_cost_lower_bound",
    "offline_greedy_cardinality",
    "offline_optimum_cardinality",
    "competitive_trials",
    "TrialStats",
    "summarize",
    "format_table",
]
