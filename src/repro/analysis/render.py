"""ASCII rendering of schedules — a Gantt chart in a terminal.

One row per processor; each time slot prints as

    .   asleep
    #   awake and idle
    a-z / A-Z   awake and running the job labelled with that letter

A legend maps labels back to job ids.  Used by the examples and handy
in tests (a rendered schedule makes assertion failures readable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.instance import ScheduleInstance
    from repro.scheduling.schedule import Schedule

__all__ = ["render_schedule"]

_LABELS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def render_schedule(schedule: "Schedule", instance: "ScheduleInstance") -> str:
    """Render *schedule* on *instance* as a multi-line ASCII chart."""
    awake = set()
    for iv in schedule.awake_pattern():
        awake |= iv.slots()

    job_ids = sorted(schedule.assignment, key=repr)
    label_of: Dict = {}
    for i, job_id in enumerate(job_ids):
        label_of[job_id] = _LABELS[i % len(_LABELS)]
    slot_label: Dict = {
        slot: label_of[job_id] for job_id, slot in schedule.assignment.items()
    }

    width = len(str(instance.horizon - 1))
    lines: List[str] = []
    header = " " * 8 + "".join(
        str(t)[-1] for t in range(instance.horizon)
    )
    lines.append(header)
    for proc in instance.processors:
        cells = []
        for t in range(instance.horizon):
            slot = (proc, t)
            if slot in slot_label:
                cells.append(slot_label[slot])
            elif slot in awake:
                cells.append("#")
            else:
                cells.append(".")
        lines.append(f"{str(proc)[:7]:>7} " + "".join(cells))
    legend = ", ".join(f"{label_of[j]}={j}" for j in job_ids)
    if legend:
        lines.append(f"legend: {legend}")
    lines.append(
        f"cost={schedule.cost(instance):.4g} "
        f"awake_slots={schedule.awake_slot_count()} "
        f"jobs={len(schedule.assignment)}/{instance.n_jobs}"
    )
    return "\n".join(lines)
