"""Optimum certification and competitive-ratio measurement.

The secretary experiments compare an online algorithm's expected value
against the *offline* optimum ``f(R)``:

* :func:`offline_optimum_cardinality` — exhaustive search over
  ``C(n, <=k)`` subsets when that is affordable, else the offline greedy
  (whose (1 - 1/e) guarantee for monotone utilities makes the measured
  competitive ratio conservative — the true ratio can only be better).
  The returned flag says which path certified the number.

* :func:`competitive_trials` — the generic trial loop: build a fresh
  stream per trial (independent child RNGs), run the algorithm, divide
  achieved value by the offline benchmark, and summarise.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Tuple

import numpy as np

from repro.core.submodular import SetFunction
from repro.analysis.stats import TrialStats, summarize
from repro.rng import as_generator, spawn

__all__ = [
    "offline_greedy_cardinality",
    "offline_optimum_cardinality",
    "competitive_trials",
]


def offline_greedy_cardinality(fn: SetFunction, k: int) -> Tuple[frozenset, float]:
    """Standard offline greedy under a cardinality constraint.

    (1 - 1/e)-approximate for monotone submodular utilities [41]; used
    both as an optimum estimate on large ground sets and as the
    downgrade path of :func:`offline_optimum_cardinality`.  Rounds score
    every surviving element through an incremental evaluator — one
    vectorized marginal pass for the kernel-backed families, one oracle
    call per element otherwise (the original cost).
    """
    from repro.core.kernels import evaluator_for

    chosen: set = set()
    evaluator = evaluator_for(fn)
    value = evaluator.current_value
    # Sorted scan: greedy tie-breaks must not depend on (hash-randomised)
    # set iteration order, or the benchmark drifts across processes.
    ground = sorted(fn.ground_set, key=repr)
    for _ in range(max(0, k)):
        candidates = [e for e in ground if e not in chosen]
        if not candidates:
            break
        gains = evaluator.gains(candidates)
        best_i = int(np.argmax(gains))
        if not gains[best_i] > 0.0:
            break
        best_e = candidates[best_i]
        chosen.add(best_e)
        value = fn.value(frozenset(chosen))
        evaluator.advance(best_e, value)
    return frozenset(chosen), value


def offline_optimum_cardinality(
    fn: SetFunction,
    k: int,
    *,
    exhaustive_budget: int = 200_000,
) -> Tuple[float, bool]:
    """Best value of any subset of size <= k; returns (value, is_exact).

    Exhaustive when the number of size-<=k subsets fits in
    *exhaustive_budget*; otherwise falls back to the offline greedy and
    reports ``is_exact=False``.
    """
    ground = sorted(fn.ground_set, key=repr)
    n = len(ground)
    k = min(k, n)
    total = sum(comb(n, r) for r in range(k + 1))
    if total <= exhaustive_budget:
        best = fn.value(frozenset())
        for r in range(1, k + 1):
            for combo in combinations(ground, r):
                best = max(best, fn.value(frozenset(combo)))
        return best, True
    _, value = offline_greedy_cardinality(fn, k)
    return value, False


def competitive_trials(
    run_trial: Callable[[object], Tuple[float, float]],
    trials: int,
    rng=None,
) -> TrialStats:
    """Run *trials* independent trials of ``rng -> (achieved, benchmark)``.

    Each trial receives its own child generator (so trials are
    independent and order-insensitive) and must return the online
    algorithm's achieved value together with the offline benchmark it is
    measured against.  Returns statistics of the per-trial ratio
    ``achieved / benchmark``; benchmark-zero trials count as ratio 1
    when the algorithm also achieved zero, else 0 — both are reported
    conservatively rather than dropped.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    gen = as_generator(rng)
    children = spawn(gen, trials)
    ratios = []
    for child in children:
        achieved, benchmark = run_trial(child)
        if benchmark <= 0:
            ratios.append(1.0 if achieved <= 0 else 0.0)
        else:
            ratios.append(achieved / benchmark)
    return summarize(ratios)
