"""Energy-cost models — "an arbitrary function of the interval and processor".

The paper's central modelling generalisation (Introduction, items 1-3)
is that the energy charged for keeping a processor awake during an
interval is an *arbitrary* per-(processor, interval) quantity, accessed
through a query oracle.  Each class here is such an oracle; they cover
the three motivating scenarios:

1. non-identical processors            -> :class:`PerProcessorRateCost`
2. time-varying energy price / outages -> :class:`TimeOfUseCost`,
                                          :class:`UnavailabilityCost`
3. non-affine growth in length (fans)  -> :class:`SuperlinearCost`

:class:`AffineCost` is the classical ``alpha + length`` model of
[9, 13, 31], kept both as the baseline and for the exact-reference
comparisons.  :class:`TableCost` prices explicitly enumerated intervals
(the "costs explicitly given in the input" reading of Definition 2).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.errors import InvalidInstanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.intervals import AwakeInterval

__all__ = [
    "CostModel",
    "AffineCost",
    "PerProcessorRateCost",
    "TimeOfUseCost",
    "SuperlinearCost",
    "UnavailabilityCost",
    "TableCost",
]

Processor = Hashable


class CostModel(ABC):
    """Oracle pricing awake intervals: ``cost(interval) -> float >= 0``.

    Infinity encodes "this processor cannot be awake during part of the
    interval".  Implementations must be deterministic so the greedy's
    choices are reproducible.
    """

    @abstractmethod
    def cost(self, interval: "AwakeInterval") -> float:
        """Energy charged for keeping the interval's processor awake."""

    def __call__(self, interval: "AwakeInterval") -> float:
        value = self.cost(interval)
        if value < 0:
            raise InvalidInstanceError(
                f"cost model returned negative cost {value} for {interval}"
            )
        return value

    def length_cost_table(self, processor: Processor, max_length: int):
        """Vectorized pricing when cost depends only on interval length.

        Returns ``costs`` with ``costs[L-1]`` the price of any length-L
        interval on *processor*, or ``None`` when this model's prices
        depend on the interval's position (time-of-use, outages,
        explicit tables) — callers then fall back to per-interval
        :meth:`cost` queries.  Solvers use this to price a whole
        candidate pool in one array expression.
        """
        return None


class AffineCost(CostModel):
    """Classical model: ``restart_cost + rate * length``.

    With ``rate=1`` and a common restart cost ``alpha`` this is exactly
    the energy model of Baptiste [9] and Demaine et al. [13]: total
    energy = sum over awake intervals of (alpha + interval length).
    """

    def __init__(self, restart_cost: float, rate: float = 1.0):
        if restart_cost < 0 or rate < 0:
            raise InvalidInstanceError("restart cost and rate must be non-negative")
        self.restart_cost = float(restart_cost)
        self.rate = float(rate)

    def length_cost_table(self, processor: Processor, max_length: int):
        lengths = np.arange(1, max_length + 1, dtype=float)
        return self.restart_cost + self.rate * lengths

    def cost(self, interval: "AwakeInterval") -> float:
        return self.restart_cost + self.rate * interval.length


class PerProcessorRateCost(CostModel):
    """Non-identical processors: per-processor restart cost and rate.

    Motivation 1 from the introduction — "different processors do not
    necessarily consume energy at the same rate, so we cannot scale".
    """

    def __init__(
        self,
        rates: Mapping[Processor, float],
        restart_costs: Mapping[Processor, float],
    ):
        self.rates = {p: float(r) for p, r in rates.items()}
        self.restart_costs = {p: float(c) for p, c in restart_costs.items()}
        bad = [p for p in self.rates if self.rates[p] < 0] + [
            p for p in self.restart_costs if self.restart_costs[p] < 0
        ]
        if bad:
            raise InvalidInstanceError(f"negative rates/restart costs for {bad[:3]}")

    def cost(self, interval: "AwakeInterval") -> float:
        proc = interval.processor
        if proc not in self.rates or proc not in self.restart_costs:
            raise InvalidInstanceError(f"no rate configured for processor {proc!r}")
        return self.restart_costs[proc] + self.rates[proc] * interval.length

    def length_cost_table(self, processor: Processor, max_length: int):
        if processor not in self.rates or processor not in self.restart_costs:
            raise InvalidInstanceError(f"no rate configured for processor {processor!r}")
        lengths = np.arange(1, max_length + 1, dtype=float)
        return self.restart_costs[processor] + self.rates[processor] * lengths


class TimeOfUseCost(CostModel):
    """Energy priced per time slot (electricity-market tariffs).

    Motivation 2 — "optimize energy cost instead of actual energy, which
    varies substantially in energy markets over the course of a day".
    ``prices`` is a length-``horizon`` array of per-slot prices; the
    interval's cost is its restart cost plus the price mass it covers.
    Prices may differ per processor via *per_processor_prices*.
    """

    def __init__(
        self,
        prices: Sequence[float],
        restart_cost: float = 0.0,
        per_processor_prices: Mapping[Processor, Sequence[float]] | None = None,
    ):
        self.prices = np.asarray(prices, dtype=float)
        if (self.prices < 0).any():
            raise InvalidInstanceError("TOU prices must be non-negative")
        if restart_cost < 0:
            raise InvalidInstanceError("restart cost must be non-negative")
        self.restart_cost = float(restart_cost)
        self._cumulative = np.concatenate([[0.0], np.cumsum(self.prices)])
        self._per_proc: Dict[Processor, np.ndarray] = {}
        self._per_proc_cum: Dict[Processor, np.ndarray] = {}
        if per_processor_prices:
            for p, arr in per_processor_prices.items():
                a = np.asarray(arr, dtype=float)
                if (a < 0).any():
                    raise InvalidInstanceError(f"negative prices for processor {p!r}")
                self._per_proc[p] = a
                self._per_proc_cum[p] = np.concatenate([[0.0], np.cumsum(a)])

    def cost(self, interval: "AwakeInterval") -> float:
        cum = self._per_proc_cum.get(interval.processor, self._cumulative)
        if interval.end + 1 >= len(cum):
            raise InvalidInstanceError(
                f"interval {interval} extends past the {len(cum) - 1}-slot price horizon"
            )
        return self.restart_cost + float(cum[interval.end + 1] - cum[interval.start])


class SuperlinearCost(CostModel):
    """Non-affine growth: ``restart_cost + scale * length ** exponent``.

    Motivation 3 — the fan effect: "the longer it stays awake, the
    faster the fan may need to run and the more energy consumed".
    ``exponent > 1`` makes long awake stretches disproportionately
    expensive, so the optimiser prefers splitting into several restarts;
    ``exponent < 1`` models economies of staying on.
    """

    def __init__(self, restart_cost: float, exponent: float, scale: float = 1.0):
        if restart_cost < 0 or scale < 0 or exponent < 0:
            raise InvalidInstanceError("cost parameters must be non-negative")
        self.restart_cost = float(restart_cost)
        self.exponent = float(exponent)
        self.scale = float(scale)

    def cost(self, interval: "AwakeInterval") -> float:
        return self.restart_cost + self.scale * interval.length**self.exponent


class UnavailabilityCost(CostModel):
    """Wrap a base model; infinite cost when touching an unavailable slot.

    "if a processor is not available for some time slots ... we can
    represent [it] by setting the cost of the processor to be infinity
    for these time slots."  *blocked* is a set of (processor, time)
    pairs.
    """

    def __init__(self, base: CostModel, blocked: Iterable[Tuple[Processor, int]]):
        self.base = base
        self.blocked: Set[Tuple[Processor, int]] = set(blocked)
        self._blocked_times: Dict[Processor, Set[int]] = {}
        for proc, t in self.blocked:
            self._blocked_times.setdefault(proc, set()).add(t)

    def cost(self, interval: "AwakeInterval") -> float:
        times = self._blocked_times.get(interval.processor)
        if times and any(interval.start <= t <= interval.end for t in times):
            return math.inf
        return self.base.cost(interval)


class TableCost(CostModel):
    """Explicit per-interval price table, the raw Definition 2 input form.

    Intervals absent from the table cost *default* (infinity by default:
    only listed intervals are purchasable).  This is how adversarial /
    hand-crafted experiment instances (e.g. the Set-Cover reduction)
    express their costs exactly.
    """

    def __init__(
        self,
        table: Mapping["AwakeInterval", float],
        default: float = math.inf,
    ):
        self.table = dict(table)
        bad = [iv for iv, c in self.table.items() if c < 0]
        if bad:
            raise InvalidInstanceError(f"negative costs in table for {bad[:3]}")
        self.default = float(default)

    def cost(self, interval: "AwakeInterval") -> float:
        return self.table.get(interval, self.default)
