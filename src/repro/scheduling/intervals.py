"""Awake intervals and candidate-interval enumeration.

An :class:`AwakeInterval` is a (processor, [start, end]) pair — the unit
the cost oracle prices and the unit the greedy buys.  Time is discrete:
the horizon is slots ``0 .. horizon-1`` and an interval covers the
inclusive slot range ``start .. end`` (so its length is
``end - start + 1``), matching the paper's "a processor need not be in
use for an entire interval it is turned on".

Candidate enumeration.  The greedy needs an explicit (or oracle-backed)
list of purchasable intervals.  Enumerating all ``O(T^2)`` ranges per
processor is exact but wasteful; restricting endpoints to *event
points* — time slots some job can actually use on that processor — is
lossless for minimal-cost solutions under any cost model that is
monotone under interval shrinking (all models in
:mod:`repro.scheduling.power` are, except where unavailability makes
shrinking *necessary*, which event-point enumeration also respects
because infinite-cost intervals are simply never picked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Hashable, Iterable, List, Tuple

from repro.errors import InvalidInstanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.instance import ScheduleInstance

__all__ = ["AwakeInterval", "enumerate_candidate_intervals", "merge_intervals"]

Processor = Hashable
Slot = Tuple[Processor, int]


@dataclass(frozen=True, order=True)
class AwakeInterval:
    """An awake interval ``[start, end]`` (inclusive) on *processor*."""

    processor: Processor
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise InvalidInstanceError(
                f"invalid interval [{self.start}, {self.end}] on {self.processor!r}"
            )

    @property
    def length(self) -> int:
        """Number of time slots the interval covers."""
        return self.end - self.start + 1

    def slots(self) -> FrozenSet[Slot]:
        """The (processor, time) pairs this interval makes available."""
        return frozenset((self.processor, t) for t in range(self.start, self.end + 1))

    def contains(self, slot: Slot) -> bool:
        proc, t = slot
        return proc == self.processor and self.start <= t <= self.end

    def overlaps(self, other: "AwakeInterval") -> bool:
        return (
            self.processor == other.processor
            and self.start <= other.end
            and other.start <= self.end
        )


def merge_intervals(intervals: Iterable[AwakeInterval]) -> List[AwakeInterval]:
    """Coalesce overlapping/adjacent intervals per processor.

    Used when reporting a schedule: the greedy may buy overlapping
    ranges, but the physical awake pattern is their union.
    """
    by_proc: Dict[Processor, List[AwakeInterval]] = {}
    for iv in intervals:
        by_proc.setdefault(iv.processor, []).append(iv)
    merged: List[AwakeInterval] = []
    for proc in sorted(by_proc, key=repr):
        runs = sorted(by_proc[proc], key=lambda iv: (iv.start, iv.end))
        current = runs[0]
        for iv in runs[1:]:
            if iv.start <= current.end + 1:
                if iv.end > current.end:
                    current = AwakeInterval(proc, current.start, iv.end)
            else:
                merged.append(current)
                current = iv
        merged.append(current)
    return merged


def enumerate_candidate_intervals(
    instance: "ScheduleInstance",
    *,
    event_points_only: bool = True,
    max_length: int | None = None,
) -> List[AwakeInterval]:
    """All purchasable intervals for *instance*.

    Parameters
    ----------
    event_points_only:
        Restrict interval endpoints to time slots some job can use on
        that processor.  Lossless for cost minimisation (see module doc)
        and typically shrinks the candidate pool by orders of magnitude.
    max_length:
        Optional cap on interval length (models hardware duty-cycle
        limits; also a useful knob for stress tests).

    Intervals whose cost is infinite (processor unavailable) are dropped
    immediately — the greedy could never pick them.  (The incremental
    solver never calls this: it enumerates the same event-point pool
    directly at index level, see ``solver._build_pool_event_points``.)
    """
    candidates: List[AwakeInterval] = []
    inf = float("inf")
    for proc in instance.processors:
        if event_points_only:
            times = sorted({t for job in instance.jobs for (p, t) in job.slots if p == proc})
        else:
            times = list(range(instance.horizon))
        for i, s in enumerate(times):
            for e in times[i:]:
                if max_length is not None and e - s + 1 > max_length:
                    break
                iv = AwakeInterval(proc, s, e)
                if instance.cost_of(iv) != inf:
                    candidates.append(iv)
    return candidates
