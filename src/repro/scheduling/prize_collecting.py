"""Prize-collecting scheduling — Theorems 2.3.1 and 2.3.3.

When not every job fits, each job carries a value ``z_i`` and we must
schedule a subset of total value at least ``Z`` as cheaply as possible.
The reduction (Section 2.3) is the weighted bipartite graph whose
utility ``F(S)`` = maximum *job-value* matching saturating only slots of
S; Lemma 2.3.2 proves it submodular, so the budgeted greedy applies.

* :func:`prize_collecting_schedule` — Theorem 2.3.1: value
  ``>= (1 - eps) Z`` at cost ``O(log(1/eps))`` times the optimum that
  reaches value Z.
* :func:`prize_collecting_exact_value` — Theorem 2.3.3: value ``>= Z``
  exactly, at cost ``O((log n + log Delta) B)`` where ``Delta`` is the
  max/min job-value ratio; implemented, per the paper, by running the
  bicriteria algorithm at ``eps`` small enough that the residual deficit
  is below ``v_min`` and then buying single intervals with positive
  marginal value (each such marginal is 0 or >= some job's value, by
  the structure established in Lemma 2.3.2's proof).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.trace import GreedyResult
from repro.errors import BudgetError, InfeasibleError
from repro.matching.incremental import WeightedMatchingUtility
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.schedule import Schedule

__all__ = [
    "PrizeCollectingResult",
    "prize_collecting_schedule",
    "prize_collecting_exact_value",
]


@dataclass
class PrizeCollectingResult:
    """Outcome of a prize-collecting solve, with guarantee diagnostics."""

    schedule: Schedule
    greedy: GreedyResult
    target_value: float
    epsilon: float
    oracle_calls: int
    top_up_intervals: List[AwakeInterval]

    @property
    def value(self) -> float:
        return self.greedy.utility

    @property
    def cost(self) -> float:
        return self.greedy.cost

    def approximation_bound(self) -> float:
        """Proven cost bound multiplier: 2 * log2(1/eps) phases * B."""
        return 2.0 * max(1.0, math.log2(1.0 / self.epsilon))


def _prepare_weighted(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]],
):
    graph = instance.bipartite_graph()
    pool = list(candidates) if candidates is not None else instance.candidates()
    if not pool:
        raise InfeasibleError("no candidate awake intervals available")
    slot_map = {
        iv: slots for iv, slots in instance.interval_slot_map(pool).items() if slots
    }
    costs = {iv: instance.cost_of(iv) for iv in slot_map}
    for iv in [iv for iv, c in costs.items() if math.isinf(c)]:
        del slot_map[iv]
        del costs[iv]
    if not slot_map:
        raise InfeasibleError("no finite-cost candidate interval covers any usable slot")
    utility = WeightedMatchingUtility(graph, instance.job_values())
    return graph, slot_map, costs, utility


def _extract(utility: WeightedMatchingUtility, greedy: GreedyResult) -> Schedule:
    matching = utility.best_matching(greedy.selection)
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    return Schedule(intervals=list(greedy.chosen), assignment=assignment)


def prize_collecting_schedule(
    instance: ScheduleInstance,
    target_value: float,
    epsilon: float,
    *,
    method: str = "lazy",
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> PrizeCollectingResult:
    """Theorem 2.3.1: schedule value >= (1-eps)Z at cost O(B log(1/eps)).

    Raises :class:`InfeasibleError` when no schedule of value
    ``target_value`` exists at all (checked against the full candidate
    pool up front, mirroring the theorem's "assuming such a schedule
    exists").
    """
    if target_value < 0:
        raise BudgetError(f"target value must be non-negative, got {target_value}")
    graph, slot_map, costs, utility = _prepare_weighted(instance, candidates)

    all_slots: set = set()
    for slots in slot_map.values():
        all_slots |= slots
    achievable = utility.value(frozenset(all_slots))
    if achievable < target_value - 1e-9:
        raise InfeasibleError(
            f"no schedule achieves value {target_value}: maximum achievable with "
            f"all candidate intervals is {achievable}"
        )

    if target_value == 0:
        empty = GreedyResult(
            chosen=[], selection=frozenset(), utility=0.0, cost=0.0,
            target=0.0, epsilon=epsilon, steps=[],
        )
        return PrizeCollectingResult(
            schedule=Schedule(), greedy=empty, target_value=0.0,
            epsilon=epsilon, oracle_calls=0, top_up_intervals=[],
        )

    counting = CountingOracle(CachedOracle(utility))
    budgeted = BudgetedInstance(utility=counting, subsets=slot_map, costs=costs)
    runner = lazy_budgeted_greedy if method == "lazy" else budgeted_greedy
    greedy = runner(budgeted, target=float(target_value), epsilon=float(epsilon))

    schedule = _extract(utility, greedy)
    schedule.validate(instance)
    return PrizeCollectingResult(
        schedule=schedule,
        greedy=greedy,
        target_value=float(target_value),
        epsilon=float(epsilon),
        oracle_calls=counting.calls,
        top_up_intervals=[],
    )


def prize_collecting_exact_value(
    instance: ScheduleInstance,
    target_value: float,
    *,
    method: str = "lazy",
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> PrizeCollectingResult:
    """Theorem 2.3.3: schedule value >= Z at cost O((log n + log Delta) B).

    Follows the paper's proof: run the bicriteria algorithm with
    ``eps = v_min / (n * v_max)`` — then the residual deficit
    ``eps * Z <= v_min`` — and close the gap by buying, among intervals
    whose marginal value is positive (hence >= v_min by the value
    structure of Lemma 2.3.2), one of minimum cost; repeat until the
    threshold is met (one purchase suffices in theory; the loop guards
    against float slack).
    """
    if target_value <= 0:
        return prize_collecting_schedule(
            instance, max(target_value, 0.0), 0.5, method=method, candidates=candidates
        )

    positive_values = [job.value for job in instance.jobs if job.value > 0]
    if not positive_values:
        raise InfeasibleError("all jobs have value 0 but a positive target was requested")
    v_min, v_max = min(positive_values), max(positive_values)
    n = instance.n_jobs
    epsilon = min(0.5, v_min / (n * v_max))

    result = prize_collecting_schedule(
        instance, target_value, epsilon, method=method, candidates=candidates
    )
    if result.value >= target_value - 1e-9:
        return result

    graph, slot_map, costs, utility = _prepare_weighted(instance, candidates)
    selection = set(result.greedy.selection)
    chosen = list(result.greedy.chosen)
    top_ups: List[AwakeInterval] = []
    value = result.value
    total_cost = result.cost
    guard = len(slot_map) + 1
    while value < target_value - 1e-9 and guard > 0:
        guard -= 1
        best_iv = None
        best_cost = math.inf
        for iv, slots in slot_map.items():
            if iv in chosen or slots <= selection:
                continue
            gain = utility.value(frozenset(selection | slots)) - value
            if gain > 1e-12 and costs[iv] < best_cost:
                best_iv, best_cost = iv, costs[iv]
        if best_iv is None:
            raise InfeasibleError(
                f"cannot top up to value {target_value}: stuck at {value}"
            )
        selection |= slot_map[best_iv]
        chosen.append(best_iv)
        top_ups.append(best_iv)
        total_cost += costs[best_iv]
        value = utility.value(frozenset(selection))

    greedy = GreedyResult(
        chosen=chosen,
        selection=frozenset(selection),
        utility=value,
        cost=total_cost,
        target=float(target_value),
        epsilon=epsilon,
        steps=list(result.greedy.steps),
    )
    schedule = _extract(utility, greedy)
    schedule.validate(instance)
    final = PrizeCollectingResult(
        schedule=schedule,
        greedy=greedy,
        target_value=float(target_value),
        epsilon=epsilon,
        oracle_calls=result.oracle_calls,
        top_up_intervals=top_ups,
    )
    if final.value < target_value - 1e-9:
        raise InfeasibleError(
            f"exact-value solver finished below target: {final.value} < {target_value}"
        )
    return final
