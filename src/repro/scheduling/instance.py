"""Scheduling instances (Definition 2 of the paper).

An instance bundles processors, unit-time jobs with their valid
slot/processor pairs ``T_i``, a discrete horizon, an energy-cost oracle,
and (optionally) an explicit candidate-interval list.  Jobs carry values
for the prize-collecting variants; the schedule-all solver ignores them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidInstanceError
from repro.matching.graph import BipartiteGraph
from repro.scheduling.intervals import AwakeInterval, enumerate_candidate_intervals
from repro.scheduling.power import CostModel

__all__ = ["Job", "ScheduleInstance"]

Processor = Hashable
Slot = Tuple[Processor, int]


@dataclass(frozen=True)
class Job:
    """A unit-processing-time job.

    ``slots`` is the set ``T_i`` of valid (processor, time) pairs — per
    the multi-interval generalisation it need not form one interval and
    may differ across processors.  ``value`` is the prize-collecting
    value ``z_i`` (ignored by the schedule-all problem; defaults to 1).
    """

    id: Hashable
    slots: FrozenSet[Slot]
    value: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "slots", frozenset(self.slots))
        if self.value < 0:
            raise InvalidInstanceError(f"job {self.id!r} has negative value {self.value}")
        for slot in self.slots:
            if not (isinstance(slot, tuple) and len(slot) == 2):
                raise InvalidInstanceError(
                    f"job {self.id!r}: slot {slot!r} is not a (processor, time) pair"
                )
            if not isinstance(slot[1], (int,)) or slot[1] < 0:
                raise InvalidInstanceError(
                    f"job {self.id!r}: slot time {slot[1]!r} must be a non-negative int"
                )

    def processors(self) -> FrozenSet[Processor]:
        return frozenset(p for p, _ in self.slots)

    def times_on(self, processor: Processor) -> List[int]:
        return sorted(t for p, t in self.slots if p == processor)


class ScheduleInstance:
    """A full problem instance: processors, jobs, horizon, cost oracle.

    Parameters
    ----------
    processors:
        Processor identifiers (any hashables).
    jobs:
        The jobs; ids must be unique and distinct from slot tuples.
    horizon:
        Number of discrete time slots ``0 .. horizon-1``.
    cost_model:
        An energy-cost oracle from :mod:`repro.scheduling.power`.
    candidate_intervals:
        Optional explicit list of purchasable intervals.  When omitted,
        :func:`enumerate_candidate_intervals` generates them on demand
        (event-point endpoints).
    """

    def __init__(
        self,
        processors: Sequence[Processor],
        jobs: Sequence[Job],
        horizon: int,
        cost_model: CostModel,
        candidate_intervals: Optional[Sequence[AwakeInterval]] = None,
    ):
        self.processors: List[Processor] = list(processors)
        self.jobs: List[Job] = list(jobs)
        self.horizon = int(horizon)
        self.cost_model = cost_model
        self._candidates: Optional[List[AwakeInterval]] = (
            list(candidate_intervals) if candidate_intervals is not None else None
        )
        self.validate()

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raise :class:`InvalidInstanceError`."""
        if self.horizon <= 0:
            raise InvalidInstanceError(f"horizon must be positive, got {self.horizon}")
        if len(set(self.processors)) != len(self.processors):
            raise InvalidInstanceError("duplicate processor identifiers")
        seen_ids = set()
        proc_set = set(self.processors)
        for job in self.jobs:
            if job.id in seen_ids:
                raise InvalidInstanceError(f"duplicate job id {job.id!r}")
            seen_ids.add(job.id)
            for proc, t in job.slots:
                if proc not in proc_set:
                    raise InvalidInstanceError(
                        f"job {job.id!r} references unknown processor {proc!r}"
                    )
                if t >= self.horizon:
                    raise InvalidInstanceError(
                        f"job {job.id!r} slot time {t} is outside horizon {self.horizon}"
                    )
        if self._candidates is not None:
            for iv in self._candidates:
                if iv.processor not in proc_set:
                    raise InvalidInstanceError(
                        f"candidate interval {iv} uses unknown processor"
                    )
                if iv.end >= self.horizon:
                    raise InvalidInstanceError(
                        f"candidate interval {iv} extends past horizon {self.horizon}"
                    )

    # -- derived structures ---------------------------------------------

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    def job_by_id(self, job_id: Hashable) -> Job:
        for job in self.jobs:
            if job.id == job_id:
                return job
        raise KeyError(job_id)

    def job_values(self) -> Dict[Hashable, float]:
        return {job.id: job.value for job in self.jobs}

    def total_value(self) -> float:
        return float(sum(job.value for job in self.jobs))

    def all_slots(self) -> FrozenSet[Slot]:
        """Every (processor, time) pair some job can use."""
        out: set = set()
        for job in self.jobs:
            out |= job.slots
        return frozenset(out)

    def cost_of(self, interval: AwakeInterval) -> float:
        return self.cost_model(interval)

    def candidates(self, **kwargs) -> List[AwakeInterval]:
        """The purchasable intervals (cached when explicitly provided)."""
        if self._candidates is not None:
            return list(self._candidates)
        return enumerate_candidate_intervals(self, **kwargs)

    def bipartite_graph(self) -> BipartiteGraph:
        """The Section 2.2 reduction graph: slots (left) vs. jobs (right).

        Only slots some job can use appear — other slots have zero
        marginal utility and would only bloat the matching runs.
        """
        slots = self.all_slots()
        edges = [(slot, job.id) for job in self.jobs for slot in job.slots]
        return BipartiteGraph(slots, [job.id for job in self.jobs], edges)

    def interval_slot_map(
        self, intervals: Iterable[AwakeInterval]
    ) -> Dict[AwakeInterval, FrozenSet[Slot]]:
        """Map each interval to the *useful* slots it contributes.

        Intersecting with :meth:`all_slots` keeps the utility ground set
        tight: buying an interval only matters through the job-usable
        slots inside it.
        """
        useful = self.all_slots()
        return {iv: iv.slots() & useful for iv in intervals}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduleInstance(p={len(self.processors)}, n={len(self.jobs)}, "
            f"horizon={self.horizon}, cost={type(self.cost_model).__name__})"
        )
