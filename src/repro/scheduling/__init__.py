"""Multi-interval, multi-processor power-minimizing scheduling.

Implements Definition 2 of the paper and both solver families:

* :func:`repro.scheduling.solver.schedule_all_jobs` — Theorem 2.2.1,
  the O(log n)-approximation for scheduling *all* jobs;
* :mod:`repro.scheduling.prize_collecting` — Theorems 2.3.1 and 2.3.3,
  the bicriteria and exact-value prize-collecting versions.

Substrates: arbitrary per-interval energy-cost models
(:mod:`repro.scheduling.power`), candidate-interval enumeration
(:mod:`repro.scheduling.intervals`), exact reference solvers for optimum
certification (:mod:`repro.scheduling.exact`), naive baselines
(:mod:`repro.scheduling.baselines`) and the Appendix .1 Set-Cover
reduction (:mod:`repro.scheduling.setcover`).
"""

from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval, enumerate_candidate_intervals
from repro.scheduling.power import (
    AffineCost,
    CostModel,
    PerProcessorRateCost,
    SuperlinearCost,
    TableCost,
    TimeOfUseCost,
    UnavailabilityCost,
)
from repro.scheduling.schedule import Schedule
from repro.scheduling.solver import ScheduleAllResult, schedule_all_jobs
from repro.scheduling.prize_collecting import (
    PrizeCollectingResult,
    prize_collecting_schedule,
    prize_collecting_exact_value,
)
from repro.scheduling.baselines import always_on_schedule, sequential_cheapest_interval
from repro.scheduling.exact import (
    optimal_prize_collecting_bruteforce,
    optimal_schedule_bruteforce,
)
from repro.scheduling.setcover import (
    SetCoverInstance,
    greedy_set_cover,
    random_set_cover_instance,
    set_cover_to_scheduling,
)

__all__ = [
    "Job",
    "ScheduleInstance",
    "AwakeInterval",
    "enumerate_candidate_intervals",
    "CostModel",
    "AffineCost",
    "PerProcessorRateCost",
    "SuperlinearCost",
    "TableCost",
    "TimeOfUseCost",
    "UnavailabilityCost",
    "Schedule",
    "ScheduleAllResult",
    "schedule_all_jobs",
    "PrizeCollectingResult",
    "prize_collecting_schedule",
    "prize_collecting_exact_value",
    "always_on_schedule",
    "sequential_cheapest_interval",
    "optimal_schedule_bruteforce",
    "optimal_prize_collecting_bruteforce",
    "SetCoverInstance",
    "greedy_set_cover",
    "random_set_cover_instance",
    "set_cover_to_scheduling",
]
