"""Schedule objects: awake intervals + job assignment, with validation.

A feasible schedule (Definition 2) is a set of awake intervals per
processor and an assignment of jobs to (processor, time) slots such that
jobs run only in valid slots that are awake, with no two jobs sharing a
slot.  :meth:`Schedule.validate` enforces exactly that; every solver
validates its own output before returning it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Tuple

from repro.errors import InvalidInstanceError
from repro.scheduling.intervals import AwakeInterval, merge_intervals

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.instance import ScheduleInstance

__all__ = ["Schedule"]

Slot = Tuple[Hashable, int]


@dataclass
class Schedule:
    """Awake intervals plus an assignment of (some) jobs to slots.

    ``intervals`` is the list the solver *paid for* (cost accounting
    charges each listed interval separately, matching the paper's "the
    cost of a collection of intervals is the sum of the costs");
    :meth:`awake_pattern` reports the merged physical awake runs.
    """

    intervals: List[AwakeInterval] = field(default_factory=list)
    assignment: Dict[Hashable, Slot] = field(default_factory=dict)

    # -- accounting -----------------------------------------------------

    def cost(self, instance: "ScheduleInstance") -> float:
        """Total energy paid: sum of the instance's interval costs."""
        return float(sum(instance.cost_of(iv) for iv in self.intervals))

    def value(self, instance: "ScheduleInstance") -> float:
        """Total value of the scheduled jobs (prize-collecting metric)."""
        values = instance.job_values()
        return float(sum(values[j] for j in self.assignment))

    def scheduled_jobs(self) -> List[Hashable]:
        return sorted(self.assignment, key=repr)

    def awake_pattern(self) -> List[AwakeInterval]:
        """Merged awake runs per processor (for reporting/plotting)."""
        return merge_intervals(self.intervals) if self.intervals else []

    def awake_slot_count(self) -> int:
        """Number of distinct awake (processor, time) slots."""
        return sum(iv.length for iv in self.awake_pattern())

    # -- validation -------------------------------------------------------

    def validate(self, instance: "ScheduleInstance", require_all: bool = False) -> None:
        """Raise :class:`InvalidInstanceError` unless feasible per Def. 2.

        With ``require_all=True`` additionally demands every job be
        scheduled (the Theorem 2.2.1 setting).
        """
        jobs_by_id = {job.id: job for job in instance.jobs}
        used_slots: set = set()
        awake: set = set()
        for iv in self.intervals:
            if iv.end >= instance.horizon:
                raise InvalidInstanceError(f"interval {iv} exceeds the horizon")
            awake |= iv.slots()
        for job_id, slot in self.assignment.items():
            if job_id not in jobs_by_id:
                raise InvalidInstanceError(f"assignment references unknown job {job_id!r}")
            if slot not in jobs_by_id[job_id].slots:
                raise InvalidInstanceError(
                    f"job {job_id!r} assigned to invalid slot {slot!r} (not in its T set)"
                )
            if slot not in awake:
                raise InvalidInstanceError(
                    f"job {job_id!r} assigned to slot {slot!r} outside awake intervals"
                )
            if slot in used_slots:
                raise InvalidInstanceError(f"slot {slot!r} double-booked")
            used_slots.add(slot)
        if require_all and len(self.assignment) != len(instance.jobs):
            missing = sorted(
                (j.id for j in instance.jobs if j.id not in self.assignment), key=repr
            )
            raise InvalidInstanceError(f"jobs left unscheduled: {missing[:5]}")

    def summary(self, instance: "ScheduleInstance") -> str:
        """Human-readable one-liner used by the examples."""
        return (
            f"schedule: {len(self.assignment)}/{instance.n_jobs} jobs, "
            f"{len(self.awake_pattern())} awake runs, cost {self.cost(instance):.4g}, "
            f"value {self.value(instance):.4g}"
        )
