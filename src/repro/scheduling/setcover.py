"""Set Cover: the paper's hardness anchor and greedy special case.

Appendix .1 proves the scheduling problems Set-Cover hard via two
reductions; this module implements the *one-interval nonuniform
processors* reduction (Theorem .1.2): one processor per set, one job per
element, every job's window is the full horizon but only on the
processors of the sets containing it, and each processor's full-horizon
interval costs that set's cost.  Minimum-power scheduling of the reduced
instance *is* minimum-cost set cover.

The module also exposes :func:`greedy_set_cover` built on the budgeted
greedy — Lemma 2.1.2 with ``eps < 1/|universe|`` *is* the classical
greedy Set Cover algorithm (the paper points this out right before the
lemma), so the E5 experiment validates the framework against the known
``H_n`` behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.trace import GreedyResult
from repro.errors import InfeasibleError, InvalidInstanceError
from repro.rng import as_generator
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import TableCost

__all__ = [
    "SetCoverInstance",
    "greedy_set_cover",
    "random_set_cover_instance",
    "set_cover_to_scheduling",
    "harmonic_number",
]


def harmonic_number(n: int) -> float:
    """H_n = 1 + 1/2 + ... + 1/n — the greedy Set-Cover guarantee."""
    return float(sum(1.0 / i for i in range(1, n + 1)))


@dataclass(frozen=True)
class SetCoverInstance:
    """A weighted Set-Cover instance."""

    universe: FrozenSet[Hashable]
    subsets: Mapping[Hashable, FrozenSet[Hashable]]
    costs: Mapping[Hashable, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "universe", frozenset(self.universe))
        object.__setattr__(
            self, "subsets", {k: frozenset(v) for k, v in self.subsets.items()}
        )
        object.__setattr__(self, "costs", dict(self.costs))
        if set(self.subsets) != set(self.costs):
            raise InvalidInstanceError("subsets and costs must share keys")
        # One union pass serves both checks (strays and coverability);
        # re-unioning per check was quadratic waste on dense pools.
        covered = set().union(*self.subsets.values(), frozenset())
        stray = covered - self.universe
        if stray:
            raise InvalidInstanceError(f"subsets mention non-universe items: {sorted(map(repr, stray))[:5]}")
        if covered != set(self.universe):
            raise InvalidInstanceError(
                f"universe not coverable; missing {sorted(map(repr, set(self.universe) - covered))[:5]}"
            )

    def coverage_function(self) -> CoverageFunction:
        return CoverageFunction({k: v for k, v in self.subsets.items()})


def greedy_set_cover(
    sc: SetCoverInstance, *, method: str = "lazy"
) -> GreedyResult:
    """Cover the universe via the budgeted greedy (``eps = 1/(|U|+1)``).

    Coverage is integer-valued, so utility ``> |U| - 1`` means full
    coverage — the same trick Theorem 2.2.1 uses for scheduling.
    """
    coverage = sc.coverage_function()
    # CoverageFunction's ground set is the *subset names*; the utility of a
    # name set is the size of the union.  The budgeted instance's "items"
    # are therefore the names themselves, one per allowable subset.
    budgeted = BudgetedInstance(
        utility=coverage,
        subsets={name: frozenset({name}) for name in sc.subsets},
        costs=dict(sc.costs),
    )
    n = len(sc.universe)
    runner = lazy_budgeted_greedy if method == "lazy" else budgeted_greedy
    result = runner(budgeted, target=float(n), epsilon=1.0 / (n + 1))
    if result.utility < n - 1e-9:
        raise InfeasibleError("greedy terminated before covering the universe")
    return result


def set_cover_to_scheduling(sc: SetCoverInstance) -> ScheduleInstance:
    """The Theorem .1.2 reduction to one-interval nonuniform scheduling.

    Returns an instance whose candidate intervals are exactly one
    full-horizon interval per processor (set), priced at the set's cost
    via :class:`TableCost`.  A minimum-cost schedule of all jobs selects
    a minimum-cost cover.
    """
    elements = sorted(sc.universe, key=repr)
    horizon = len(elements)
    processors = sorted(sc.subsets, key=repr)
    membership: Dict[Hashable, List[Hashable]] = {e: [] for e in elements}
    for name, items in sc.subsets.items():
        for e in items:
            membership[e].append(name)

    jobs = [
        Job(
            id=("job", e),
            slots=frozenset(
                (name, t) for name in membership[e] for t in range(horizon)
            ),
        )
        for e in elements
    ]
    intervals = [AwakeInterval(name, 0, horizon - 1) for name in processors]
    table = {AwakeInterval(name, 0, horizon - 1): float(sc.costs[name]) for name in processors}
    return ScheduleInstance(
        processors=processors,
        jobs=jobs,
        horizon=horizon,
        cost_model=TableCost(table),
        candidate_intervals=intervals,
    )


def random_set_cover_instance(
    n_elements: int,
    n_sets: int,
    *,
    density: float = 0.2,
    planted_cover_size: Optional[int] = None,
    cost_spread: float = 1.0,
    rng=None,
) -> SetCoverInstance:
    """Random coverable instance, optionally with a planted cheap cover.

    With *planted_cover_size* = k, the first k sets partition the
    universe (so an optimal cover of cost about k exists), and the rest
    are random noise — the classical testbed for measuring the greedy's
    ratio against a known OPT upper bound.
    """
    gen = as_generator(rng)
    if n_elements <= 0 or n_sets <= 0:
        raise InvalidInstanceError("need positive universe and set counts")
    universe = [f"e{i}" for i in range(n_elements)]
    subsets: Dict[Hashable, Set[Hashable]] = {}
    costs: Dict[Hashable, float] = {}

    covered: Set[Hashable] = set()  # maintained as sets are drawn (no final re-union)
    start = 0
    if planted_cover_size:
        if planted_cover_size > n_sets:
            raise InvalidInstanceError("planted cover larger than the set pool")
        boundaries = sorted(
            gen.choice(
                range(1, n_elements), size=min(planted_cover_size - 1, n_elements - 1),
                replace=False,
            ).tolist()
        ) if planted_cover_size > 1 else []
        pieces = []
        prev = 0
        for b in boundaries + [n_elements]:
            pieces.append(universe[prev:b])
            prev = b
        for i, piece in enumerate(pieces):
            subsets[f"S{i}"] = set(piece)
            covered.update(piece)
            costs[f"S{i}"] = 1.0
        start = len(pieces)

    for i in range(start, n_sets):
        mask = gen.random(n_elements) < density
        chosen = {universe[j] for j in range(n_elements) if mask[j]}
        if not chosen:
            chosen = {universe[int(gen.integers(n_elements))]}
        subsets[f"S{i}"] = chosen
        covered |= chosen
        costs[f"S{i}"] = float(1.0 + cost_spread * gen.random())

    missing = set(universe) - covered
    if missing:
        # Guarantee coverability by topping up the last set.
        subsets[f"S{n_sets - 1}"] |= missing

    return SetCoverInstance(
        universe=frozenset(universe),
        subsets={k: frozenset(v) for k, v in subsets.items()},
        costs=costs,
    )
