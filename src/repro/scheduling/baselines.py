"""Naive baseline schedulers, for cost comparison in the experiments.

Neither baseline carries an approximation guarantee; they bracket the
greedy from the "obvious practice" side:

* :func:`always_on_schedule` — keep every processor awake for the whole
  horizon (the no-power-management strawman).
* :func:`sequential_cheapest_interval` — handle jobs one at a time,
  buying each the cheapest interval that opens a free valid slot
  (a reasonable-looking heuristic that ignores interval sharing, which
  is precisely what the submodular greedy exploits).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import InfeasibleError
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.schedule import Schedule

__all__ = ["always_on_schedule", "sequential_cheapest_interval"]


def always_on_schedule(instance: ScheduleInstance) -> Schedule:
    """Buy ``[0, horizon-1]`` on every processor, then match jobs in.

    Processors whose full-horizon interval costs infinity (unavailable
    at some slot) are skipped entirely — the baseline is deliberately
    blunt.  Raises :class:`InfeasibleError` when the always-on slots
    cannot host all jobs.
    """
    intervals: List[AwakeInterval] = []
    for proc in instance.processors:
        iv = AwakeInterval(proc, 0, instance.horizon - 1)
        if not math.isinf(instance.cost_of(iv)):
            intervals.append(iv)
    awake: set = set()
    for iv in intervals:
        awake |= iv.slots()
    graph = instance.bipartite_graph()
    matching = hopcroft_karp(graph, awake & set(graph.left))
    if len(matching) < instance.n_jobs:
        raise InfeasibleError(
            f"always-on baseline schedules only {len(matching)}/{instance.n_jobs} jobs"
        )
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    schedule = Schedule(intervals=intervals, assignment=assignment)
    schedule.validate(instance, require_all=True)
    return schedule


def sequential_cheapest_interval(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> Schedule:
    """Per-job greedy: cheapest interval opening a free valid slot.

    Jobs are processed in sorted-id order; each job pays for its own
    interval even when an already-bought interval could host it (we do
    check bought intervals first, at zero marginal cost — otherwise the
    baseline would be uselessly bad).
    """
    pool = list(candidates) if candidates is not None else instance.candidates()
    bought: List[AwakeInterval] = []
    awake: set = set()
    used: set = set()
    assignment: Dict = {}

    for job in sorted(instance.jobs, key=lambda j: repr(j.id)):
        free_awake = [s for s in job.slots if s in awake and s not in used]
        if free_awake:
            slot = min(free_awake, key=repr)
            assignment[job.id] = slot
            used.add(slot)
            continue
        best_iv = None
        best_cost = math.inf
        best_slot = None
        for iv in pool:
            cost = instance.cost_of(iv)
            if cost >= best_cost:
                continue
            openable = [s for s in job.slots if iv.contains(s) and s not in used]
            if openable:
                best_iv, best_cost, best_slot = iv, cost, min(openable, key=repr)
        if best_iv is None:
            raise InfeasibleError(
                f"sequential baseline cannot place job {job.id!r}"
            )
        bought.append(best_iv)
        awake |= best_iv.slots()
        assignment[job.id] = best_slot
        used.add(best_slot)

    schedule = Schedule(intervals=bought, assignment=assignment)
    schedule.validate(instance, require_all=True)
    return schedule
