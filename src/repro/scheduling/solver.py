"""Theorem 2.2.1 — schedule all jobs at cost O(OPT · log n).

Pipeline (Section 2.2):

1. Build the bipartite reduction graph: slots ``(processor, time)`` on
   the left, jobs on the right, edges given by the jobs' valid sets.
2. The utility ``F(S)`` = maximum matching saturating only slots of S is
   monotone submodular (Lemma 2.2.2).
3. Run the budgeted greedy (Lemma 2.1.2) over the candidate intervals
   with target ``x = n`` and ``eps = 1/(n+1)``; since ``F`` is integer
   valued, utility ``> n - 1`` means all ``n`` jobs are schedulable.
4. Recover the assignment with one final maximum-matching run.

Three interchangeable engines:

``plain``        generic greedy, fresh Hopcroft–Karp per probe;
``lazy``         generic lazy greedy (heap of stale bounds);
``incremental``  specialised loop probing marginal gains by augmenting
                 the committed matching from each interval's new slots —
                 the fastest, and the default.

All three realise the same approximation guarantee; E12 measures their
oracle-work difference.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.trace import GreedyResult, GreedyStep
from repro.errors import InfeasibleError
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.incremental import IncrementalMatchingOracle, MatchingUtility
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.schedule import Schedule

__all__ = ["ScheduleAllResult", "schedule_all_jobs"]


@dataclass
class ScheduleAllResult:
    """Outcome of :func:`schedule_all_jobs` with approximation diagnostics."""

    schedule: Schedule
    greedy: GreedyResult
    oracle_work: int
    method: str

    @property
    def cost(self) -> float:
        return self.greedy.cost

    def approximation_bound(self) -> float:
        """The proven multiplicative bound O(log(n+1)) for this n.

        Reported alongside measured ratios in EXPERIMENTS.md; the
        constant is 2 (each of the ``log`` phases costs at most 2B).
        """
        n_plus_1 = max(2.0, self.greedy.target + 1.0)
        return 2.0 * math.log2(n_plus_1)


def _prepare(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]],
):
    """Shared front half: graph, candidate pool, slot map, feasibility."""
    graph = instance.bipartite_graph()
    pool = list(candidates) if candidates is not None else instance.candidates()
    if not pool:
        raise InfeasibleError("no candidate awake intervals available")
    slot_map = instance.interval_slot_map(pool)
    slot_map = {iv: slots for iv, slots in slot_map.items() if slots}
    if not slot_map:
        raise InfeasibleError("no candidate interval covers any job-usable slot")
    costs = {iv: instance.cost_of(iv) for iv in slot_map}
    infinite = [iv for iv, c in costs.items() if math.isinf(c)]
    for iv in infinite:
        del slot_map[iv]
        del costs[iv]
    all_useful: set = set()
    for slots in slot_map.values():
        all_useful |= slots
    n = instance.n_jobs
    if len(hopcroft_karp(graph, all_useful)) < n:
        raise InfeasibleError(
            "no feasible schedule: even with every candidate interval awake, "
            f"only {len(hopcroft_karp(graph, all_useful))} of {n} jobs fit"
        )
    return graph, slot_map, costs


def _extract_schedule(graph, chosen: List[AwakeInterval], selection) -> Schedule:
    matching = hopcroft_karp(graph, selection)
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    return Schedule(intervals=list(chosen), assignment=assignment)


def _incremental_greedy(instance, graph, slot_map, costs) -> tuple[GreedyResult, int]:
    """The specialised greedy: marginal gains via matching augmentation.

    Candidate scoring is *lazy* (Minoux/CELF): because ``F`` is
    submodular, a gain probed at an earlier commit version is an upper
    bound on the current gain, so candidates sit in a max-heap keyed by
    stale (ratio, gain) bounds and only the top entry is re-probed.  The
    pick sequence is identical to the exhaustive re-scan (the heap's
    ``(-ratio, -gain, insertion index)`` ordering reproduces the scan's
    first-strictly-better tie-breaking) at a fraction of the probes.
    Probes themselves run on the oracle's int-index fast path — each
    interval's slots are translated to dense indices exactly once.
    """
    n = instance.n_jobs
    oracle = IncrementalMatchingOracle(graph)
    view = oracle.view
    mask = oracle.committed_mask
    chosen: List[AwakeInterval] = []
    steps: List[GreedyStep] = []
    total_cost = 0.0

    slot_ids: Dict[AwakeInterval, List[int]] = {
        iv: sorted(view.left_index[s] for s in slots if s in view.left_index)
        for iv, slots in slot_map.items()
    }

    # Heap entries: (-ratio, -gain, insertion index, interval, version).
    heap: List[tuple] = []
    for order, (iv, ids) in enumerate(slot_ids.items()):
        gain = oracle.gain_indices(ids)
        if gain <= 0:
            continue
        cost = costs[iv]
        ratio = math.inf if cost == 0 else gain / cost
        if math.isnan(ratio):  # NaN never beats a real ratio in the scan
            continue
        heap.append((-ratio, -float(gain), order, iv, oracle.commit_version))
    heapq.heapify(heap)

    while oracle.matching_size < n:
        picked = None
        while heap:
            neg_ratio, neg_gain, order, iv, version = heapq.heappop(heap)
            extra = [i for i in slot_ids[iv] if not mask[i]]
            if not extra:
                continue
            if version == oracle.commit_version:
                picked = (iv, int(-neg_gain), extra)
                break
            gain = oracle.gain_indices(extra)
            if gain <= 0:
                continue  # submodularity: can never become positive again
            cost = costs[iv]
            ratio = math.inf if cost == 0 else gain / cost
            if math.isnan(ratio):
                continue
            heapq.heappush(
                heap, (-ratio, -float(gain), order, iv, oracle.commit_version)
            )
        if picked is None:
            raise InfeasibleError(
                f"greedy stalled at {oracle.matching_size}/{n} jobs schedulable"
            )
        best_iv, best_gain, extra = picked
        oracle.commit_indices(extra, already_masked=False)
        utility = float(oracle.matching_size)
        total_cost += costs[best_iv]
        chosen.append(best_iv)
        steps.append(
            GreedyStep(
                index=best_iv,
                cost=costs[best_iv],
                gain=float(best_gain),
                utility_after=utility,
                cost_after=total_cost,
            )
        )

    result = GreedyResult(
        chosen=chosen,
        selection=oracle.committed,
        utility=float(oracle.matching_size),
        cost=total_cost,
        target=float(n),
        epsilon=1.0 / (n + 1),
        steps=steps,
    )
    return result, oracle.probe_augmentations


def schedule_all_jobs(
    instance: ScheduleInstance,
    *,
    method: str = "incremental",
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> ScheduleAllResult:
    """Schedule every job, minimising power, within O(log n) of optimal.

    Parameters
    ----------
    instance:
        The problem.  Every job must be schedulable using the candidate
        intervals; otherwise :class:`InfeasibleError` (the paper's
        schedule-all problem presumes feasibility).
    method:
        ``"incremental"`` (default), ``"lazy"``, or ``"plain"`` — see
        module docstring.
    candidates:
        Optional explicit candidate-interval pool (defaults to the
        instance's event-point enumeration).
    """
    if instance.n_jobs == 0:
        return ScheduleAllResult(
            schedule=Schedule(),
            greedy=GreedyResult(
                chosen=[], selection=frozenset(), utility=0.0, cost=0.0,
                target=0.0, epsilon=0.5, steps=[],
            ),
            oracle_work=0,
            method=method,
        )

    graph, slot_map, costs = _prepare(instance, candidates)
    n = instance.n_jobs

    if method == "incremental":
        greedy_result, work = _incremental_greedy(instance, graph, slot_map, costs)
    elif method in ("plain", "lazy"):
        # CachedOracle outermost: the greedys probe its fingerprint-
        # memoised marginal_gain, and only cache *misses* reach the
        # counting layer — work counts actual Hopcroft–Karp solves.
        counting = CountingOracle(MatchingUtility(graph))
        utility = CachedOracle(counting)
        budgeted = BudgetedInstance(utility=utility, subsets=slot_map, costs=costs)
        runner = budgeted_greedy if method == "plain" else lazy_budgeted_greedy
        # eps = 1/(n+1): integer utility > n-1 implies all n jobs fit.
        greedy_result = runner(budgeted, target=float(n), epsilon=1.0 / (n + 1))
        work = counting.calls
    else:
        raise ValueError(f"unknown method {method!r}; use incremental|lazy|plain")

    if greedy_result.utility < n - 1e-9:
        raise InfeasibleError(
            f"greedy terminated with utility {greedy_result.utility} < n = {n}"
        )

    schedule = _extract_schedule(graph, list(greedy_result.chosen), greedy_result.selection)
    schedule.validate(instance, require_all=True)
    return ScheduleAllResult(
        schedule=schedule, greedy=greedy_result, oracle_work=work, method=method
    )
