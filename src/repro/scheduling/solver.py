"""Theorem 2.2.1 — schedule all jobs at cost O(OPT · log n).

Pipeline (Section 2.2):

1. Build the bipartite reduction graph: slots ``(processor, time)`` on
   the left, jobs on the right, edges given by the jobs' valid sets.
2. The utility ``F(S)`` = maximum matching saturating only slots of S is
   monotone submodular (Lemma 2.2.2).
3. Run the budgeted greedy (Lemma 2.1.2) over the candidate intervals
   with target ``x = n`` and ``eps = 1/(n+1)``; since ``F`` is integer
   valued, utility ``> n - 1`` means all ``n`` jobs are schedulable.
4. Recover the assignment with one final maximum-matching run.

Three interchangeable engines:

``plain``        generic greedy, fresh Hopcroft–Karp per probe;
``lazy``         generic lazy greedy (heap of stale bounds);
``incremental``  specialised loop probing marginal gains by augmenting
                 the committed matching from each interval's new slots —
                 the fastest, and the default.

All three realise the same approximation guarantee; E12 measures their
oracle-work difference.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.trace import GreedyResult, GreedyStep
from repro.errors import InfeasibleError
from repro.matching.fastgraph import hk_solve, indexed_view
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.incremental import IncrementalMatchingOracle, MatchingUtility
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.schedule import Schedule

__all__ = ["ScheduleAllResult", "schedule_all_jobs"]


@dataclass
class ScheduleAllResult:
    """Outcome of :func:`schedule_all_jobs` with approximation diagnostics."""

    schedule: Schedule
    greedy: GreedyResult
    oracle_work: int
    method: str

    @property
    def cost(self) -> float:
        return self.greedy.cost

    def approximation_bound(self) -> float:
        """The proven multiplicative bound O(log(n+1)) for this n.

        Reported alongside measured ratios in EXPERIMENTS.md; the
        constant is 2 (each of the ``log`` phases costs at most 2B).
        """
        n_plus_1 = max(2.0, self.greedy.target + 1.0)
        return 2.0 * math.log2(n_plus_1)


def _prepare(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]],
):
    """Shared front half: graph, candidate pool, slot map, feasibility."""
    graph = instance.bipartite_graph()
    pool = list(candidates) if candidates is not None else instance.candidates()
    if not pool:
        raise InfeasibleError("no candidate awake intervals available")
    slot_map = instance.interval_slot_map(pool)
    slot_map = {iv: slots for iv, slots in slot_map.items() if slots}
    if not slot_map:
        raise InfeasibleError("no candidate interval covers any job-usable slot")
    costs = {iv: instance.cost_of(iv) for iv in slot_map}
    infinite = [iv for iv, c in costs.items() if math.isinf(c)]
    for iv in infinite:
        del slot_map[iv]
        del costs[iv]
    all_useful: set = set()
    for slots in slot_map.values():
        all_useful |= slots
    n = instance.n_jobs
    if len(hopcroft_karp(graph, all_useful)) < n:
        raise InfeasibleError(
            "no feasible schedule: even with every candidate interval awake, "
            f"only {len(hopcroft_karp(graph, all_useful))} of {n} jobs fit"
        )
    return graph, slot_map, costs


def _extract_schedule(graph, chosen: List[AwakeInterval], selection) -> Schedule:
    matching = hopcroft_karp(graph, selection)
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    return Schedule(intervals=list(chosen), assignment=assignment)


class _CandidatePool:
    """Index-level candidate pool for the incremental engine.

    Everything is parallel flat lists keyed by a dense candidate index —
    no :class:`AwakeInterval` objects (they are materialised only for
    the handful of *picked* intervals), no dict-of-frozenset churn, no
    per-probe interval hashing.  Candidates sharing a processor and a
    start time form a *row*: ``row_pid[r]`` holds the row's job-usable
    slot ids in time order, and candidate ``c`` of that row owns the
    prefix ``row_pid[cand_row[c]][:cand_hi[c]]`` — the nesting the
    chain-probe scoring exploits.
    """

    __slots__ = ("metas", "costs", "row_pid", "cand_row", "cand_hi", "rows")

    def __init__(self):
        self.metas: List[tuple] = []      # candidate -> (processor, start, end)
        self.costs: List[float] = []      # candidate -> price
        self.row_pid: List[List[int]] = []  # row -> slot ids, time order
        self.cand_row: List[int] = []     # candidate -> row
        self.cand_hi: List[int] = []      # candidate -> prefix length in its row
        self.rows: List[List[int]] = []   # row -> candidate indices (nested order)

    def slots_of(self, c: int) -> List[int]:
        return self.row_pid[self.cand_row[c]][: self.cand_hi[c]]


def _proc_time_ids(view) -> Dict:
    """Per processor: job-usable (time, left-index) pairs, time-sorted."""
    per_proc: Dict = {}
    for (proc, t), idx in view.left_index.items():
        per_proc.setdefault(proc, []).append((t, idx))
    for entries in per_proc.values():
        entries.sort()
    return per_proc


def _build_pool_event_points(instance: ScheduleInstance, view) -> _CandidatePool:
    """Event-point candidate pool, enumerated directly at index level.

    Mirrors :func:`~repro.scheduling.intervals.enumerate_candidate_intervals`
    (same processor-major, start-major, end-minor order, same event-time
    endpoints, same infinite-cost filtering) without constructing any
    interval objects: a processor with ``k`` event times contributes
    ``k`` rows of nested candidates, priced through the cost model's
    vectorized length table when it has one.
    """
    pool = _CandidatePool()
    per_proc = _proc_time_ids(view)
    horizon = instance.horizon
    for proc in instance.processors:
        entries = per_proc.get(proc)
        if not entries:
            continue
        times = [t for t, _ in entries]
        pid = [idx for _, idx in entries]
        k = len(times)
        table = instance.cost_model.length_cost_table(proc, horizon)
        times_arr = np.array(times)
        for i in range(k):
            row_no = len(pool.row_pid)
            pool.row_pid.append(pid[i:])
            row_cands: List[int] = []
            if table is not None:
                row_costs = table[times_arr[i:] - times[i]]
            else:
                row_costs = [
                    instance.cost_of(AwakeInterval(proc, times[i], times[j]))
                    for j in range(i, k)
                ]
            for rel in range(k - i):
                cost = float(row_costs[rel])
                if math.isinf(cost):
                    continue
                row_cands.append(len(pool.metas))
                pool.metas.append((proc, times[i], times[i + rel]))
                pool.costs.append(cost)
                pool.cand_row.append(row_no)
                pool.cand_hi.append(rel + 1)
            pool.rows.append(row_cands)
    return pool


def _build_pool_explicit(
    instance: ScheduleInstance, view, candidates: Sequence[AwakeInterval]
) -> _CandidatePool:
    """Pool for an explicitly given interval list (pool order preserved).

    Each candidate becomes its own single-candidate row — explicit pools
    are small and need no nesting structure to score quickly.
    """
    pool = _CandidatePool()
    by_proc: Dict = {}
    for (proc, t), idx in view.left_index.items():
        arr = by_proc.get(proc)
        if arr is None:
            arr = by_proc[proc] = np.full(instance.horizon, -1, dtype=np.int64)
        arr[t] = idx
    for iv in candidates:
        arr = by_proc.get(iv.processor)
        if arr is None:
            continue
        ids = arr[iv.start : iv.end + 1]
        ids = ids[ids >= 0]
        if not len(ids):
            continue
        cost = instance.cost_of(iv)
        if math.isinf(cost):
            continue
        row_no = len(pool.row_pid)
        pool.row_pid.append(ids.tolist())
        pool.rows.append([len(pool.metas)])
        pool.metas.append((iv.processor, iv.start, iv.end))
        pool.costs.append(cost)
        pool.cand_row.append(row_no)
        pool.cand_hi.append(len(ids))
    return pool


def _prepare_indexed(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]],
):
    """Index-level front half for the incremental engine.

    Skips the frozenset slot-map churn of :func:`_prepare` entirely:
    the candidate pool lives in flat index arrays
    (:class:`_CandidatePool`), and the feasibility check runs directly
    on the indexed view.  Pool order equals the legacy slot-map order,
    so heap tie-breaking (and hence the pick sequence) is unchanged.
    """
    graph = instance.bipartite_graph()
    view = indexed_view(graph)
    explicit = list(candidates) if candidates is not None else instance._candidates
    if explicit is not None:
        if not explicit:
            raise InfeasibleError("no candidate awake intervals available")
        pool = _build_pool_explicit(instance, view, explicit)
    else:
        pool = _build_pool_event_points(instance, view)
    if not pool.metas:
        raise InfeasibleError("no candidate interval covers any job-usable slot")

    useful_mask = bytearray(view.n_left)
    for row_cands in pool.rows:
        if row_cands:
            row = pool.row_pid[pool.cand_row[row_cands[0]]]
            for i in row[: pool.cand_hi[row_cands[-1]]]:
                useful_mask[i] = 1
    n = instance.n_jobs
    _, _, reachable = hk_solve(view, useful_mask)
    if reachable < n:
        raise InfeasibleError(
            "no feasible schedule: even with every candidate interval awake, "
            f"only {reachable} of {n} jobs fit"
        )
    return graph, pool


def _initial_gains(oracle, pool: _CandidatePool) -> List[int]:
    """Score the whole candidate pool against the committed matching.

    Candidates of one row are nested, so each row is swept with one
    :meth:`~repro.matching.incremental.IncrementalMatchingOracle.extension_gains`
    chain — one augmentation attempt per slot per *row* instead of one
    per slot per *interval* (an ``O(T)``-per-row versus
    ``O(T)``-per-candidate cost class).  Gains equal per-candidate
    probes exactly: matroid-rank updates are augmentation-order
    independent.
    """
    gains: List[int] = [0] * len(pool.metas)
    for row_cands in pool.rows:
        if not row_cands:
            continue
        row = pool.row_pid[pool.cand_row[row_cands[0]]]
        steps: List[List[int]] = []
        prev_hi = 0
        for c in row_cands:
            hi = pool.cand_hi[c]
            steps.append(row[prev_hi:hi])
            prev_hi = hi
        cums = oracle.extension_gains(steps)
        for c, g in zip(row_cands, cums):
            gains[c] = g
    return gains


def _incremental_greedy(instance, graph, pool: _CandidatePool) -> tuple[GreedyResult, int, "IncrementalMatchingOracle"]:
    """The specialised greedy: marginal gains via matching augmentation.

    Candidate scoring is *lazy* (Minoux/CELF): because ``F`` is
    submodular, a gain probed at an earlier commit version is an upper
    bound on the current gain, so candidates sit in a max-heap keyed by
    stale (ratio, gain) bounds and only the top entry is re-probed.  The
    pick sequence is identical to the exhaustive re-scan (the heap's
    ``(-ratio, -gain, insertion index)`` ordering reproduces the scan's
    first-strictly-better tie-breaking) at a fraction of the probes.
    The initial all-candidates pass runs on the oracle's chain-probe
    batch API (:func:`_initial_gains`); CELF re-scores are single
    copy-on-success probes with dead-region memoisation.
    """
    n = instance.n_jobs
    oracle = IncrementalMatchingOracle(graph)
    mask = oracle.committed_mask
    chosen: List[AwakeInterval] = []
    steps: List[GreedyStep] = []
    total_cost = 0.0
    costs = pool.costs

    # Heap entries: (-ratio, -gain, candidate index, version).  The
    # candidate index doubles as the insertion-order tie-breaker (pool
    # order equals the legacy enumeration order).
    initial_gains = _initial_gains(oracle, pool)
    heap: List[tuple] = []
    for c, gain in enumerate(initial_gains):
        if gain <= 0:
            continue
        cost = costs[c]
        ratio = math.inf if cost == 0 else gain / cost
        if math.isnan(ratio):  # NaN never beats a real ratio in the scan
            continue
        heap.append((-ratio, -float(gain), c, oracle.commit_version))
    heapq.heapify(heap)

    while oracle.matching_size < n:
        picked = None
        while heap:
            neg_ratio, neg_gain, c, version = heapq.heappop(heap)
            extra = [i for i in pool.slots_of(c) if not mask[i]]
            if not extra:
                continue
            if version == oracle.commit_version:
                picked = (c, int(-neg_gain), extra)
                break
            gain = oracle.gain_indices(extra)
            if gain <= 0:
                continue  # submodularity: can never become positive again
            cost = costs[c]
            ratio = math.inf if cost == 0 else gain / cost
            if math.isnan(ratio):
                continue
            heapq.heappush(heap, (-ratio, -float(gain), c, oracle.commit_version))
        if picked is None:
            raise InfeasibleError(
                f"greedy stalled at {oracle.matching_size}/{n} jobs schedulable"
            )
        best_c, best_gain, extra = picked
        oracle.commit_indices(extra, already_masked=False)
        utility = float(oracle.matching_size)
        total_cost += costs[best_c]
        proc, start, end = pool.metas[best_c]
        chosen.append(AwakeInterval(proc, start, end))
        steps.append(
            GreedyStep(
                index=chosen[-1],
                cost=costs[best_c],
                gain=float(best_gain),
                utility_after=utility,
                cost_after=total_cost,
            )
        )

    result = GreedyResult(
        chosen=chosen,
        selection=oracle.committed,
        utility=float(oracle.matching_size),
        cost=total_cost,
        target=float(n),
        epsilon=1.0 / (n + 1),
        steps=steps,
    )
    return result, oracle.probe_augmentations, oracle


def schedule_all_jobs(
    instance: ScheduleInstance,
    *,
    method: str = "incremental",
    candidates: Optional[Sequence[AwakeInterval]] = None,
) -> ScheduleAllResult:
    """Schedule every job, minimising power, within O(log n) of optimal.

    Parameters
    ----------
    instance:
        The problem.  Every job must be schedulable using the candidate
        intervals; otherwise :class:`InfeasibleError` (the paper's
        schedule-all problem presumes feasibility).
    method:
        ``"incremental"`` (default), ``"lazy"``, or ``"plain"`` — see
        module docstring.
    candidates:
        Optional explicit candidate-interval pool (defaults to the
        instance's event-point enumeration).
    """
    if instance.n_jobs == 0:
        return ScheduleAllResult(
            schedule=Schedule(),
            greedy=GreedyResult(
                chosen=[], selection=frozenset(), utility=0.0, cost=0.0,
                target=0.0, epsilon=0.5, steps=[],
            ),
            oracle_work=0,
            method=method,
        )

    n = instance.n_jobs

    if method == "incremental":
        graph, pool = _prepare_indexed(instance, candidates)
        greedy_result, work, m_oracle = _incremental_greedy(instance, graph, pool)
        if greedy_result.utility < n - 1e-9:
            raise InfeasibleError(
                f"greedy terminated with utility {greedy_result.utility} < n = {n}"
            )
        # The oracle's committed matching IS a maximum matching of the
        # selection — reuse it instead of a from-scratch Hopcroft–Karp.
        matching = m_oracle.matching
        assignment = {job: slot for slot, job in matching.left_to_right.items()}
        schedule = Schedule(intervals=list(greedy_result.chosen), assignment=assignment)
        schedule.validate(instance, require_all=True)
        return ScheduleAllResult(
            schedule=schedule, greedy=greedy_result, oracle_work=work, method=method
        )

    graph, slot_map, costs = _prepare(instance, candidates)

    if method in ("plain", "lazy"):
        # CachedOracle outermost: the greedys probe its fingerprint-
        # memoised marginal_gain, and only cache *misses* reach the
        # counting layer — work counts actual Hopcroft–Karp solves.
        counting = CountingOracle(MatchingUtility(graph))
        utility = CachedOracle(counting)
        budgeted = BudgetedInstance(utility=utility, subsets=slot_map, costs=costs)
        runner = budgeted_greedy if method == "plain" else lazy_budgeted_greedy
        # eps = 1/(n+1): integer utility > n-1 implies all n jobs fit.
        greedy_result = runner(budgeted, target=float(n), epsilon=1.0 / (n + 1))
        work = counting.calls
    else:
        raise ValueError(f"unknown method {method!r}; use incremental|lazy|plain")

    if greedy_result.utility < n - 1e-9:
        raise InfeasibleError(
            f"greedy terminated with utility {greedy_result.utility} < n = {n}"
        )

    schedule = _extract_schedule(graph, list(greedy_result.chosen), greedy_result.selection)
    schedule.validate(instance, require_all=True)
    return ScheduleAllResult(
        schedule=schedule, greedy=greedy_result, oracle_work=work, method=method
    )
