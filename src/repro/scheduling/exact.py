"""Exact reference solvers (optimum certification).

The ratio experiments need the true optimum ``B`` to measure the
greedy's ``cost / B``.  On experiment-sized instances we certify optima
with a branch-and-bound search over candidate-interval subsets:

* cost pruning against the incumbent,
* a reachability bound (if even *all* remaining intervals cannot reach
  the utility target, the branch is dead),
* candidate ordering by cost so cheap solutions are found early.

This stands in for Baptiste's polynomial DP [9] and its prize-collecting
adaptation (Appendix .2): on the instance sizes we certify, it computes
the same optimal value, which is all the experiments consume (see the
substitution note in DESIGN.md).  A hard cap on the candidate count
keeps accidental exponential blow-ups loud instead of slow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleError, InvalidInstanceError
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.weighted import max_weight_matching, weighted_matching_value
from repro.scheduling.instance import ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.schedule import Schedule

__all__ = ["ExactResult", "optimal_schedule_bruteforce", "optimal_prize_collecting_bruteforce"]

_DEFAULT_LIMIT = 26


@dataclass
class ExactResult:
    """A certified optimal solution."""

    cost: float
    intervals: List[AwakeInterval]
    schedule: Schedule
    nodes_explored: int


def _pool_and_costs(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]],
    limit: int,
) -> Tuple[List[AwakeInterval], Dict[AwakeInterval, FrozenSet], Dict[AwakeInterval, float]]:
    pool = list(candidates) if candidates is not None else instance.candidates()
    slot_map = {
        iv: slots for iv, slots in instance.interval_slot_map(pool).items() if slots
    }
    costs = {iv: instance.cost_of(iv) for iv in slot_map}
    finite = [iv for iv in slot_map if not math.isinf(costs[iv])]
    if len(finite) > limit:
        raise InvalidInstanceError(
            f"exact solver limited to {limit} candidate intervals, got {len(finite)}; "
            "raise `limit` explicitly if you accept exponential runtime"
        )
    finite.sort(key=lambda iv: (costs[iv], repr(iv)))
    return finite, {iv: slot_map[iv] for iv in finite}, {iv: costs[iv] for iv in finite}


def optimal_schedule_bruteforce(
    instance: ScheduleInstance,
    candidates: Optional[Sequence[AwakeInterval]] = None,
    *,
    limit: int = _DEFAULT_LIMIT,
) -> ExactResult:
    """Minimum-cost interval collection scheduling *all* jobs, certified.

    Branch and bound over the (finite-cost, useful) candidate pool.
    Raises :class:`InfeasibleError` when no subset schedules all jobs.
    """
    n = instance.n_jobs
    graph = instance.bipartite_graph()
    pool, slot_map, costs = _pool_and_costs(instance, candidates, limit)

    suffix_slots: List[FrozenSet] = [frozenset()] * (len(pool) + 1)
    for i in range(len(pool) - 1, -1, -1):
        suffix_slots[i] = suffix_slots[i + 1] | slot_map[pool[i]]

    best_cost = math.inf
    best_choice: Optional[List[AwakeInterval]] = None
    nodes = 0

    def utility(slots: FrozenSet) -> int:
        return len(hopcroft_karp(graph, slots))

    def dfs(i: int, chosen: List[AwakeInterval], cost: float, slots: FrozenSet) -> None:
        nonlocal best_cost, best_choice, nodes
        nodes += 1
        if cost >= best_cost:
            return
        if utility(slots) >= n:
            best_cost = cost
            best_choice = list(chosen)
            return
        if i == len(pool):
            return
        if utility(slots | suffix_slots[i]) < n:
            return  # even taking everything left cannot finish
        # Branch 1: take pool[i] (cheap intervals first -> good incumbents).
        chosen.append(pool[i])
        dfs(i + 1, chosen, cost + costs[pool[i]], slots | slot_map[pool[i]])
        chosen.pop()
        # Branch 2: skip pool[i].
        dfs(i + 1, chosen, cost, slots)

    dfs(0, [], 0.0, frozenset())
    if best_choice is None:
        raise InfeasibleError("no interval subset schedules all jobs")

    slots: set = set()
    for iv in best_choice:
        slots |= slot_map[iv]
    matching = hopcroft_karp(graph, frozenset(slots))
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    schedule = Schedule(intervals=best_choice, assignment=assignment)
    schedule.validate(instance, require_all=True)
    return ExactResult(cost=best_cost, intervals=best_choice, schedule=schedule, nodes_explored=nodes)


def optimal_prize_collecting_bruteforce(
    instance: ScheduleInstance,
    target_value: float,
    candidates: Optional[Sequence[AwakeInterval]] = None,
    *,
    limit: int = _DEFAULT_LIMIT,
) -> ExactResult:
    """Minimum-cost collection achieving scheduled value >= target, certified."""
    graph = instance.bipartite_graph()
    values = instance.job_values()
    pool, slot_map, costs = _pool_and_costs(instance, candidates, limit)

    suffix_slots: List[FrozenSet] = [frozenset()] * (len(pool) + 1)
    for i in range(len(pool) - 1, -1, -1):
        suffix_slots[i] = suffix_slots[i + 1] | slot_map[pool[i]]

    best_cost = math.inf
    best_choice: Optional[List[AwakeInterval]] = None
    nodes = 0

    def utility(slots: FrozenSet) -> float:
        return weighted_matching_value(graph, values, slots)

    def dfs(i: int, chosen: List[AwakeInterval], cost: float, slots: FrozenSet) -> None:
        nonlocal best_cost, best_choice, nodes
        nodes += 1
        if cost >= best_cost:
            return
        if utility(slots) >= target_value - 1e-9:
            best_cost = cost
            best_choice = list(chosen)
            return
        if i == len(pool):
            return
        if utility(slots | suffix_slots[i]) < target_value - 1e-9:
            return
        chosen.append(pool[i])
        dfs(i + 1, chosen, cost + costs[pool[i]], slots | slot_map[pool[i]])
        chosen.pop()
        dfs(i + 1, chosen, cost, slots)

    dfs(0, [], 0.0, frozenset())
    if best_choice is None:
        raise InfeasibleError(f"no interval subset reaches value {target_value}")

    slots = set()
    for iv in best_choice:
        slots |= slot_map[iv]
    matching = max_weight_matching(graph, values, frozenset(slots))
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    schedule = Schedule(intervals=best_choice, assignment=assignment)
    schedule.validate(instance)
    return ExactResult(cost=best_cost, intervals=best_choice, schedule=schedule, nodes_explored=nodes)
