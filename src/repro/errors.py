"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` on clearly wrong API use,
etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleError",
    "OracleError",
    "BudgetError",
    "NotSubmodularError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInstanceError(ReproError):
    """An instance (scheduling problem, graph, matroid, ...) is malformed.

    Raised during validation, before any solver runs, so that failures
    point at the input rather than at an algorithm internal.
    """


class InfeasibleError(ReproError):
    """The requested objective cannot be met by any solution.

    For example: scheduling all jobs when some job has an empty slot set,
    or requesting a prize-collecting value threshold larger than the total
    achievable value.
    """


class OracleError(ReproError):
    """A value oracle was queried outside its contract.

    The online (secretary) oracles raise this when queried about elements
    that have not arrived yet, mirroring the paper's restriction that the
    oracle answers only for sets of already-interviewed secretaries.
    """


class BudgetError(ReproError):
    """A budget/threshold parameter is out of its valid range."""


class NotSubmodularError(ReproError):
    """A function expected to be submodular violated the lattice inequality.

    Raised by :func:`repro.core.submodular.check_submodular` when given a
    witness-producing mode, carrying the violating triple for debugging.
    """

    def __init__(self, message: str, witness: tuple | None = None) -> None:
        super().__init__(message)
        self.witness = witness
