"""Core primitives: submodular set functions and budgeted maximization.

This subpackage implements the paper's foundational contribution
(Section 2.1): monotone submodular utility maximization subject to a
budget constraint over *explicitly given, arbitrarily priced* subsets,
with the bicriteria guarantee of Lemma 2.1.2 — utility at least
``(1 - eps) * x`` at cost at most ``O(log(1/eps))`` times the optimum.
"""

from repro.core.submodular import (
    SetFunction,
    LambdaSetFunction,
    TruncatedFunction,
    RestrictedFunction,
    check_monotone,
    check_submodular,
)
from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    MatroidRankFunction,
    MaxValueFunction,
    MinValueFunction,
    WeightedCoverageFunction,
)
from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.trace import GreedyResult, GreedyStep, phase_of
from repro.core.knapsack import (
    KnapsackSolution,
    knapsack_density_greedy,
    knapsack_maximize,
    multi_knapsack_maximize,
)

__all__ = [
    "KnapsackSolution",
    "knapsack_density_greedy",
    "knapsack_maximize",
    "multi_knapsack_maximize",
    "SetFunction",
    "LambdaSetFunction",
    "TruncatedFunction",
    "RestrictedFunction",
    "check_monotone",
    "check_submodular",
    "AdditiveFunction",
    "BudgetAdditiveFunction",
    "CoverageFunction",
    "CutFunction",
    "FacilityLocationFunction",
    "MatroidRankFunction",
    "MaxValueFunction",
    "MinValueFunction",
    "WeightedCoverageFunction",
    "CachedOracle",
    "CountingOracle",
    "BudgetedInstance",
    "budgeted_greedy",
    "lazy_budgeted_greedy",
    "GreedyResult",
    "GreedyStep",
    "phase_of",
]
