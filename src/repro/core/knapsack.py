"""Offline submodular maximization under knapsack constraints.

The paper's Section 3.4 leans on an offline subroutine ("Lee et al.
give a constant factor approximation") to estimate OPT from the first
half of the stream.  This module is that subroutine, built from
classical pieces rather than cited away:

* :func:`knapsack_density_greedy` — marginal-value-per-weight greedy;
* :func:`knapsack_maximize` — max(density greedy, best singleton),
  the standard 3-approximation for one knapsack [45-style analysis];
* :func:`multi_knapsack_maximize` — the Lemma 3.4.1 reduction applied
  offline: collapse ``l`` knapsacks to one (losing O(l)) and solve that.

These also serve the experiments directly: E9's hindsight benchmark is
:func:`multi_knapsack_maximize` on the full ground set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Mapping, Sequence

from repro.core.submodular import SetFunction
from repro.errors import BudgetError, InvalidInstanceError

__all__ = [
    "KnapsackSolution",
    "knapsack_density_greedy",
    "knapsack_maximize",
    "multi_knapsack_maximize",
]


@dataclass(frozen=True)
class KnapsackSolution:
    """A feasible set with its value and load."""

    selected: FrozenSet[Hashable]
    value: float
    load: float
    strategy: str


def _validate(weights: Mapping[Hashable, float], capacity: float) -> None:
    if capacity <= 0:
        raise BudgetError(f"capacity must be positive, got {capacity}")
    bad = [e for e, w in weights.items() if w < 0]
    if bad:
        raise InvalidInstanceError(f"negative weights: {sorted(map(repr, bad))[:5]}")


def knapsack_density_greedy(
    utility: SetFunction,
    weights: Mapping[Hashable, float],
    capacity: float = 1.0,
) -> KnapsackSolution:
    """Greedy by marginal value per unit weight, stopping at capacity."""
    _validate(weights, capacity)
    chosen: set = set()
    load = 0.0
    value = utility.value(frozenset())
    remaining = {e for e in utility.ground_set if weights.get(e, math.inf) <= capacity}
    while remaining:
        best, best_density = None, 0.0
        for e in remaining:
            w = weights[e]
            if load + w > capacity:
                continue
            gain = utility.value(frozenset(chosen | {e})) - value
            density = gain / w if w > 0 else (math.inf if gain > 0 else 0.0)
            if density > best_density:
                best, best_density = e, density
        if best is None:
            break
        chosen.add(best)
        load += weights[best]
        value = utility.value(frozenset(chosen))
        remaining.discard(best)
    return KnapsackSolution(frozenset(chosen), value, load, "density")


def knapsack_maximize(
    utility: SetFunction,
    weights: Mapping[Hashable, float],
    capacity: float = 1.0,
) -> KnapsackSolution:
    """max(density greedy, best feasible singleton) — 3-approximate.

    The classical argument: the density greedy either fills half the
    knapsack at optimal density or exhausts all items; the element it
    first rejects for capacity is covered by the best singleton.
    """
    _validate(weights, capacity)
    greedy = knapsack_density_greedy(utility, weights, capacity)
    best_single = None
    best_value = 0.0
    for e in utility.ground_set:
        if weights.get(e, math.inf) > capacity:
            continue
        v = utility.value(frozenset({e}))
        if v > best_value:
            best_single, best_value = e, v
    if best_single is not None and best_value > greedy.value:
        return KnapsackSolution(
            frozenset({best_single}), best_value, weights[best_single], "singleton"
        )
    return greedy


def multi_knapsack_maximize(
    utility: SetFunction,
    weights: Mapping[Hashable, Sequence[float]],
    capacities: Sequence[float],
) -> KnapsackSolution:
    """Offline l-knapsack maximization via the Lemma 3.4.1 reduction.

    Solves the reduced single knapsack; the returned set is feasible in
    *every* original knapsack (the reduction's safe direction) and the
    value is within O(l) of the multi-knapsack optimum.
    """
    from repro.secretary.knapsack_secretary import reduce_knapsacks_to_one

    reduced = reduce_knapsacks_to_one(weights, capacities)
    solution = knapsack_maximize(utility, reduced, 1.0)
    # Report the max relative load across the original knapsacks.
    loads = [
        sum(weights[e][i] for e in solution.selected) / capacities[i]
        for i in range(len(capacities))
    ]
    return KnapsackSolution(
        solution.selected, solution.value, max(loads, default=0.0),
        f"reduced-l={len(capacities)}",
    )
