"""Vectorized incremental oracle kernels for the concrete utility families.

The paper's algorithms are analysed in the value-oracle model
(Definition 1): the query count is the honest complexity measure, and
:class:`~repro.core.oracle.CountingOracle` reports it.  Wall time is a
different matter — a naive oracle re-evaluates ``F(S ∪ {a})`` from
scratch, so one query costs ``O(|S| · |instance|)`` python-object work
and a greedy's total cost picks up an extra factor of the instance
size.  This module removes that factor the same way the paper's own
Lemma 2.1.1 accounting does for matchings: keep *incremental state* for
the growing selection and answer each marginal query from that state.

Two pieces:

* :class:`IncrementalEvaluator` — the generic (naive) fallback.  It
  works for any :class:`~repro.core.submodular.SetFunction`
  (``LambdaSetFunction``, ``TruncatedFunction``, the matching
  utilities, ...) by delegating to ``fn.value``, so consumers can be
  written against one API and stay correct everywhere.

* family kernels — numpy-backed evaluators for every concrete family in
  :mod:`repro.core.functions`: coverage via packed-bitset incidence
  rows and popcounts, weighted coverage via a float incidence matrix
  against the uncovered-weight vector, facility location via running
  per-client best arrays, cut functions via a dense symmetric adjacency
  with an incrementally maintained ``W @ x`` product, and (budget-)
  additive utilities via value vectors.  All expose ``fast = True`` so
  consumers (``budgeted_greedy``, the secretary segment scans, the
  Set-Cover greedy, ...) can score *every* surviving candidate in one
  vectorized pass per round instead of one python-loop oracle call per
  candidate.

Gains are evaluated against the evaluator's *current* selection and are
exact under overlap: a candidate set that intersects the selection is
charged only for its genuinely new part, matching
``F(S ∪ A) - F(S)`` by definition.  Kernel arithmetic can differ from
the naive path by float round-off (``fsum`` vs accumulated numpy sums);
the property suite pins agreement to 1e-12.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.submodular import Element, SetFunction, _as_frozen

__all__ = [
    "IncrementalEvaluator",
    "PreparedBatch",
    "evaluator_for",
]


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint8 array (numpy >= 2 fast path)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    return _POPCOUNT_TABLE[words]


_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def evaluator_for(fn: SetFunction) -> "IncrementalEvaluator":
    """The best incremental evaluator *fn* offers (naive fallback)."""
    maker = getattr(fn, "incremental_evaluator", None)
    if maker is not None:
        return maker()
    return IncrementalEvaluator(fn)


class PreparedBatch:
    """A fixed candidate pool, pre-digested for repeated round scoring.

    Greedy loops score the same candidate subsets round after round;
    whatever is selection-independent about them (their unioned
    incidence rows, their value sums, their member index arrays) is
    computed once here, so each round costs one vectorized pass.  The
    naive base class keeps the candidate frozensets and loops — correct
    for every function, fast for none.
    """

    def __init__(self, ev: "IncrementalEvaluator", candidate_sets: Sequence[Iterable[Element]]):
        self.ev = ev
        self.sets: List[FrozenSet[Element]] = [_as_frozen(s) for s in candidate_sets]

    def __len__(self) -> int:
        return len(self.sets)

    def gains(self, indices: Sequence[int]) -> np.ndarray:
        """``F(S ∪ A_i) - F(S)`` for each pool index, vs the current state."""
        return self.ev.set_gains([self.sets[i] for i in indices])


class IncrementalEvaluator:
    """Stateful view of ``F`` at a growing selection — naive fallback.

    The evaluator owns a selection ``S`` and answers marginal queries
    against it; ``add``/``add_set`` grow ``S`` in place (the greedy/
    secretary usage pattern — selections only grow, which is also what
    makes kernel state updates O(new elements) instead of O(|S|)).

    ``fast`` advertises whether queries are vectorized kernel work
    (``True`` for the family kernels) or one python-level oracle
    evaluation per candidate (this class).  Consumers keep their legacy
    scan when ``fast`` is ``False`` so oracle-call accounting and
    memoisation wrappers behave exactly as before.
    """

    fast = False
    modular = False  # True only when marginals are selection-independent

    def __init__(self, fn: SetFunction, selection: Iterable[Element] = ()):  # noqa: D401
        self.fn = fn
        self._selection: set = set()
        self._value = 0.0
        self.reset(selection)

    # -- state ---------------------------------------------------------

    @property
    def selection(self) -> FrozenSet[Element]:
        return frozenset(self._selection)

    @property
    def current_value(self) -> float:
        """``F(S)`` for the current selection ``S``."""
        return self._value

    def reset(self, selection: Iterable[Element] = ()) -> None:
        """Rebuild state for an arbitrary selection (O(|selection|))."""
        self._selection = set(selection)
        self._value = self.fn.value(frozenset(self._selection))

    def add(self, element: Element) -> float:
        """Grow the selection by one element; returns the new value."""
        if element not in self._selection:
            self._selection.add(element)
            self._value = self.fn.value(frozenset(self._selection))
        return self._value

    def add_set(self, items: Iterable[Element]) -> float:
        """Grow the selection by a whole subset; returns the new value."""
        items = set(items) - self._selection
        if items:
            self._selection |= items
            self._value = self.fn.value(frozenset(self._selection))
        return self._value

    def advance(self, element: Element, new_value: float) -> None:
        """Record a pick whose value the caller already evaluated.

        Greedy/secretary loops learn ``F(S + a)`` from the very query
        that selected ``a``; advancing with that number instead of
        calling :meth:`add` avoids re-evaluating the oracle (keeping
        naive-path query counts identical to the pre-kernel scans).
        """
        self._selection.add(element)
        self._value = float(new_value)

    # -- queries -------------------------------------------------------

    def gains(self, candidates: Sequence[Element]) -> np.ndarray:
        """``F(S + c) - F(S)`` for each single-element candidate ``c``."""
        return self.union_values(candidates) - self._value

    def gain1(self, element: Element) -> float:
        """Scalar ``F(S + a) - F(S)`` — the per-arrival streaming query."""
        return self.union_value1(element) - self._value

    def union_value1(self, element: Element) -> float:
        """Scalar ``F(S + a)``; avoids array overhead on per-arrival paths."""
        return self.fn.value(frozenset(self._selection) | {element})

    def union_values(self, candidates: Sequence[Element]) -> np.ndarray:
        """``F(S + c)`` per candidate — the segment scans compare these.

        The naive path evaluates each union directly (bit-identical to
        the pre-kernel code); kernels return ``current + gain``.
        """
        base = frozenset(self._selection)
        return np.array(
            [self.fn.value(base | {c}) for c in candidates], dtype=float
        )

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        """``F(S ∪ A) - F(S)`` for each candidate *subset* ``A``."""
        base = frozenset(self._selection)
        return np.array(
            [self.fn.value(base | _as_frozen(a)) - self._value for a in candidate_sets],
            dtype=float,
        )

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        """Digest a fixed candidate pool for repeated round scoring."""
        return PreparedBatch(self, candidate_sets)


# ---------------------------------------------------------------------------
# kernel plumbing shared by the family evaluators
# ---------------------------------------------------------------------------


class _KernelEvaluator(IncrementalEvaluator):
    """Shared scaffolding: index bookkeeping and value tracking.

    Subclasses maintain numpy state and implement ``_gain_ids`` /
    ``_add_id``; element <-> dense-index translation and the
    :class:`IncrementalEvaluator` contract live here.  The element
    order is the function's canonical (sorted-by-repr) order, so kernel
    tie-breaking matches the naive scans everywhere consumers iterate
    in that order.
    """

    fast = True

    def __init__(self, fn: SetFunction, elements: List[Element], selection: Iterable[Element] = ()):
        self.fn = fn
        self._elements = elements
        self._index: Dict[Element, int] = {e: i for i, e in enumerate(elements)}
        self._selection = set()
        self._value = 0.0
        self._init_state()
        for e in selection:
            self.add(e)

    def _init_state(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _add_id(self, i: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _ids_of(self, candidates: Sequence[Element]) -> np.ndarray:
        index = self._index
        return np.fromiter((index[c] for c in candidates), dtype=np.intp, count=len(candidates))

    def reset(self, selection: Iterable[Element] = ()) -> None:
        self._selection = set()
        self._value = 0.0
        self._init_state()
        for e in selection:
            self.add(e)

    def add(self, element: Element) -> float:
        if element not in self._selection:
            self._selection.add(element)
            self._add_id(self._index[element])
        return self._value

    def add_set(self, items: Iterable[Element]) -> float:
        for e in items:
            self.add(e)
        return self._value

    def advance(self, element: Element, new_value: float) -> None:
        # Kernel state updates are cheap; adopt the caller's value so the
        # scalar matches what its (possibly fsum-exact) query reported.
        self.add(element)
        self._value = float(new_value)

    def gains(self, candidates: Sequence[Element]) -> np.ndarray:
        if not len(candidates):
            return np.zeros(0)
        return self._gain_ids(self._ids_of(candidates))

    def gain1(self, element: Element) -> float:
        return float(self._gain_ids(np.array([self._index[element]], dtype=np.intp))[0])

    def union_value1(self, element: Element) -> float:
        return self._value + self.gain1(element)

    def union_values(self, candidates: Sequence[Element]) -> np.ndarray:
        return self._value + self.gains(candidates)

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        return self.prepare(candidate_sets).gains(range(len(candidate_sets)))


# ---------------------------------------------------------------------------
# coverage (packed bitsets + popcount)
# ---------------------------------------------------------------------------


class _CoverageKernel:
    """Selection-independent arrays for a (weighted) coverage function.

    Built once per function instance and shared by all its evaluators:
    a boolean incidence matrix (elements x universe items) in canonical
    sorted-by-repr order, its packed-bitset form for popcount gains,
    and the per-item weight vector for the weighted variant.
    """

    def __init__(self, covers: Dict[Element, FrozenSet], weights: Optional[Dict] = None):
        self.elements: List[Element] = sorted(covers, key=repr)
        universe: set = set()
        for s in covers.values():
            universe |= s
        self.items: List = sorted(universe, key=repr)
        item_index = {u: j for j, u in enumerate(self.items)}
        n, m = len(self.elements), len(self.items)
        rows = np.zeros((n, max(m, 1)), dtype=bool)
        for i, e in enumerate(self.elements):
            for u in covers[e]:
                rows[i, item_index[u]] = True
        self.rows = rows
        self.packed = np.packbits(rows, axis=1)
        if weights is None:
            self.weights = None
            self.rows_f = None
        else:
            self.weights = np.array(
                [float(weights.get(u, 1.0)) for u in self.items], dtype=float
            ) if m else np.zeros(0)
            self.rows_f = rows.astype(float)


class CoverageEvaluator(_KernelEvaluator):
    """Packed-bitset incremental coverage: gains are popcounts.

    State is one bit per universe item; the marginal of a candidate is
    ``popcount(row & ~covered)`` — evaluated for a whole batch with two
    ``np.bitwise_*`` passes.  Values are exact integers, so this path
    is bit-identical to the naive ``len(union)`` evaluation.
    """

    def __init__(self, fn, kernel: _CoverageKernel, selection: Iterable[Element] = ()):
        self._kernel = kernel
        super().__init__(fn, kernel.elements, selection)

    def _init_state(self) -> None:
        self._mask = np.zeros(self._kernel.packed.shape[1], dtype=np.uint8)

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        fresh = self._kernel.packed[ids] & ~self._mask
        return _popcount(fresh).sum(axis=1, dtype=np.int64).astype(float)

    def _add_id(self, i: int) -> None:
        self._mask |= self._kernel.packed[i]
        self._value = float(_popcount(self._mask).sum(dtype=np.int64))

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        index = self._index
        packed = self._kernel.packed
        union_rows = np.zeros((len(candidate_sets), packed.shape[1]), dtype=np.uint8)
        for r, a in enumerate(candidate_sets):
            for e in a:
                union_rows[r] |= packed[index[e]]
        batch = PreparedBatch(self, candidate_sets)
        batch.union_rows = union_rows  # type: ignore[attr-defined]

        def gains(indices, batch=batch, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            fresh = batch.union_rows[idx] & ~self._mask
            return _popcount(fresh).sum(axis=1, dtype=np.int64).astype(float)

        batch.gains = gains  # type: ignore[method-assign]
        return batch


class WeightedCoverageEvaluator(_KernelEvaluator):
    """Weighted coverage: float incidence rows against uncovered weights.

    Popcounts cannot weight items, so the batch marginal is the matvec
    ``rows_f @ (weights * ~covered)`` — one numpy pass per round.
    Values accumulate in float64 (vs the naive exact ``fsum``); the
    drift is ~1 ulp and covered by the 1e-12 equivalence suite.
    """

    def __init__(self, fn, kernel: _CoverageKernel, selection: Iterable[Element] = ()):
        self._kernel = kernel
        super().__init__(fn, kernel.elements, selection)

    def _init_state(self) -> None:
        k = self._kernel
        self._covered = np.zeros(k.rows.shape[1], dtype=bool)
        self._active = k.weights.copy() if len(k.weights) else np.zeros(k.rows.shape[1])

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        return self._kernel.rows_f[ids] @ self._active

    def _add_id(self, i: int) -> None:
        row = self._kernel.rows[i]
        fresh = row & ~self._covered
        self._value += float(self._active[fresh].sum())
        self._covered |= row
        self._active[row] = 0.0

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        index = self._index
        rows = self._kernel.rows
        union_rows = np.zeros((len(candidate_sets), rows.shape[1]), dtype=bool)
        for r, a in enumerate(candidate_sets):
            for e in a:
                union_rows[r] |= rows[index[e]]
        batch = PreparedBatch(self, candidate_sets)
        batch.union_rows = union_rows.astype(float)  # type: ignore[attr-defined]

        def gains(indices, batch=batch, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            return batch.union_rows[idx] @ self._active

        batch.gains = gains  # type: ignore[method-assign]
        return batch


# ---------------------------------------------------------------------------
# facility location (running per-client best arrays)
# ---------------------------------------------------------------------------


class FacilityLocationEvaluator(_KernelEvaluator):
    """Facility location: state is the per-client best open benefit.

    ``F(S) = Σ_clients max_{f ∈ S} benefit[c, f]`` — adding a facility
    updates a running max array, and a candidate's marginal is
    ``Σ max(0, column - best)``, batched as one matrix expression.
    """

    def __init__(self, fn, facilities: List[Element], benefit: np.ndarray,
                 selection: Iterable[Element] = ()):
        self._benefit = benefit
        super().__init__(fn, facilities, selection)

    def _init_state(self) -> None:
        self._best = np.zeros(self._benefit.shape[0])

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        return np.maximum(self._benefit[:, ids] - self._best[:, None], 0.0).sum(axis=0)

    def _add_id(self, i: int) -> None:
        np.maximum(self._best, self._benefit[:, i], out=self._best)
        self._value = float(self._best.sum())

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        index = self._index
        benefit = self._benefit
        cols = np.zeros((len(candidate_sets), benefit.shape[0]))
        for r, a in enumerate(candidate_sets):
            ids = [index[e] for e in a]
            if ids:
                cols[r] = benefit[:, ids].max(axis=1)
        batch = PreparedBatch(self, candidate_sets)
        batch.cols = cols  # type: ignore[attr-defined]

        def gains(indices, batch=batch, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            return np.maximum(batch.cols[idx] - self._best, 0.0).sum(axis=1)

        batch.gains = gains  # type: ignore[method-assign]
        return batch


# ---------------------------------------------------------------------------
# cut functions (dense adjacency + maintained W @ x)
# ---------------------------------------------------------------------------


class CutEvaluator(_KernelEvaluator):
    """Cut marginals from degrees and an incrementally maintained ``W@x``.

    For the symmetric weighted adjacency ``W`` and selection indicator
    ``x``, ``F(S) = xᵀW(1-x)`` and a fresh vertex's marginal is
    ``deg(v) - 2 (Wx)_v`` — so a batch of singleton candidates is one
    fancy-indexing pass.  Adding ``v`` costs one row addition to the
    maintained product.  Multi-vertex candidate sets subtract their
    internal edge weight (``bᵀWb``) per set.
    """

    def __init__(self, fn, vertices: List[Element], W: np.ndarray,
                 selection: Iterable[Element] = ()):
        self._W = W
        self._deg = W.sum(axis=1)
        super().__init__(fn, vertices, selection)

    def _init_state(self) -> None:
        n = len(self._elements)
        self._in = np.zeros(n, dtype=bool)
        self._Wx = np.zeros(n)

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        fresh = ~self._in[ids]
        return (self._deg[ids] - 2.0 * self._Wx[ids]) * fresh

    def gain1(self, element: Element) -> float:
        i = self._index[element]
        if self._in[i]:
            return 0.0
        return float(self._deg[i] - 2.0 * self._Wx[i])

    def _add_id(self, i: int) -> None:
        self._value += float(self._deg[i] - 2.0 * self._Wx[i])
        self._in[i] = True
        self._Wx += self._W[i]

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        index = self._index
        out = np.zeros(len(candidate_sets))
        for r, a in enumerate(candidate_sets):
            ids = np.array([index[e] for e in a], dtype=np.intp)
            b = ids[~self._in[ids]]
            if len(b):
                internal = float(self._W[np.ix_(b, b)].sum())
                out[r] = float((self._deg[b] - 2.0 * self._Wx[b]).sum()) - internal
        return out

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        index = self._index
        members = [
            np.array(sorted(index[e] for e in a), dtype=np.intp) for a in candidate_sets
        ]
        batch = PreparedBatch(self, candidate_sets)
        singleton = all(len(m) <= 1 for m in members)
        flat = np.array([m[0] if len(m) else 0 for m in members], dtype=np.intp)
        empty = np.array([len(m) == 0 for m in members], dtype=bool)

        def gains(indices, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            if singleton:
                ids = flat[idx]
                out = (self._deg[ids] - 2.0 * self._Wx[ids]) * ~self._in[ids]
                out[empty[idx]] = 0.0
                return out
            return self.set_gains([batch.sets[i] for i in idx])

        batch.gains = gains  # type: ignore[method-assign]
        return batch


# ---------------------------------------------------------------------------
# (budget-)additive utilities (value vectors / prefix totals)
# ---------------------------------------------------------------------------


class AdditiveEvaluator(_KernelEvaluator):
    """Modular utilities: a candidate's marginal is just its value.

    The degenerate-but-hot base case (the multiple-choice secretary
    benchmark and the knapsack density greedy): gains are a fancy-index
    of the value vector, masked to elements not yet selected; the
    budget-additive variant truncates against the running total.

    ``modular`` is ``True`` for the uncapped case: marginals never
    change as the selection grows, which lets consumers (the knapsack
    density greedy) replace per-round re-scoring with one sort.
    """

    def __init__(self, fn, elements: List[Element], values: np.ndarray,
                 cap: Optional[float] = None, selection: Iterable[Element] = ()):
        self._values = values
        self._cap = cap
        self.modular = cap is None
        super().__init__(fn, elements, selection)

    def gain1(self, element: Element) -> float:
        i = self._index[element]
        raw = 0.0 if self._in[i] else float(self._values[i])
        if self._cap is None:
            return raw
        return min(self._cap, self._total + raw) - min(self._cap, self._total)

    def _init_state(self) -> None:
        self._in = np.zeros(len(self._elements), dtype=bool)
        self._total = 0.0

    def _truncate(self, totals):
        if self._cap is None:
            return totals
        return np.minimum(self._cap, totals)

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        raw = self._values[ids] * ~self._in[ids]
        if self._cap is None:
            return raw
        return np.minimum(self._cap, self._total + raw) - min(self._cap, self._total)

    def _add_id(self, i: int) -> None:
        self._total += float(self._values[i])
        self._in[i] = True
        self._value = self._total if self._cap is None else min(self._cap, self._total)

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        index = self._index
        values, inS = self._values, self._in
        raw = np.zeros(len(candidate_sets))
        for r, a in enumerate(candidate_sets):
            ids = np.array([index[e] for e in a], dtype=np.intp)
            if len(ids):
                raw[r] = float((values[ids] * ~inS[ids]).sum())
        if self._cap is None:
            return raw
        return np.minimum(self._cap, self._total + raw) - min(self._cap, self._total)

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        index = self._index
        members: List[np.ndarray] = [
            np.array([index[e] for e in a], dtype=np.intp) for a in candidate_sets
        ]
        members_flat: List[int] = []
        set_ids: List[int] = []
        for r, ids in enumerate(members):
            members_flat.extend(ids.tolist())
            set_ids.extend([r] * len(ids))
        flat = np.array(members_flat, dtype=np.intp)
        sid = np.array(set_ids, dtype=np.intp)
        m = len(candidate_sets)
        totals = np.bincount(sid, weights=self._values[flat], minlength=m) if len(flat) else np.zeros(m)
        batch = PreparedBatch(self, candidate_sets)

        def gains(indices, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            # Static per-set sums minus the already-selected overlap.
            # Small requests (a lazy greedy re-scoring one candidate)
            # pay only for their own members; full-pool scans use one
            # bincount pass.  The small path accumulates sequentially
            # in member order — bincount's exact summation scheme — so
            # the two branches return bit-identical floats.
            if len(idx) * 4 <= m:
                raw = np.empty(len(idx))
                values, inS = self._values, self._in
                for pos, r in enumerate(idx):
                    overlap = 0.0
                    for i in members[r].tolist():
                        if inS[i]:
                            overlap += float(values[i])
                    raw[pos] = totals[r] - overlap
            else:
                sel = self._values * self._in
                overlap = np.bincount(sid, weights=sel[flat], minlength=m) if len(flat) else np.zeros(m)
                raw = (totals - overlap)[idx]
            if self._cap is None:
                return raw
            return np.minimum(self._cap, self._total + raw) - min(self._cap, self._total)

        batch.gains = gains  # type: ignore[method-assign]
        return batch
