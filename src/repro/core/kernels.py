"""Vectorized incremental oracle kernels for the concrete utility families.

The paper's algorithms are analysed in the value-oracle model
(Definition 1): the query count is the honest complexity measure, and
:class:`~repro.core.oracle.CountingOracle` reports it.  Wall time is a
different matter — a naive oracle re-evaluates ``F(S ∪ {a})`` from
scratch, so one query costs ``O(|S| · |instance|)`` python-object work
and a greedy's total cost picks up an extra factor of the instance
size.  This module removes that factor the same way the paper's own
Lemma 2.1.1 accounting does for matchings: keep *incremental state* for
the growing selection and answer each marginal query from that state.

Three pieces:

* :class:`IncrementalEvaluator` — the generic (naive) fallback.  It
  works for any :class:`~repro.core.submodular.SetFunction`
  (``LambdaSetFunction``, ``TruncatedFunction``, the matching
  utilities, ...) by delegating to ``fn.value``, so consumers can be
  written against one API and stay correct everywhere.

* **dense kernels** — numpy-backed evaluators sized by the full
  instance: coverage via packed-bitset incidence rows and (blocked)
  popcounts, facility location via running per-client best arrays, cut
  functions via a dense symmetric adjacency with an incrementally
  maintained ``W @ x`` product, and (budget-)additive utilities via
  value vectors.

* **sparse (CSR) kernels** — the v2 backend for million-element ground
  sets: coverage incidence and cut adjacency are stored as CSR
  ``(indptr, indices[, data])`` arrays, per-candidate marginals are
  indptr-sliced gathers against an uncovered mask / active-weight /
  ``W @ x`` vector, and nothing of size ``n × m`` is ever
  materialized — state and batch work are ``O(nnz)``.

Backend selection is automatic by instance size and density (see
:func:`resolve_backend` and the pinned constants below) with an
explicit ``backend=`` override threaded through
``SetFunction.fast_evaluator()`` and every oracle wrapper.  Where both
backends exist for a family, their marginals are **bit-identical** by
construction: integer popcount vs. integer bincount for coverage, and
one shared CSR arithmetic (same degree vector, same element-wise
``W @ x`` updates, same summation order) for the float families — the
property suite asserts exact equality, which is what lets the committed
bench cells stay drift-free no matter which backend auto-selection
picks.

Gains are evaluated against the evaluator's *current* selection and are
exact under overlap: a candidate set that intersects the selection is
charged only for its genuinely new part, matching
``F(S ∪ A) - F(S)`` by definition.  Kernel arithmetic can differ from
the naive path by float round-off (``fsum`` vs accumulated numpy sums);
the property suite pins agreement to 1e-12.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.submodular import Element, SetFunction, _as_frozen

__all__ = [
    "IncrementalEvaluator",
    "PreparedBatch",
    "evaluator_for",
    "resolve_backend",
    "KERNEL_BACKENDS",
    "DENSE_CELL_LIMIT",
    "DENSE_CELL_MIN",
    "SPARSE_DENSITY_CUTOFF",
    "POPCOUNT_TILE_BYTES",
]


# -- backend selection (constants pinned by docs/ARCHITECTURE.md) -----------

#: Recognised values for the ``backend=`` override.
KERNEL_BACKENDS = ("auto", "dense", "sparse", "naive")

#: Above this many incidence/adjacency cells (``n_elements × n_items``,
#: or ``n_vertices²`` for cuts) the dense arrays are never built:
#: auto-selection always picks the CSR backend.  At the limit the
#: packed coverage bitset is 8 MiB and a dense cut adjacency 512 MiB —
#: past it, dense storage stops being a sensible trade at any density.
DENSE_CELL_LIMIT = 1 << 26

#: Below this many cells the dense arrays are small enough that kernel
#: constants dominate: auto-selection always picks dense, whatever the
#: density (the committed PR 3 bench cells all live in this regime).
DENSE_CELL_MIN = 1 << 21

#: Between the two cell bounds, auto-selection picks the CSR backend
#: when the instance is sparse: ``nnz < SPARSE_DENSITY_CUTOFF · cells``.
SPARSE_DENSITY_CUTOFF = 1.0 / 16.0

#: The blocked-popcount path materializes at most this many bytes of
#: ``row & ~mask`` scratch per tile, so large dense batches stream
#: through cache-sized chunks instead of allocating ``batch × m/8`` at
#: once.  Gains are integer popcounts, so tiling cannot change them.
POPCOUNT_TILE_BYTES = 1 << 18


def resolve_backend(backend: Optional[str], *, cells: int, nnz: int) -> str:
    """Resolve ``backend`` to ``"dense"`` or ``"sparse"`` for an instance.

    ``"dense"``/``"sparse"`` are honoured verbatim; ``None``/``"auto"``
    apply the size/density rule: sparse when the dense arrays would
    exceed :data:`DENSE_CELL_LIMIT` cells, dense below
    :data:`DENSE_CELL_MIN`, and density-decided (:data:`
    SPARSE_DENSITY_CUTOFF`) in between.  ``"naive"`` never reaches this
    function — the families return no kernel at all for it.
    """
    if backend in ("dense", "sparse"):
        return backend
    if backend not in (None, "auto"):
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    if cells > DENSE_CELL_LIMIT:
        return "sparse"
    if cells > DENSE_CELL_MIN and nnz < SPARSE_DENSITY_CUTOFF * cells:
        return "sparse"
    return "dense"


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint8 array (numpy >= 2 fast path)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    return _POPCOUNT_TABLE[words]


_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


# -- CSR helpers shared by the sparse kernels --------------------------------


def _slice_gather(indptr: np.ndarray, ids: np.ndarray):
    """Flat gather indices + per-row lengths for the CSR rows in *ids*.

    Returns ``(flat, lens)`` where ``indices[flat]`` concatenates the
    selected rows in order — the vectorized equivalent of
    ``np.concatenate([indices[indptr[i]:indptr[i+1]] for i in ids])``
    without a python loop.
    """
    starts = indptr[ids]
    lens = indptr[ids + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp), lens
    cum = np.cumsum(lens)
    flat = np.repeat(starts - (cum - lens), lens) + np.arange(total, dtype=starts.dtype)
    return flat.astype(np.intp, copy=False), lens


def _row_sums(values: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Per-row sums of *values* partitioned by *lens* (sequential order).

    ``np.bincount`` accumulates the flat array in index order, so two
    callers handing it identically-ordered values get bit-identical
    sums — this is the one summation primitive both coverage backends
    and both cut backends share, which is what makes their float
    marginals exactly equal rather than merely close.
    """
    n = len(lens)
    if not len(values):
        return np.zeros(n)
    rows = np.repeat(np.arange(n, dtype=np.intp), lens)
    return np.bincount(rows, weights=values, minlength=n)


def _canonical_csr(indptr: np.ndarray, indices: np.ndarray):
    """Sort each CSR row ascending and drop duplicate entries.

    Returns ``(indptr, indices)`` in canonical form (strictly
    increasing within every row).  Already-canonical inputs are
    returned as-is without copying.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.intp)
    n = len(indptr) - 1
    if len(indices) <= 1:
        return indptr, indices
    lens = np.diff(indptr)
    rows = np.repeat(np.arange(n, dtype=np.intp), lens)
    # A position is a row start iff some indptr value equals it; strict
    # ascent is only required between consecutive entries of one row.
    starts = indptr[1:-1]
    interior = np.ones(len(indices), dtype=bool)
    interior[starts[starts < len(indices)]] = False
    if bool(np.all((np.diff(indices) > 0) | ~interior[1:])):
        return indptr, indices
    order = np.lexsort((indices, rows))
    rows, indices = rows[order], indices[order]
    keep = np.ones(len(indices), dtype=bool)
    keep[1:] = (rows[1:] != rows[:-1]) | (indices[1:] != indices[:-1])
    rows, indices = rows[keep], indices[keep]
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=new_indptr[1:])
    return new_indptr, indices.astype(np.intp, copy=False)


def evaluator_for(fn: SetFunction, backend: Optional[str] = None) -> "IncrementalEvaluator":
    """The best incremental evaluator *fn* offers (naive fallback).

    *backend* forwards to ``fn.incremental_evaluator`` for functions
    exposing the kernel hook; functions without it (arbitrary oracles)
    always get the naive evaluator.
    """
    maker = getattr(fn, "incremental_evaluator", None)
    if maker is not None:
        return maker(backend=backend)
    return IncrementalEvaluator(fn)


class PreparedBatch:
    """A fixed candidate pool, pre-digested for repeated round scoring.

    Greedy loops score the same candidate subsets round after round;
    whatever is selection-independent about them (their unioned
    incidence rows, their value sums, their member index arrays) is
    digested here.  Kernel subclass batches digest **lazily** — a pool
    index is materialized the first time a ``gains`` call asks for it
    and cached after, so a lazy greedy that only ever re-probes a few
    heap heads never pays for the rest of the pool, and no call
    allocates anything sized by the ground set.  The naive base class
    keeps the candidate frozensets and loops — correct for every
    function, fast for none.
    """

    def __init__(self, ev: "IncrementalEvaluator", candidate_sets: Sequence[Iterable[Element]]):
        self.ev = ev
        self.sets: List[FrozenSet[Element]] = [_as_frozen(s) for s in candidate_sets]

    def __len__(self) -> int:
        return len(self.sets)

    def gains(self, indices: Sequence[int]) -> np.ndarray:
        """``F(S ∪ A_i) - F(S)`` for each pool index, vs the current state."""
        return self.ev.set_gains([self.sets[i] for i in indices])


class IncrementalEvaluator:
    """Stateful view of ``F`` at a growing selection — naive fallback.

    The evaluator owns a selection ``S`` and answers marginal queries
    against it; ``add``/``add_set`` grow ``S`` in place (the greedy/
    secretary usage pattern — selections only grow, which is also what
    makes kernel state updates O(new elements) instead of O(|S|)).

    ``fast`` advertises whether queries are vectorized kernel work
    (``True`` for the family kernels) or one python-level oracle
    evaluation per candidate (this class).  Consumers keep their legacy
    scan when ``fast`` is ``False`` so oracle-call accounting and
    memoisation wrappers behave exactly as before.
    """

    fast = False
    modular = False  # True only when marginals are selection-independent

    def __init__(self, fn: SetFunction, selection: Iterable[Element] = ()):  # noqa: D401
        self.fn = fn
        self._selection: set = set()
        self._value = 0.0
        self.reset(selection)

    # -- state ---------------------------------------------------------

    @property
    def selection(self) -> FrozenSet[Element]:
        return frozenset(self._selection)

    @property
    def current_value(self) -> float:
        """``F(S)`` for the current selection ``S``."""
        return self._value

    def reset(self, selection: Iterable[Element] = ()) -> None:
        """Rebuild state for an arbitrary selection (O(|selection|))."""
        self._selection = set(selection)
        self._value = self.fn.value(frozenset(self._selection))

    def add(self, element: Element) -> float:
        """Grow the selection by one element; returns the new value."""
        if element not in self._selection:
            self._selection.add(element)
            self._value = self.fn.value(frozenset(self._selection))
        return self._value

    def add_set(self, items: Iterable[Element]) -> float:
        """Grow the selection by a whole subset; returns the new value."""
        items = set(items) - self._selection
        if items:
            self._selection |= items
            self._value = self.fn.value(frozenset(self._selection))
        return self._value

    def advance(self, element: Element, new_value: float) -> None:
        """Record a pick whose value the caller already evaluated.

        Greedy/secretary loops learn ``F(S + a)`` from the very query
        that selected ``a``; advancing with that number instead of
        calling :meth:`add` avoids re-evaluating the oracle (keeping
        naive-path query counts identical to the pre-kernel scans).
        """
        self._selection.add(element)
        self._value = float(new_value)

    # -- queries -------------------------------------------------------

    def gains(self, candidates: Sequence[Element]) -> np.ndarray:
        """``F(S + c) - F(S)`` for each single-element candidate ``c``."""
        return self.union_values(candidates) - self._value

    def gain1(self, element: Element) -> float:
        """Scalar ``F(S + a) - F(S)`` — the per-arrival streaming query."""
        return self.union_value1(element) - self._value

    def union_value1(self, element: Element) -> float:
        """Scalar ``F(S + a)``; avoids array overhead on per-arrival paths."""
        return self.fn.value(frozenset(self._selection) | {element})

    def union_values(self, candidates: Sequence[Element]) -> np.ndarray:
        """``F(S + c)`` per candidate — the segment scans compare these.

        The naive path evaluates each union directly (bit-identical to
        the pre-kernel code); kernels return ``current + gain``.
        """
        base = frozenset(self._selection)
        return np.array(
            [self.fn.value(base | {c}) for c in candidates], dtype=float
        )

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        """``F(S ∪ A) - F(S)`` for each candidate *subset* ``A``."""
        base = frozenset(self._selection)
        return np.array(
            [self.fn.value(base | _as_frozen(a)) - self._value for a in candidate_sets],
            dtype=float,
        )

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        """Digest a fixed candidate pool for repeated round scoring."""
        return PreparedBatch(self, candidate_sets)


# ---------------------------------------------------------------------------
# kernel plumbing shared by the family evaluators
# ---------------------------------------------------------------------------


class _KernelEvaluator(IncrementalEvaluator):
    """Shared scaffolding: index bookkeeping and value tracking.

    Subclasses maintain numpy state and implement ``_gain_ids`` /
    ``_add_id``; element <-> dense-index translation and the
    :class:`IncrementalEvaluator` contract live here.  The element
    order is the owning function's canonical order (sorted-by-repr for
    mapping-built instances, natural array order for array-built ones),
    so kernel tie-breaking matches the naive scans everywhere consumers
    iterate in that order.

    *positional* instances use integer elements equal to their own
    canonical index (array-built functions): candidate translation is a
    single ``np.asarray`` and the O(n) ``{element: index}`` dict is
    never built — at 10^6 elements that dict alone would dwarf the CSR
    arrays.  Non-positional instances build the dict lazily on first
    translation.
    """

    fast = True

    def __init__(
        self,
        fn: SetFunction,
        elements: Sequence[Element],
        selection: Iterable[Element] = (),
        *,
        positional: bool = False,
    ):
        self.fn = fn
        self._elements = elements
        self._positional = bool(positional)
        self._index_map: Optional[Dict[Element, int]] = None
        self._selection = set()
        self._value = 0.0
        self._init_state()
        for e in selection:
            self.add(e)

    def _init_state(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _add_id(self, i: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def _index(self) -> Dict[Element, int]:
        if self._index_map is None:
            self._index_map = {e: i for i, e in enumerate(self._elements)}
        return self._index_map

    def _id_of(self, element: Element) -> int:
        if self._positional:
            return int(element)
        return self._index[element]

    def _ids_of(self, candidates: Sequence[Element]) -> np.ndarray:
        if self._positional:
            return np.asarray(candidates, dtype=np.intp)
        index = self._index
        return np.fromiter((index[c] for c in candidates), dtype=np.intp, count=len(candidates))

    def reset(self, selection: Iterable[Element] = ()) -> None:
        self._selection = set()
        self._value = 0.0
        self._init_state()
        for e in selection:
            self.add(e)

    def add(self, element: Element) -> float:
        if element not in self._selection:
            self._selection.add(element)
            self._add_id(self._id_of(element))
        return self._value

    def add_set(self, items: Iterable[Element]) -> float:
        for e in items:
            self.add(e)
        return self._value

    def advance(self, element: Element, new_value: float) -> None:
        # Kernel state updates are cheap; adopt the caller's value so the
        # scalar matches what its (possibly fsum-exact) query reported.
        self.add(element)
        self._value = float(new_value)

    def gains(self, candidates: Sequence[Element]) -> np.ndarray:
        if not len(candidates):
            return np.zeros(0)
        return self._gain_ids(self._ids_of(candidates))

    def gain1(self, element: Element) -> float:
        return float(self._gain_ids(np.array([self._id_of(element)], dtype=np.intp))[0])

    def union_value1(self, element: Element) -> float:
        return self._value + self.gain1(element)

    def union_values(self, candidates: Sequence[Element]) -> np.ndarray:
        return self._value + self.gains(candidates)

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        return self.prepare(candidate_sets).gains(range(len(candidate_sets)))

    def _member_ids(self, candidate_set: Iterable[Element]) -> np.ndarray:
        """Sorted canonical ids of one candidate set's members."""
        if self._positional:
            ids = np.asarray(sorted(int(e) for e in candidate_set), dtype=np.intp)
        else:
            index = self._index
            ids = np.asarray(sorted(index[e] for e in candidate_set), dtype=np.intp)
        return ids


class _LazyBatch(PreparedBatch):
    """Prepared batch whose per-index digests materialize on first use.

    ``_digest(r)`` (subclass hook via *digest_fn*) computes the pool
    index's selection-independent form; the cache keeps it for later
    rounds.  No ``gains`` call allocates anything proportional to the
    ground set — only to the requested indices' own digests.
    """

    def __init__(self, ev, candidate_sets, digest_fn, gains_fn):
        super().__init__(ev, candidate_sets)
        self._digests: Dict[int, object] = {}
        self._digest_fn = digest_fn
        self._gains_fn = gains_fn

    def _digest(self, r: int):
        d = self._digests.get(r)
        if d is None:
            d = self._digest_fn(self.sets[r])
            self._digests[r] = d
        return d

    def gains(self, indices: Sequence[int]) -> np.ndarray:
        idx = [int(i) for i in indices]
        return self._gains_fn([self._digest(r) for r in idx])


# ---------------------------------------------------------------------------
# coverage kernels (shared CSR core; dense packed bitsets on top)
# ---------------------------------------------------------------------------


class _CoverageKernel:
    """Selection-independent arrays for a (weighted) coverage function.

    Built once per function instance and shared by all its evaluators.
    The canonical core is a CSR incidence (``indptr``/``indices`` over
    item ids in the canonical item order, rows ascending-unique) —
    O(nnz) however large the instance.  The dense boolean matrix and
    its packed-bitset form are derived **lazily** via
    :meth:`ensure_dense`, only when a dense evaluator is actually
    constructed, so a 10^6-element instance never materializes its
    ``n × m`` incidence just because the function object exists.
    """

    def __init__(self, covers: Dict[Element, FrozenSet], weights: Optional[Dict] = None):
        self.elements: Sequence[Element] = sorted(covers, key=repr)
        universe: set = set()
        for s in covers.values():
            universe |= s
        self.items: Sequence = sorted(universe, key=repr)
        item_index = {u: j for j, u in enumerate(self.items)}
        self.n_items = len(self.items)
        self.positional = False
        lens = np.array([len(covers[e]) for e in self.elements], dtype=np.int64)
        indptr = np.zeros(len(self.elements) + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.intp)
        for i, e in enumerate(self.elements):
            indices[indptr[i]:indptr[i + 1]] = sorted(item_index[u] for u in covers[e])
        self.indptr, self.indices = indptr, indices
        if weights is None:
            self.weights = None
        else:
            self.weights = (
                np.array([float(weights.get(u, 1.0)) for u in self.items], dtype=float)
                if self.n_items
                else np.zeros(0)
            )
        self.rows: Optional[np.ndarray] = None
        self.packed: Optional[np.ndarray] = None

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        n_items: int,
        weights: Optional[np.ndarray] = None,
    ) -> "_CoverageKernel":
        """Array-built kernel: positional elements/items, canonical CSR."""
        self = cls.__new__(cls)
        self.indptr, self.indices = _canonical_csr(indptr, indices)
        n = len(self.indptr) - 1
        self.elements = range(n)
        self.n_items = int(n_items)
        self.items = range(self.n_items)
        self.positional = True
        self.weights = None if weights is None else np.asarray(weights, dtype=float)
        self.rows = None
        self.packed = None
        return self

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def cells(self) -> int:
        return len(self.elements) * max(1, self.n_items)

    def covered_by(self, i: int) -> np.ndarray:
        """Item ids covered by element id *i* (a CSR row view)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def ensure_dense(self) -> None:
        """Materialize the boolean incidence + packed bitset rows."""
        if self.packed is not None:
            return
        n, m = len(self.elements), max(1, self.n_items)
        rows = np.zeros((n, m), dtype=bool)
        if self.nnz:
            lens = np.diff(self.indptr)
            rows[np.repeat(np.arange(n, dtype=np.intp), lens), self.indices] = True
        self.rows = rows
        self.packed = np.packbits(rows, axis=1)


class CoverageEvaluator(_KernelEvaluator):
    """Packed-bitset incremental coverage: gains are popcounts.

    State is one bit per universe item; the marginal of a candidate is
    ``popcount(row & ~covered)`` — evaluated for a whole batch with two
    ``np.bitwise_*`` passes, tiled into :data:`POPCOUNT_TILE_BYTES`
    chunks when the batch scratch would outgrow cache.  Values are
    exact integers, so this path is bit-identical to both the naive
    ``len(union)`` evaluation and the CSR backend's bincounts.
    """

    def __init__(self, fn, kernel: _CoverageKernel, selection: Iterable[Element] = ()):
        kernel.ensure_dense()
        self._kernel = kernel
        super().__init__(fn, kernel.elements, selection, positional=kernel.positional)

    def _init_state(self) -> None:
        self._mask = np.zeros(self._kernel.packed.shape[1], dtype=np.uint8)

    def _fresh_popcounts(self, rows: np.ndarray) -> np.ndarray:
        """Row popcounts of ``rows & ~mask``, tiled to cache-sized scratch."""
        width = max(1, rows.shape[1])
        if rows.shape[0] * width <= POPCOUNT_TILE_BYTES:
            fresh = rows & ~self._mask
            return _popcount(fresh).sum(axis=1, dtype=np.int64)
        out = np.zeros(rows.shape[0], dtype=np.int64)
        step = max(1, POPCOUNT_TILE_BYTES // width)
        inv = ~self._mask
        for r0 in range(0, rows.shape[0], step):
            fresh = rows[r0:r0 + step] & inv
            out[r0:r0 + step] = _popcount(fresh).sum(axis=1, dtype=np.int64)
        return out

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        packed = self._kernel.packed
        width = max(1, packed.shape[1])
        step = max(1, POPCOUNT_TILE_BYTES // width)
        if len(ids) <= step:
            return self._fresh_popcounts(packed[ids]).astype(float)
        # Tile the *gather* too: never materialize batch × width bytes.
        out = np.empty(len(ids), dtype=np.int64)
        inv = ~self._mask
        for r0 in range(0, len(ids), step):
            fresh = packed[ids[r0:r0 + step]] & inv
            out[r0:r0 + step] = _popcount(fresh).sum(axis=1, dtype=np.int64)
        return out.astype(float)

    def _add_id(self, i: int) -> None:
        self._mask |= self._kernel.packed[i]
        self._value = float(_popcount(self._mask).sum(dtype=np.int64))

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        packed = self._kernel.packed

        def digest(cset, self=self, packed=packed):
            row = np.zeros(packed.shape[1], dtype=np.uint8)
            for e in cset:
                row |= packed[self._id_of(e)]
            return row

        def gains(rows, self=self):
            if not rows:
                return np.zeros(0)
            return self._fresh_popcounts(np.stack(rows)).astype(float)

        return _LazyBatch(self, candidate_sets, digest, gains)


class SparseCoverageEvaluator(_KernelEvaluator):
    """CSR incremental coverage: gains are bincounts of uncovered items.

    State is one boolean per universe item; a batch marginal gathers
    every candidate row through one indptr-sliced flat index and
    bincounts the still-uncovered hits per row — O(batch nnz) work and
    scratch, nothing sized ``n × m``.  Values are exact integers, so
    this backend is bit-identical to the packed-bitset path and the
    naive evaluation.
    """

    def __init__(self, fn, kernel: _CoverageKernel, selection: Iterable[Element] = ()):
        self._kernel = kernel
        super().__init__(fn, kernel.elements, selection, positional=kernel.positional)

    def _init_state(self) -> None:
        self._uncovered = np.ones(max(1, self._kernel.n_items), dtype=bool)
        self._covered_count = 0

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        flat, lens = _slice_gather(self._kernel.indptr, ids)
        return _row_sums(self._uncovered[self._kernel.indices[flat]], lens)

    def _add_id(self, i: int) -> None:
        row = self._kernel.covered_by(i)
        fresh = self._uncovered[row]
        self._covered_count += int(fresh.sum())
        self._uncovered[row] = False
        self._value = float(self._covered_count)

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        kernel = self._kernel

        def digest(cset, self=self, kernel=kernel):
            ids = self._member_ids(cset)
            if not len(ids):
                return np.empty(0, dtype=np.intp)
            flat, _ = _slice_gather(kernel.indptr, ids)
            return np.unique(kernel.indices[flat])

        def gains(item_arrays, self=self):
            if not item_arrays:
                return np.zeros(0)
            lens = np.array([len(a) for a in item_arrays], dtype=np.int64)
            flat = np.concatenate(item_arrays) if lens.sum() else np.empty(0, np.intp)
            return _row_sums(self._uncovered[flat], lens)

        return _LazyBatch(self, candidate_sets, digest, gains)


class WeightedCoverageEvaluator(_KernelEvaluator):
    """Weighted coverage: CSR gathers against the active-weight vector.

    The single v2 backend for the weighted family (the PR 3 dense
    matvec is retired): a candidate's marginal is the sum of
    still-active item weights over its CSR row, batched as one flat
    gather + bincount.  ``backend="dense"`` and ``backend="sparse"``
    both resolve here, so the bit-identity contract is trivial; the
    naive exact-``fsum`` path stays within the 1e-12 equivalence suite,
    as the dense matvec did.
    """

    def __init__(self, fn, kernel: _CoverageKernel, selection: Iterable[Element] = ()):
        self._kernel = kernel
        super().__init__(fn, kernel.elements, selection, positional=kernel.positional)

    def _init_state(self) -> None:
        k = self._kernel
        self._covered = np.zeros(max(1, k.n_items), dtype=bool)
        self._active = (
            k.weights.copy() if k.weights is not None and len(k.weights)
            else np.zeros(max(1, k.n_items))
        )

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        flat, lens = _slice_gather(self._kernel.indptr, ids)
        return _row_sums(self._active[self._kernel.indices[flat]], lens)

    def _add_id(self, i: int) -> None:
        row = self._kernel.covered_by(i)
        fresh = row[~self._covered[row]]
        self._value += float(self._active[fresh].sum())
        self._covered[row] = True
        self._active[row] = 0.0

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        kernel = self._kernel

        def digest(cset, self=self, kernel=kernel):
            ids = self._member_ids(cset)
            if not len(ids):
                return np.empty(0, dtype=np.intp)
            flat, _ = _slice_gather(kernel.indptr, ids)
            return np.unique(kernel.indices[flat])

        def gains(item_arrays, self=self):
            if not item_arrays:
                return np.zeros(0)
            lens = np.array([len(a) for a in item_arrays], dtype=np.int64)
            flat = np.concatenate(item_arrays) if lens.sum() else np.empty(0, np.intp)
            return _row_sums(self._active[flat], lens)

        return _LazyBatch(self, candidate_sets, digest, gains)


# ---------------------------------------------------------------------------
# facility location (running per-client best arrays)
# ---------------------------------------------------------------------------


class FacilityLocationEvaluator(_KernelEvaluator):
    """Facility location: state is the per-client best open benefit.

    ``F(S) = Σ_clients max_{f ∈ S} benefit[c, f]`` — adding a facility
    updates a running max array, and a candidate's marginal is
    ``Σ max(0, column - best)``, batched as one matrix expression.
    The benefit matrix is inherently dense (clients × facilities), so
    this family has no separate sparse backend.
    """

    def __init__(self, fn, facilities: List[Element], benefit: np.ndarray,
                 selection: Iterable[Element] = ()):
        self._benefit = benefit
        super().__init__(fn, facilities, selection)

    def _init_state(self) -> None:
        self._best = np.zeros(self._benefit.shape[0])

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        return np.maximum(self._benefit[:, ids] - self._best[:, None], 0.0).sum(axis=0)

    def _add_id(self, i: int) -> None:
        np.maximum(self._best, self._benefit[:, i], out=self._best)
        self._value = float(self._best.sum())

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        benefit = self._benefit

        def digest(cset, self=self, benefit=benefit):
            ids = [self._id_of(e) for e in cset]
            if not ids:
                return np.zeros(benefit.shape[0])
            return benefit[:, ids].max(axis=1)

        def gains(cols, self=self):
            if not cols:
                return np.zeros(0)
            return np.maximum(np.stack(cols) - self._best, 0.0).sum(axis=1)

        return _LazyBatch(self, candidate_sets, digest, gains)


# ---------------------------------------------------------------------------
# cut functions (shared CSR adjacency; dense W on top for small graphs)
# ---------------------------------------------------------------------------


class _CutKernel:
    """Selection-independent adjacency for a cut function.

    Canonical core: a both-directions CSR (``indptr``/``cols``/``data``
    with columns ascending-unique per row — duplicate edges are
    consolidated by summing in sorted order) plus the degree vector
    ``deg``, computed once through :func:`_row_sums` so **both**
    backends read the same float degrees.  The dense symmetric ``W`` is
    derived lazily for the dense evaluator only.
    """

    def __init__(self, vertices: Sequence[Element], edges, *, positional: bool = False):
        self.vertices = vertices
        self.positional = positional
        n = len(vertices)
        if positional:
            # Array-built path: *edges* is a (u, v, w) array triple, so a
            # million-edge graph never round-trips through python tuples.
            u, v, w = edges
            u = np.asarray(u, dtype=np.intp)
            v = np.asarray(v, dtype=np.intp)
            w = np.asarray(w, dtype=float)
        else:
            index = {x: i for i, x in enumerate(vertices)}
            u = np.array([index[a] for a, _, _ in edges], dtype=np.intp)
            v = np.array([index[b] for _, b, _ in edges], dtype=np.intp)
            w = np.array([float(c) for _, _, c in edges], dtype=float)
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        data = np.concatenate([w, w])
        if len(rows):
            order = np.lexsort((cols, rows))
            rows, cols, data = rows[order], cols[order], data[order]
            boundary = np.ones(len(rows), dtype=bool)
            boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(boundary)
            data = np.add.reduceat(data, starts)
            rows, cols = rows[starts], cols[starts]
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        if len(rows):
            np.cumsum(np.bincount(rows, minlength=n), out=self.indptr[1:])
        self.cols = cols.astype(np.intp, copy=False)
        self.data = data
        self.deg = _row_sums(self.data, np.diff(self.indptr)) if n else np.zeros(0)
        self.W: Optional[np.ndarray] = None
        self._rows = rows  # kept for lazy dense scatter

    @property
    def n(self) -> int:
        return len(self.vertices)

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def cells(self) -> int:
        return self.n * self.n

    def ensure_dense(self) -> None:
        """Materialize the dense symmetric adjacency matrix."""
        if self.W is None:
            W = np.zeros((self.n, self.n))
            if len(self.data):
                W[self._rows, self.cols] = self.data
            self.W = W

    def neighbours(self, i: int):
        """``(cols, data)`` CSR row views for vertex id *i*."""
        s, e = self.indptr[i], self.indptr[i + 1]
        return self.cols[s:e], self.data[s:e]

    def internal_weight(self, ids: np.ndarray) -> float:
        """Total edge weight with both endpoints in *ids* (counted twice).

        Shared by both backends' multi-vertex ``set_gains`` so the
        correction term is summed in the same (row, ascending-column)
        order everywhere.
        """
        if not len(ids):
            return 0.0
        flat, _ = _slice_gather(self.indptr, ids)
        cols = self.cols[flat]
        inside = np.isin(cols, ids)
        return float(self.data[flat][inside].sum())


class _CutEvaluatorBase(_KernelEvaluator):
    """Shared cut arithmetic: ``gain(v) = (deg(v) - 2·(Wx)_v) · fresh``.

    Subclasses differ only in how :meth:`_add_id` maintains the
    ``W @ x`` product (dense row addition vs CSR scatter-add) — which
    touches the same positions with the same addends, so the two
    backends' ``Wx`` vectors, and hence every gain they report, are
    bit-identical.
    """

    def __init__(self, fn, kernel: _CutKernel, selection: Iterable[Element] = ()):
        self._kernel = kernel
        self._deg = kernel.deg
        super().__init__(fn, kernel.vertices, selection, positional=kernel.positional)

    def _init_state(self) -> None:
        n = self._kernel.n
        self._in = np.zeros(n, dtype=bool)
        self._Wx = np.zeros(n)

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        fresh = ~self._in[ids]
        return (self._deg[ids] - 2.0 * self._Wx[ids]) * fresh

    def gain1(self, element: Element) -> float:
        i = self._id_of(element)
        if self._in[i]:
            return 0.0
        return float(self._deg[i] - 2.0 * self._Wx[i])

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        out = np.zeros(len(candidate_sets))
        for r, a in enumerate(candidate_sets):
            ids = self._member_ids(a)
            b = ids[~self._in[ids]]
            if len(b):
                external = float((self._deg[b] - 2.0 * self._Wx[b]).sum())
                out[r] = external - self._kernel.internal_weight(b)
        return out

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        members = [self._member_ids(a) for a in candidate_sets]
        batch = PreparedBatch(self, candidate_sets)
        singleton = all(len(m) <= 1 for m in members)
        flat = np.array([m[0] if len(m) else 0 for m in members], dtype=np.intp)
        empty = np.array([len(m) == 0 for m in members], dtype=bool)

        def gains(indices, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            if singleton:
                ids = flat[idx]
                out = (self._deg[ids] - 2.0 * self._Wx[ids]) * ~self._in[ids]
                out[empty[idx]] = 0.0
                return out
            return self.set_gains([batch.sets[i] for i in idx])

        batch.gains = gains  # type: ignore[method-assign]
        return batch


class CutEvaluator(_CutEvaluatorBase):
    """Dense-adjacency cut backend: ``Wx`` grows by full row additions.

    For the symmetric weighted adjacency ``W`` and selection indicator
    ``x``, ``F(S) = xᵀW(1-x)`` and a fresh vertex's marginal is
    ``deg(v) - 2 (Wx)_v`` — so a batch of singleton candidates is one
    fancy-indexing pass.  Adding ``v`` costs one O(n) row addition.
    """

    def __init__(self, fn, kernel: _CutKernel, selection: Iterable[Element] = ()):
        kernel.ensure_dense()
        super().__init__(fn, kernel, selection)

    def _add_id(self, i: int) -> None:
        self._value += float(self._deg[i] - 2.0 * self._Wx[i])
        self._in[i] = True
        self._Wx += self._kernel.W[i]


class SparseCutEvaluator(_CutEvaluatorBase):
    """CSR cut backend: ``Wx`` grows by scatter-adds over neighbours.

    Adding ``v`` costs O(deg(v)) instead of O(n), and no ``n × n``
    array is ever built — the backend for million-vertex graphs.  The
    scatter adds the same addends at the same positions as the dense
    row addition (everywhere else the row is zero), so ``Wx`` — and
    every gain derived from it — matches the dense backend bit for bit.
    """

    def _add_id(self, i: int) -> None:
        self._value += float(self._deg[i] - 2.0 * self._Wx[i])
        self._in[i] = True
        cols, data = self._kernel.neighbours(i)
        self._Wx[cols] += data


# ---------------------------------------------------------------------------
# (budget-)additive utilities (value vectors / prefix totals)
# ---------------------------------------------------------------------------


class AdditiveEvaluator(_KernelEvaluator):
    """Modular utilities: a candidate's marginal is just its value.

    The degenerate-but-hot base case (the multiple-choice secretary
    benchmark and the knapsack density greedy): gains are a fancy-index
    of the value vector, masked to elements not yet selected; the
    budget-additive variant truncates against the running total.  The
    value vector is already O(n), so this family needs no separate
    sparse storage — ``backend="sparse"`` resolves here too.

    ``modular`` is ``True`` for the uncapped case: marginals never
    change as the selection grows, which lets consumers (the knapsack
    density greedy) replace per-round re-scoring with one sort.
    """

    def __init__(self, fn, elements: Sequence[Element], values: np.ndarray,
                 cap: Optional[float] = None, selection: Iterable[Element] = (),
                 *, positional: bool = False):
        self._values = values
        self._cap = cap
        self.modular = cap is None
        super().__init__(fn, elements, selection, positional=positional)

    def gain1(self, element: Element) -> float:
        i = self._id_of(element)
        raw = 0.0 if self._in[i] else float(self._values[i])
        if self._cap is None:
            return raw
        return min(self._cap, self._total + raw) - min(self._cap, self._total)

    def _init_state(self) -> None:
        self._in = np.zeros(len(self._elements), dtype=bool)
        self._total = 0.0

    def _truncate(self, totals):
        if self._cap is None:
            return totals
        return np.minimum(self._cap, totals)

    def _gain_ids(self, ids: np.ndarray) -> np.ndarray:
        raw = self._values[ids] * ~self._in[ids]
        if self._cap is None:
            return raw
        return np.minimum(self._cap, self._total + raw) - min(self._cap, self._total)

    def _add_id(self, i: int) -> None:
        self._total += float(self._values[i])
        self._in[i] = True
        self._value = self._total if self._cap is None else min(self._cap, self._total)

    def set_gains(self, candidate_sets: Sequence[Iterable[Element]]) -> np.ndarray:
        values, inS = self._values, self._in
        raw = np.zeros(len(candidate_sets))
        for r, a in enumerate(candidate_sets):
            ids = np.fromiter((self._id_of(e) for e in a), dtype=np.intp)
            if len(ids):
                raw[r] = float((values[ids] * ~inS[ids]).sum())
        if self._cap is None:
            return raw
        return np.minimum(self._cap, self._total + raw) - min(self._cap, self._total)

    def prepare(self, candidate_sets: Sequence[Iterable[Element]]) -> PreparedBatch:
        members: List[np.ndarray] = [
            np.fromiter((self._id_of(e) for e in a), dtype=np.intp)
            for a in candidate_sets
        ]
        lens = np.array([len(m) for m in members], dtype=np.int64)
        flat = np.concatenate(members) if lens.sum() else np.empty(0, np.intp)
        m = len(candidate_sets)
        totals = _row_sums(self._values[flat], lens) if len(flat) else np.zeros(m)
        batch = PreparedBatch(self, candidate_sets)

        def gains(indices, self=self):
            idx = np.asarray(list(indices), dtype=np.intp)
            # Static per-set sums minus the already-selected overlap.
            # Small requests (a lazy greedy re-scoring one candidate)
            # pay only for their own members via a python loop; larger
            # requests gather just the requested sets' members and
            # bincount them — either way the work is O(requested
            # members), never O(ground set), and both branches
            # accumulate sequentially in member order so they return
            # bit-identical floats.
            values, inS = self._values, self._in
            if len(idx) <= 8:
                raw = np.empty(len(idx))
                for pos, r in enumerate(idx):
                    overlap = 0.0
                    for i in members[r].tolist():
                        if inS[i]:
                            overlap += float(values[i])
                    raw[pos] = totals[r] - overlap
            else:
                req = [members[r] for r in idx]
                req_lens = np.array([len(m_) for m_ in req], dtype=np.int64)
                req_flat = (
                    np.concatenate(req) if req_lens.sum() else np.empty(0, np.intp)
                )
                overlap = _row_sums(values[req_flat] * inS[req_flat], req_lens)
                raw = totals[idx] - overlap
            if self._cap is None:
                return raw
            return np.minimum(self._cap, self._total + raw) - min(self._cap, self._total)

        batch.gains = gains  # type: ignore[method-assign]
        return batch
