"""Concrete submodular (and deliberately non-submodular) set functions.

These are the utility families the paper cites as motivating special
cases of Definition 1: Set-Cover / Max-Cover style coverage functions
[33, 43], weighted coverage, matroid rank functions [15], graph cut
functions (the canonical *non-monotone* submodular family used by the
non-monotone secretary experiments), facility location, and the additive
/ budget-additive utilities of the classical multiple-choice secretary
problem [36].  ``MaxValueFunction`` and ``MinValueFunction`` model the
two aggregate objectives discussed in the conclusions (Section 3.6) —
note ``min`` is *not* submodular, which the tests assert.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

import numpy as np

from repro.core.submodular import Element, SetFunction

__all__ = [
    "AdditiveFunction",
    "BudgetAdditiveFunction",
    "CoverageFunction",
    "WeightedCoverageFunction",
    "CutFunction",
    "FacilityLocationFunction",
    "MatroidRankFunction",
    "MaxValueFunction",
    "MinValueFunction",
]


class CoverageFunction(SetFunction):
    """``F(S) = | union of the item sets chosen by S |``.

    *covers* maps each ground element (e.g. a candidate interval, a
    secretary) to the set of universe items it covers.  Monotone
    submodular; with unit costs the budgeted greedy on this function is
    exactly the classical greedy Set-Cover algorithm, which Lemma 2.1.2
    generalises.
    """

    def __init__(self, covers: Mapping[Element, Iterable[Hashable]]):
        self._covers: Dict[Element, FrozenSet[Hashable]] = {
            k: frozenset(v) for k, v in covers.items()
        }
        self._ground = frozenset(self._covers)
        self._universe: FrozenSet[Hashable] | None = None
        self._kernel = None

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        return {
            "kind": "coverage",
            "covers": {repr(k): sorted(map(repr, v)) for k, v in self._covers.items()},
        }

    @property
    def universe(self) -> FrozenSet[Hashable]:
        """All items coverable by the full ground set (computed once).

        The union is cached — Set-Cover style consumers read this on
        every greedy round, and ``_covers`` is immutable after
        construction, so re-unioning per access was pure waste.
        """
        if self._universe is None:
            out: set = set()
            for s in self._covers.values():
                out |= s
            self._universe = frozenset(out)
        return self._universe

    def _coverage_kernel(self):
        from repro.core.kernels import _CoverageKernel

        if self._kernel is None:
            self._kernel = _CoverageKernel(self._covers)
        return self._kernel

    def fast_evaluator(self):
        """Packed-bitset popcount kernel (see :mod:`repro.core.kernels`)."""
        from repro.core.kernels import CoverageEvaluator

        return CoverageEvaluator(self, self._coverage_kernel())

    def covered(self, subset: FrozenSet[Element]) -> FrozenSet[Hashable]:
        out: set = set()
        for e in subset:
            out |= self._covers[e]
        return frozenset(out)

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(len(self.covered(subset)))


class WeightedCoverageFunction(CoverageFunction):
    """Coverage where each universe item carries a non-negative weight.

    ``F(S) = sum of weights of items covered by S`` — still monotone
    submodular.  Items missing from *weights* default to weight 1.
    """

    def __init__(
        self,
        covers: Mapping[Element, Iterable[Hashable]],
        weights: Mapping[Hashable, float],
    ):
        super().__init__(covers)
        self._weights = {k: float(v) for k, v in weights.items()}
        bad = [k for k, v in self._weights.items() if v < 0]
        if bad:
            raise ValueError(f"negative item weights not allowed: {bad[:3]}")

    def value(self, subset: FrozenSet[Element]) -> float:
        # fsum: exactly-rounded, so the value cannot depend on the set's
        # (hash-randomised) iteration order — oracles must be deterministic.
        return math.fsum(self._weights.get(i, 1.0) for i in self.covered(subset))

    def _coverage_kernel(self):
        from repro.core.kernels import _CoverageKernel

        if self._kernel is None:
            self._kernel = _CoverageKernel(self._covers, self._weights)
        return self._kernel

    def fast_evaluator(self):
        """Float incidence-matrix kernel against the uncovered weights."""
        from repro.core.kernels import WeightedCoverageEvaluator

        return WeightedCoverageEvaluator(self, self._coverage_kernel())


class AdditiveFunction(SetFunction):
    """Modular utility ``F(S) = sum of per-element values``.

    The multiple-choice secretary objective of Kleinberg [36]; the
    degenerate-but-important base case of submodularity.
    """

    def __init__(self, values: Mapping[Element, float]):
        self._values = {k: float(v) for k, v in values.items()}
        self._ground = frozenset(self._values)
        self._kernel = None

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        # fsum: exactly-rounded => independent of set iteration order.
        return math.fsum(self._values[e] for e in subset)

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        return {
            "kind": "additive",
            "values": {repr(k): v for k, v in self._values.items()},
        }

    def _additive_kernel(self):
        # Built once per function: the sorted element order and the
        # aligned value vector are selection-independent.
        if self._kernel is None:
            elements = sorted(self._values, key=repr)
            values = np.array([self._values[e] for e in elements], dtype=float)
            self._kernel = (elements, values)
        return self._kernel

    def fast_evaluator(self):
        """Value-vector kernel: a fresh element's marginal is its value."""
        from repro.core.kernels import AdditiveEvaluator

        elements, values = self._additive_kernel()
        return AdditiveEvaluator(self, elements, values)


class BudgetAdditiveFunction(AdditiveFunction):
    """``F(S) = min(cap, sum of values)`` — monotone submodular.

    The standard "budget-additive" utility from combinatorial auctions;
    exercises the truncation path of the greedy.
    """

    def __init__(self, values: Mapping[Element, float], cap: float):
        super().__init__(values)
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self.cap = float(cap)

    def value(self, subset: FrozenSet[Element]) -> float:
        return min(self.cap, super().value(subset))

    def fast_evaluator(self):
        """Additive kernel truncated at ``cap`` (still one fancy-index)."""
        from repro.core.kernels import AdditiveEvaluator

        elements, values = self._additive_kernel()
        return AdditiveEvaluator(self, elements, values, cap=self.cap)


class CutFunction(SetFunction):
    """Undirected weighted cut ``F(S) = total weight of edges leaving S``.

    The canonical *non-monotone* submodular function (Max-Cut family
    [25]); drives Algorithm 2's experiments.  Edges are given as
    ``(u, v, weight)`` triples over the ground set of vertices.
    """

    def __init__(self, vertices: Iterable[Element], edges: Iterable[Tuple[Element, Element, float]]):
        self._ground = frozenset(vertices)
        self._kernel = None
        self._edges: list[Tuple[Element, Element, float]] = []
        for u, v, w in edges:
            if u not in self._ground or v not in self._ground:
                raise ValueError(f"edge ({u!r}, {v!r}) uses unknown vertex")
            if w < 0:
                raise ValueError("cut functions require non-negative edge weights")
            if u != v:
                self._edges.append((u, v, float(w)))

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(sum(w for u, v, w in self._edges if (u in subset) != (v in subset)))

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        edges = sorted(
            sorted([repr(u), repr(v)]) + [w] for u, v, w in self._edges
        )
        return {"kind": "cut", "vertices": sorted(map(repr, self._ground)), "edges": edges}

    def fast_evaluator(self):
        """Dense-adjacency kernel with a maintained ``W @ x`` product."""
        from repro.core.kernels import CutEvaluator

        if self._kernel is None:
            # The O(V^2) adjacency build is selection-independent; pay
            # it once per function, not once per evaluator.
            vertices = sorted(self._ground, key=repr)
            index = {v: i for i, v in enumerate(vertices)}
            W = np.zeros((len(vertices), len(vertices)))
            for u, v, w in self._edges:
                i, j = index[u], index[v]
                W[i, j] += w
                W[j, i] += w
            self._kernel = (vertices, W)
        vertices, W = self._kernel
        return CutEvaluator(self, vertices, W)


class FacilityLocationFunction(SetFunction):
    """``F(S) = sum over clients of max benefit from an open facility in S``.

    The uncapacitated facility-location utility [2, 11, 12].  *benefit*
    is a (clients x facilities) non-negative matrix; opening facility set
    S serves each client by its best open facility.  Monotone submodular.
    """

    def __init__(self, facilities: Iterable[Element], benefit: np.ndarray):
        self._facilities = list(facilities)
        self._index = {f: i for i, f in enumerate(self._facilities)}
        mat = np.asarray(benefit, dtype=float)
        if mat.ndim != 2 or mat.shape[1] != len(self._facilities):
            raise ValueError(
                f"benefit must be (clients x {len(self._facilities)}) 2-D, got {mat.shape}"
            )
        if (mat < 0).any():
            raise ValueError("facility benefits must be non-negative")
        self._benefit = mat
        self._ground = frozenset(self._facilities)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        if not subset:
            return 0.0
        cols = [self._index[f] for f in subset]
        # Vectorised best-facility-per-client reduction; this is the hot
        # call in secretary sweeps, hence numpy instead of a python loop.
        return float(self._benefit[:, cols].max(axis=1).sum())

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        return {
            "kind": "facility",
            "facilities": [repr(f) for f in self._facilities],
            "benefit": self._benefit.tolist(),
        }

    def fast_evaluator(self):
        """Running per-client best-benefit kernel."""
        from repro.core.kernels import FacilityLocationEvaluator

        return FacilityLocationEvaluator(self, self._facilities, self._benefit)


class MatroidRankFunction(SetFunction):
    """Rank of a matroid as a set function — monotone submodular [15].

    Accepts any object following the :class:`repro.matroids.base.Matroid`
    protocol (an ``is_independent``/``rank``/``ground_set`` trio).
    """

    def __init__(self, matroid) -> None:
        self._matroid = matroid

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return frozenset(self._matroid.ground_set)

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(self._matroid.rank(subset))


class MaxValueFunction(SetFunction):
    """``F(S) = max of per-element values`` (0 on the empty set).

    The classical best-choice secretary objective [22, 23]; monotone
    submodular.
    """

    def __init__(self, values: Mapping[Element, float]):
        self._values = {k: float(v) for k, v in values.items()}
        self._ground = frozenset(self._values)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return max((self._values[e] for e in subset), default=0.0)


class MinValueFunction(SetFunction):
    """``F(S) = min of per-element values`` — the Section 3.6 bottleneck.

    *Not* submodular (the tests prove it with a witness); included so the
    bottleneck secretary experiment can use the same oracle machinery.
    The empty set is assigned 0, matching "no group hired, no speed".
    """

    def __init__(self, values: Mapping[Element, float]):
        self._values = {k: float(v) for k, v in values.items()}
        self._ground = frozenset(self._values)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return min((self._values[e] for e in subset), default=0.0)
