"""Concrete submodular (and deliberately non-submodular) set functions.

These are the utility families the paper cites as motivating special
cases of Definition 1: Set-Cover / Max-Cover style coverage functions
[33, 43], weighted coverage, matroid rank functions [15], graph cut
functions (the canonical *non-monotone* submodular family used by the
non-monotone secretary experiments), facility location, and the additive
/ budget-additive utilities of the classical multiple-choice secretary
problem [36].  ``MaxValueFunction`` and ``MinValueFunction`` model the
two aggregate objectives discussed in the conclusions (Section 3.6) —
note ``min`` is *not* submodular, which the tests assert.

The coverage, cut, and additive families have two constructors: the
mapping-based ``__init__`` (hashable elements, python containers — the
right interface at test/experiment scale) and an array-based
``from_arrays`` for million-element instances, where elements are the
integers ``0..n-1``, the instance lives in CSR/COO numpy arrays, and
nothing O(ground set) in python objects is ever built eagerly — the
naive ``value`` path reads the arrays through lazy mapping views, and
``ground_set`` materializes only if something actually asks for it.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.core.submodular import Element, SetFunction

__all__ = [
    "AdditiveFunction",
    "BudgetAdditiveFunction",
    "CoverageFunction",
    "WeightedCoverageFunction",
    "CutFunction",
    "FacilityLocationFunction",
    "MatroidRankFunction",
    "MaxValueFunction",
    "MinValueFunction",
]


def _array_digest(*arrays: np.ndarray) -> str:
    """Stable content hash of numpy arrays (fingerprint payloads)."""
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


class _CsrCovers(Mapping):
    """Lazy ``{element id -> frozenset(items)}`` view of a CSR incidence.

    Backs the naive ``value``/``covered`` path of array-built coverage
    functions: each row materializes as a frozenset only when somebody
    actually indexes it, so holding a 10^6-row instance costs the CSR
    arrays and nothing more.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self._indptr = indptr
        self._indices = indices

    def __getitem__(self, i) -> FrozenSet:
        i = int(i)
        if not 0 <= i < len(self._indptr) - 1:
            raise KeyError(i)
        return frozenset(self._indices[self._indptr[i]:self._indptr[i + 1]].tolist())

    def __iter__(self):
        return iter(range(len(self._indptr) - 1))

    def __len__(self) -> int:
        return len(self._indptr) - 1


class _ArrayWeights(Mapping):
    """Lazy ``{item id -> weight}`` view of a weight vector."""

    def __init__(self, weights: np.ndarray):
        self._weights = weights

    def get(self, key, default=None):
        try:
            k = int(key)
        except (TypeError, ValueError):
            return default
        if 0 <= k < len(self._weights):
            return float(self._weights[k])
        return default

    def __getitem__(self, key):
        out = self.get(key)
        if out is None:
            raise KeyError(key)
        return out

    def __iter__(self):
        return iter(range(len(self._weights)))

    def __len__(self) -> int:
        return len(self._weights)


class _LazyEdges:
    """Lazy triple view of COO edge arrays for the naive cut path."""

    def __init__(self, u: np.ndarray, v: np.ndarray, w: np.ndarray):
        self._u, self._v, self._w = u, v, w

    def __iter__(self):
        return zip(self._u.tolist(), self._v.tolist(), self._w.tolist())

    def __len__(self) -> int:
        return len(self._u)


class CoverageFunction(SetFunction):
    """``F(S) = | union of the item sets chosen by S |``.

    *covers* maps each ground element (e.g. a candidate interval, a
    secretary) to the set of universe items it covers.  Monotone
    submodular; with unit costs the budgeted greedy on this function is
    exactly the classical greedy Set-Cover algorithm, which Lemma 2.1.2
    generalises.
    """

    def __init__(self, covers: Mapping[Element, Iterable[Hashable]]):
        self._covers: Mapping[Element, FrozenSet[Hashable]] = {
            k: frozenset(v) for k, v in covers.items()
        }
        self._ground: FrozenSet[Element] | None = frozenset(self._covers)
        self._universe: FrozenSet[Hashable] | None = None
        self._kernel = None
        self._positional = False

    @classmethod
    def from_arrays(
        cls, indptr, indices, *, n_items: Optional[int] = None
    ) -> "CoverageFunction":
        """Build from a CSR incidence over integer elements/items.

        Row ``i`` of ``(indptr, indices)`` lists the item ids covered by
        element ``i``; rows are canonicalized (sorted, deduplicated) on
        kernel construction.  Elements are ``0..n-1``, items
        ``0..n_items-1`` (default: ``max(indices) + 1``).  The instance
        stays in its arrays — no per-element python sets are built until
        the naive path asks for them.
        """
        from repro.core.kernels import _CoverageKernel

        self = cls.__new__(cls)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.intp)
        if n_items is None:
            n_items = int(indices.max()) + 1 if len(indices) else 0
        self._kernel = _CoverageKernel.from_csr(indptr, indices, int(n_items))
        self._covers = _CsrCovers(self._kernel.indptr, self._kernel.indices)
        self._ground = None
        self._universe = None
        self._positional = True
        return self

    @property
    def ground_set(self) -> FrozenSet[Element]:
        if self._ground is None:
            self._ground = frozenset(range(len(self._covers)))
        return self._ground

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        if self._positional:
            k = self._kernel
            return {
                "kind": "coverage_csr",
                "n": len(k.indptr) - 1,
                "n_items": k.n_items,
                "digest": _array_digest(k.indptr, k.indices),
            }
        return {
            "kind": "coverage",
            "covers": {repr(k): sorted(map(repr, v)) for k, v in self._covers.items()},
        }

    @property
    def universe(self) -> FrozenSet[Hashable]:
        """All items coverable by the full ground set (computed once).

        The union is cached — Set-Cover style consumers read this on
        every greedy round, and ``_covers`` is immutable after
        construction, so re-unioning per access was pure waste.
        """
        if self._universe is None:
            if self._positional:
                self._universe = frozenset(
                    np.unique(self._kernel.indices).tolist()
                )
            else:
                out: set = set()
                for s in self._covers.values():
                    out |= s
                self._universe = frozenset(out)
        return self._universe

    def _coverage_kernel(self):
        from repro.core.kernels import _CoverageKernel

        if self._kernel is None:
            self._kernel = _CoverageKernel(self._covers)
        return self._kernel

    def fast_evaluator(self, backend: Optional[str] = None):
        """Coverage kernel: packed-bitset popcounts or CSR bincounts.

        ``backend`` picks dense vs sparse (``None``/``"auto"`` applies
        the size/density rule in :func:`repro.core.kernels
        .resolve_backend`); both return bit-identical marginals.
        ``"naive"`` opts out of kernels entirely.
        """
        from repro.core.kernels import (
            CoverageEvaluator,
            SparseCoverageEvaluator,
            resolve_backend,
        )

        backend = self.resolve_backend_arg(backend)
        if backend == "naive":
            return None
        kernel = self._coverage_kernel()
        if resolve_backend(backend, cells=kernel.cells, nnz=kernel.nnz) == "sparse":
            return SparseCoverageEvaluator(self, kernel)
        return CoverageEvaluator(self, kernel)

    def covered(self, subset: FrozenSet[Element]) -> FrozenSet[Hashable]:
        out: set = set()
        for e in subset:
            out |= self._covers[e]
        return frozenset(out)

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(len(self.covered(subset)))


class WeightedCoverageFunction(CoverageFunction):
    """Coverage where each universe item carries a non-negative weight.

    ``F(S) = sum of weights of items covered by S`` — still monotone
    submodular.  Items missing from *weights* default to weight 1.
    """

    def __init__(
        self,
        covers: Mapping[Element, Iterable[Hashable]],
        weights: Mapping[Hashable, float],
    ):
        super().__init__(covers)
        self._weights = {k: float(v) for k, v in weights.items()}
        bad = [k for k, v in self._weights.items() if v < 0]
        if bad:
            raise ValueError(f"negative item weights not allowed: {bad[:3]}")

    @classmethod
    def from_arrays(
        cls, indptr, indices, weights, *, n_items: Optional[int] = None
    ) -> "WeightedCoverageFunction":
        """CSR incidence + aligned item-weight vector (see base class)."""
        from repro.core.kernels import _CoverageKernel

        weights = np.asarray(weights, dtype=float)
        if len(weights) and float(weights.min()) < 0:
            raise ValueError("negative item weights not allowed")
        self = cls.__new__(cls)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.intp)
        if n_items is None:
            n_items = len(weights)
        self._kernel = _CoverageKernel.from_csr(indptr, indices, int(n_items), weights)
        self._covers = _CsrCovers(self._kernel.indptr, self._kernel.indices)
        self._weights = _ArrayWeights(weights)
        self._ground = None
        self._universe = None
        self._positional = True
        return self

    def value(self, subset: FrozenSet[Element]) -> float:
        # fsum: exactly-rounded, so the value cannot depend on the set's
        # (hash-randomised) iteration order — oracles must be deterministic.
        return math.fsum(self._weights.get(i, 1.0) for i in self.covered(subset))

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this).

        The mapping-built payload is unchanged from the base class
        (engine fingerprints hash it; committed bench cells pin those
        fingerprints) — only array-built instances gain a weights
        digest.
        """
        payload = super().canonical_payload()
        if self._positional:
            payload["kind"] = "weighted_coverage_csr"
            payload["weights_digest"] = _array_digest(self._kernel.weights)
        return payload

    def _coverage_kernel(self):
        from repro.core.kernels import _CoverageKernel

        if self._kernel is None:
            self._kernel = _CoverageKernel(self._covers, self._weights)
        return self._kernel

    def fast_evaluator(self, backend: Optional[str] = None):
        """CSR gather kernel against the active item-weight vector.

        One implementation serves both backend names — the weighted
        family's arithmetic is CSR-native, so ``dense``/``sparse`` are
        trivially bit-identical here.
        """
        from repro.core.kernels import WeightedCoverageEvaluator

        backend = self.resolve_backend_arg(backend)
        if backend == "naive":
            return None
        return WeightedCoverageEvaluator(self, self._coverage_kernel())


class AdditiveFunction(SetFunction):
    """Modular utility ``F(S) = sum of per-element values``.

    The multiple-choice secretary objective of Kleinberg [36]; the
    degenerate-but-important base case of submodularity.
    """

    def __init__(self, values: Mapping[Element, float]):
        self._values = {k: float(v) for k, v in values.items()}
        self._ground: FrozenSet[Element] | None = frozenset(self._values)
        self._kernel = None
        self._positional = False

    @classmethod
    def from_arrays(cls, values) -> "AdditiveFunction":
        """Value-vector instance over integer elements ``0..n-1``."""
        self = cls.__new__(cls)
        self._values = np.asarray(values, dtype=float)
        self._ground = None
        self._kernel = None
        self._positional = True
        return self

    @property
    def ground_set(self) -> FrozenSet[Element]:
        if self._ground is None:
            self._ground = frozenset(range(len(self._values)))
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        # fsum: exactly-rounded => independent of set iteration order.
        return math.fsum(self._values[e] for e in subset)

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        if self._positional:
            return {
                "kind": "additive_array",
                "n": len(self._values),
                "digest": _array_digest(self._values),
            }
        return {
            "kind": "additive",
            "values": {repr(k): v for k, v in self._values.items()},
        }

    def _additive_kernel(self):
        # Built once per function: the canonical element order and the
        # aligned value vector are selection-independent.  Array-built
        # instances are already in kernel form (positional order).
        if self._kernel is None:
            if self._positional:
                self._kernel = (range(len(self._values)), self._values)
            else:
                elements = sorted(self._values, key=repr)
                values = np.array([self._values[e] for e in elements], dtype=float)
                self._kernel = (elements, values)
        return self._kernel

    def fast_evaluator(self, backend: Optional[str] = None):
        """Value-vector kernel: a fresh element's marginal is its value.

        The vector is already O(n); ``dense`` and ``sparse`` both
        resolve to the same evaluator.
        """
        from repro.core.kernels import AdditiveEvaluator

        backend = self.resolve_backend_arg(backend)
        if backend == "naive":
            return None
        elements, values = self._additive_kernel()
        return AdditiveEvaluator(self, elements, values, positional=self._positional)


class BudgetAdditiveFunction(AdditiveFunction):
    """``F(S) = min(cap, sum of values)`` — monotone submodular.

    The standard "budget-additive" utility from combinatorial auctions;
    exercises the truncation path of the greedy.
    """

    def __init__(self, values: Mapping[Element, float], cap: float):
        super().__init__(values)
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self.cap = float(cap)

    @classmethod
    def from_arrays(cls, values, cap: float = 0.0) -> "BudgetAdditiveFunction":
        """Value-vector instance truncated at *cap* (see base class)."""
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self = super().from_arrays(values)
        self.cap = float(cap)
        return self

    def value(self, subset: FrozenSet[Element]) -> float:
        return min(self.cap, super().value(subset))

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this).

        Mapping-built payloads stay byte-identical to the additive base
        (committed fingerprints pin them); only array-built instances
        record the cap alongside the value digest.
        """
        payload = super().canonical_payload()
        if self._positional:
            payload["cap"] = self.cap
        return payload

    def fast_evaluator(self, backend: Optional[str] = None):
        """Additive kernel truncated at ``cap`` (still one fancy-index)."""
        from repro.core.kernels import AdditiveEvaluator

        backend = self.resolve_backend_arg(backend)
        if backend == "naive":
            return None
        elements, values = self._additive_kernel()
        return AdditiveEvaluator(
            self, elements, values, cap=self.cap, positional=self._positional
        )


class CutFunction(SetFunction):
    """Undirected weighted cut ``F(S) = total weight of edges leaving S``.

    The canonical *non-monotone* submodular function (Max-Cut family
    [25]); drives Algorithm 2's experiments.  Edges are given as
    ``(u, v, weight)`` triples over the ground set of vertices.
    """

    def __init__(self, vertices: Iterable[Element], edges: Iterable[Tuple[Element, Element, float]]):
        self._ground: FrozenSet[Element] | None = frozenset(vertices)
        self._kernel = None
        self._positional = False
        self._n = len(self._ground)
        self._edges: list[Tuple[Element, Element, float]] = []
        for u, v, w in edges:
            if u not in self._ground or v not in self._ground:
                raise ValueError(f"edge ({u!r}, {v!r}) uses unknown vertex")
            if w < 0:
                raise ValueError("cut functions require non-negative edge weights")
            if u != v:
                self._edges.append((u, v, float(w)))

    @classmethod
    def from_arrays(cls, n: int, u, v, w) -> "CutFunction":
        """COO edge arrays over integer vertices ``0..n-1``.

        Self-loops are dropped (they never cross a cut); parallel edges
        are legal and consolidate by weight sum in the kernel.  The
        triples stay in their arrays — the naive ``value`` path iterates
        them through a lazy view.
        """
        u = np.asarray(u, dtype=np.intp)
        v = np.asarray(v, dtype=np.intp)
        w = np.asarray(w, dtype=float)
        if not (len(u) == len(v) == len(w)):
            raise ValueError("edge arrays must have equal length")
        if len(u):
            if int(u.min()) < 0 or int(v.min()) < 0 or int(max(u.max(), v.max())) >= n:
                raise ValueError("edge endpoints must lie in 0..n-1")
            if float(w.min()) < 0:
                raise ValueError("cut functions require non-negative edge weights")
        keep = u != v
        if not keep.all():
            u, v, w = u[keep], v[keep], w[keep]
        self = cls.__new__(cls)
        self._ground = None
        self._kernel = None
        self._positional = True
        self._n = int(n)
        self._edges = _LazyEdges(u, v, w)
        return self

    @property
    def ground_set(self) -> FrozenSet[Element]:
        if self._ground is None:
            self._ground = frozenset(range(self._n))
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(sum(w for u, v, w in self._edges if (u in subset) != (v in subset)))

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        if self._positional:
            e = self._edges
            return {
                "kind": "cut_coo",
                "n": self._n,
                "digest": _array_digest(e._u, e._v, e._w),
            }
        edges = sorted(
            sorted([repr(u), repr(v)]) + [w] for u, v, w in self._edges
        )
        return {"kind": "cut", "vertices": sorted(map(repr, self._ground)), "edges": edges}

    def _cut_kernel(self):
        from repro.core.kernels import _CutKernel

        if self._kernel is None:
            if self._positional:
                e = self._edges
                self._kernel = _CutKernel(
                    range(self._n), (e._u, e._v, e._w), positional=True
                )
            else:
                vertices = sorted(self._ground, key=repr)
                self._kernel = _CutKernel(vertices, self._edges)
        return self._kernel

    def fast_evaluator(self, backend: Optional[str] = None):
        """Cut kernel with a maintained ``W @ x`` product.

        Dense keeps the symmetric adjacency matrix (O(n) row additions
        per pick); sparse keeps CSR neighbour lists (O(deg) scatter
        adds).  Both read the same CSR-derived degree vector and update
        ``W @ x`` with identical addends, so their marginals are
        bit-identical.
        """
        from repro.core.kernels import CutEvaluator, SparseCutEvaluator, resolve_backend

        backend = self.resolve_backend_arg(backend)
        if backend == "naive":
            return None
        kernel = self._cut_kernel()
        if resolve_backend(backend, cells=kernel.cells, nnz=kernel.nnz) == "sparse":
            return SparseCutEvaluator(self, kernel)
        return CutEvaluator(self, kernel)


class FacilityLocationFunction(SetFunction):
    """``F(S) = sum over clients of max benefit from an open facility in S``.

    The uncapacitated facility-location utility [2, 11, 12].  *benefit*
    is a (clients x facilities) non-negative matrix; opening facility set
    S serves each client by its best open facility.  Monotone submodular.
    """

    def __init__(self, facilities: Iterable[Element], benefit: np.ndarray):
        self._facilities = list(facilities)
        self._index = {f: i for i, f in enumerate(self._facilities)}
        mat = np.asarray(benefit, dtype=float)
        if mat.ndim != 2 or mat.shape[1] != len(self._facilities):
            raise ValueError(
                f"benefit must be (clients x {len(self._facilities)}) 2-D, got {mat.shape}"
            )
        if (mat < 0).any():
            raise ValueError("facility benefits must be non-negative")
        self._benefit = mat
        self._ground = frozenset(self._facilities)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        if not subset:
            return 0.0
        cols = [self._index[f] for f in subset]
        # Vectorised best-facility-per-client reduction; this is the hot
        # call in secretary sweeps, hence numpy instead of a python loop.
        return float(self._benefit[:, cols].max(axis=1).sum())

    def canonical_payload(self) -> Dict[str, object]:
        """JSON-able content description (engine fingerprints hash this)."""
        return {
            "kind": "facility",
            "facilities": [repr(f) for f in self._facilities],
            "benefit": self._benefit.tolist(),
        }

    def fast_evaluator(self, backend: Optional[str] = None):
        """Running per-client best-benefit kernel.

        The benefit matrix is inherently dense (clients × facilities),
        so both backend names resolve to the one evaluator.
        """
        from repro.core.kernels import FacilityLocationEvaluator

        backend = self.resolve_backend_arg(backend)
        if backend == "naive":
            return None
        return FacilityLocationEvaluator(self, self._facilities, self._benefit)


class MatroidRankFunction(SetFunction):
    """Rank of a matroid as a set function — monotone submodular [15].

    Accepts any object following the :class:`repro.matroids.base.Matroid`
    protocol (an ``is_independent``/``rank``/``ground_set`` trio).
    """

    def __init__(self, matroid) -> None:
        self._matroid = matroid

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return frozenset(self._matroid.ground_set)

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(self._matroid.rank(subset))


class MaxValueFunction(SetFunction):
    """``F(S) = max of per-element values`` (0 on the empty set).

    The classical best-choice secretary objective [22, 23]; monotone
    submodular.
    """

    def __init__(self, values: Mapping[Element, float]):
        self._values = {k: float(v) for k, v in values.items()}
        self._ground = frozenset(self._values)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return max((self._values[e] for e in subset), default=0.0)


class MinValueFunction(SetFunction):
    """``F(S) = min of per-element values`` — the Section 3.6 bottleneck.

    *Not* submodular (the tests prove it with a witness); included so the
    bottleneck secretary experiment can use the same oracle machinery.
    The empty set is assigned 0, matching "no group hired, no speed".
    """

    def __init__(self, values: Mapping[Element, float]):
        self._values = {k: float(v) for k, v in values.items()}
        self._ground = frozenset(self._values)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return min((self._values[e] for e in subset), default=0.0)
