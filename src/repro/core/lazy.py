"""Lazy (CELF-style) evaluation of the Lemma 2.1.2 greedy.

The plain greedy spends ``O(m)`` oracle calls per pick re-scoring every
candidate subset.  Because the truncated utility ``min(x, F)`` is
monotone submodular, each subset's marginal gain can only *shrink* as
the selection grows — so a gain computed in an earlier round is a valid
upper bound now.  Keeping candidates in a max-heap keyed by these stale
bounds and re-evaluating only the top element ("lazy evaluation",
Minoux 1978 / the CELF trick) yields the same greedy choices (up to
exact-ratio ties) at a fraction of the oracle cost.

This is the algorithmic optimization the HPC guides prioritise over
micro-tuning; the E12 ablation benchmark measures the saved calls.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Hashable, List

import numpy as np

from repro.core.budgeted import BudgetedInstance, _validate_parameters
from repro.core.trace import GreedyResult, GreedyStep
from repro.errors import InfeasibleError

__all__ = ["lazy_budgeted_greedy"]


def lazy_budgeted_greedy(
    instance: BudgetedInstance,
    target: float,
    epsilon: float,
    *,
    max_steps: int | None = None,
) -> GreedyResult:
    """Lazy-evaluation twin of :func:`repro.core.budgeted.budgeted_greedy`.

    Same contract and guarantee; only the candidate-scoring strategy
    differs.  Entries in the heap carry the round in which their gain was
    last computed; a popped entry that is stale gets re-scored against the
    current selection and pushed back, and an entry that is fresh is — by
    submodularity — the true argmax, so it is selected immediately.
    """
    _validate_parameters(target, epsilon)
    goal = (1.0 - epsilon) * target
    cap = float(target)
    evaluator = instance.utility.incremental_evaluator()
    # See budgeted_greedy: CachedOracle-style utilities expose a
    # fingerprint-memoised marginal_gain; score unions through it.
    # With a vectorized kernel (evaluator.fast) probes go through the
    # prepared candidate pool instead: same heap, same pick sequence,
    # each re-score O(candidate) instead of O(selection x instance).
    probe = getattr(instance.utility, "marginal_gain", None)
    utility = evaluator.current_value

    pool_keys: List[Hashable] = list(instance.subsets)
    batch = evaluator.prepare([instance.subsets[k] for k in pool_keys]) if evaluator.fast else None

    frozen_sel = frozenset()

    def union_value(selection_set: set, items: FrozenSet[Hashable]) -> float:
        # frozen_sel is refreshed once per pick round; per-candidate
        # re-freezing of the selection would dominate the probe cost.
        if probe is not None:
            return utility + probe(frozen_sel, items)
        return instance.utility.value(frozenset(selection_set | items))
    selection: set = set()
    chosen: List[Hashable] = []
    steps: List[GreedyStep] = []
    total_cost = 0.0
    limit = max_steps if max_steps is not None else len(instance.subsets) * 64

    def ratio_of(gain: float, cost: float) -> float:
        return math.inf if cost == 0 else gain / cost

    # Heap entries: (-ratio, -gain, tiebreak, key, round_scored).  The
    # tiebreak keeps heap comparisons away from arbitrary key types.
    heap: list = []
    order: Dict[Hashable, int] = {}
    if batch is not None:
        # One vectorized pass scores the whole pool for the initial heap.
        initial = np.minimum(cap, utility + batch.gains(range(len(pool_keys)))) - min(cap, utility)
        for i, key in enumerate(pool_keys):
            order[key] = i
            gain = float(initial[i])
            heap.append((-ratio_of(gain, instance.costs[key]), -gain, i, key, 0))
        heapq.heapify(heap)
    else:
        for i, (key, items) in enumerate(instance.subsets.items()):
            order[key] = i
            gain = min(cap, union_value(selection, items)) - min(cap, utility)
            heapq.heappush(heap, (-ratio_of(gain, instance.costs[key]), -gain, i, key, 0))

    round_no = 0
    while utility < goal - 1e-12:
        frozen_sel = frozenset(selection)
        if len(steps) >= limit:
            raise InfeasibleError(
                f"lazy greedy exceeded {limit} steps without reaching utility {goal:.6g}"
            )
        picked = None
        while heap:
            neg_ratio, neg_gain, tiebreak, key, scored = heapq.heappop(heap)
            if -neg_gain <= 1e-12:
                # Stale zero-gain bound can only shrink further; candidate
                # is permanently useless for the current selection path.
                if scored == round_no:
                    continue
            items = instance.subsets[key]
            if items <= selection:
                continue
            if scored == round_no:
                picked = (key, -neg_gain)
                break
            if batch is not None:
                raw = float(batch.gains([tiebreak])[0])
                gain = min(cap, utility + raw) - min(cap, utility)
            else:
                truncated = min(cap, union_value(selection, items))
                gain = truncated - min(cap, utility)
            heapq.heappush(
                heap,
                (-ratio_of(gain, instance.costs[key]), -gain, tiebreak, key, round_no),
            )
        if picked is None:
            raise InfeasibleError(
                f"no subset improves utility beyond {utility:.6g}; "
                f"target {target:.6g} is unreachable"
            )
        key, gain = picked
        if gain <= 1e-12:
            raise InfeasibleError(
                f"no subset improves utility beyond {utility:.6g}; "
                f"target {target:.6g} is unreachable"
            )
        selection |= instance.subsets[key]
        if batch is not None:
            evaluator.add_set(instance.subsets[key])
        utility = instance.utility.value(frozenset(selection))
        total_cost += instance.costs[key]
        chosen.append(key)
        steps.append(
            GreedyStep(
                index=key,
                cost=instance.costs[key],
                gain=gain,
                utility_after=utility,
                cost_after=total_cost,
            )
        )
        round_no += 1

    return GreedyResult(
        chosen=chosen,
        selection=frozenset(selection),
        utility=utility,
        cost=total_cost,
        target=target,
        epsilon=epsilon,
        steps=steps,
    )
