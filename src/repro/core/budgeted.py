"""Budgeted submodular maximization — the algorithm of Lemma 2.1.2.

Problem (Definition 1): given items ``U``, explicitly listed allowable
subsets ``S_1..S_m`` with arbitrary costs ``C_1..C_m`` (costs need *not*
be additive over items — that generality is what lets the scheduling
reduction price whole awake intervals), a monotone submodular utility
``F`` on ``U`` and a target ``x``: find a cheap collection whose union
has utility at least ``x``.

The greedy repeatedly picks the subset maximising

    (min(x, F(S ∪ S_i)) - F(S)) / C_i

until utility reaches ``(1 - eps) x``.  Lemma 2.1.2: if some collection
of cost ``B`` achieves utility ``x``, the greedy's cost is at most
``O(B log(1/eps))``.  Setting ``eps = 1/(n+1)`` for integer-valued
utilities upgrades this to exact coverage at ``O(B log n)`` — exactly
how Theorem 2.2.1 consumes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping

import numpy as np

from repro.core.submodular import Element, SetFunction
from repro.core.trace import GreedyResult, GreedyStep
from repro.errors import BudgetError, InfeasibleError, InvalidInstanceError

__all__ = ["BudgetedInstance", "budgeted_greedy"]


@dataclass(frozen=True)
class BudgetedInstance:
    """An instance of submodular maximization with budget constraints.

    Parameters
    ----------
    utility:
        Monotone submodular :class:`SetFunction` over the item universe.
    subsets:
        Mapping from a subset identifier to the frozenset of items the
        subset contributes (the paper's explicitly-given ``S_i``).
    costs:
        Mapping from subset identifier to its non-negative cost ``C_i``.
    """

    utility: SetFunction
    subsets: Mapping[Hashable, FrozenSet[Element]]
    costs: Mapping[Hashable, float]

    def __post_init__(self) -> None:
        missing = set(self.subsets) ^ set(self.costs)
        if missing:
            raise InvalidInstanceError(
                f"subsets and costs must share keys; mismatched: {sorted(map(repr, missing))[:5]}"
            )
        ground = self.utility.ground_set
        for key, items in self.subsets.items():
            stray = set(items) - set(ground)
            if stray:
                raise InvalidInstanceError(
                    f"subset {key!r} contains items outside the utility ground set: "
                    f"{sorted(map(repr, stray))[:5]}"
                )
        negative = [k for k, c in self.costs.items() if c < 0]
        if negative:
            raise InvalidInstanceError(f"negative costs: {sorted(map(repr, negative))[:5]}")

    @classmethod
    def from_items(
        cls,
        utility: SetFunction,
        item_costs: Mapping[Element, float],
    ) -> "BudgetedInstance":
        """Classical linear-cost special case: every subset is a singleton.

        This is the "all previous work" model the paper generalises; kept
        as a constructor because Set Cover / Max Cover instances arrive
        in this shape.
        """
        subsets = {item: frozenset({item}) for item in item_costs}
        return cls(utility=utility, subsets=dict(subsets), costs=dict(item_costs))

    def union_of(self, keys: Iterable[Hashable]) -> FrozenSet[Element]:
        out: set = set()
        for k in keys:
            out |= self.subsets[k]
        return frozenset(out)

    def cost_of(self, keys: Iterable[Hashable]) -> float:
        return float(sum(self.costs[k] for k in keys))


def _validate_parameters(target: float, epsilon: float) -> None:
    if target < 0:
        raise BudgetError(f"target utility must be non-negative, got {target}")
    if not (0.0 < epsilon < 1.0):
        raise BudgetError(f"epsilon must lie in (0, 1), got {epsilon}")


def _pick_best(gains: np.ndarray, costs: np.ndarray):
    """Vectorized twin of the scan's selection rule.

    Returns ``(local_index, gain, cost)`` of the first candidate
    maximising ``(gain/cost, gain)`` lexicographically among candidates
    with positive gain, or ``None`` — the same strict-inequality
    tie-breaking as the per-key python scan (first strictly better
    wins, so the earliest index among exact ties is kept).
    """
    live = np.flatnonzero(gains > 1e-12)
    if not len(live):
        return None
    g = gains[live]
    c = costs[live]
    with np.errstate(divide="ignore"):
        ratio = np.where(c == 0.0, math.inf, g / np.where(c == 0.0, 1.0, c))
    ties = np.flatnonzero(ratio == ratio.max())
    local = int(live[ties[int(np.argmax(g[ties]))]])
    return local, float(gains[local]), float(costs[local])


def budgeted_greedy(
    instance: BudgetedInstance,
    target: float,
    epsilon: float,
    *,
    max_steps: int | None = None,
) -> GreedyResult:
    """Run the Lemma 2.1.2 greedy to utility ``(1 - epsilon) * target``.

    Raises :class:`InfeasibleError` when no remaining subset has positive
    marginal gain before the goal is reached (then no collection achieves
    utility ``target``, by monotonicity).

    Notes
    -----
    This is the exhaustive implementation that re-scores all ``m``
    subsets every round.  When the utility exposes a vectorized kernel
    (:mod:`repro.core.kernels`), each round is one batched marginal pass
    over the surviving candidates; otherwise it is the original ``O(m)``
    oracle-calls-per-pick python scan.  The lazy-evaluation variant in
    :mod:`repro.core.lazy` is observably cheaper in oracle calls while
    keeping the same guarantee (selections can differ only on exact
    ratio ties); E12 quantifies the gap.
    """
    _validate_parameters(target, epsilon)
    goal = (1.0 - epsilon) * target
    cap = float(target)
    evaluator = instance.utility.incremental_evaluator()
    # Oracles exposing marginal_gain (CachedOracle) score unions as
    # utility + gain, memoised by (selection, items) fingerprint pair.
    probe = getattr(instance.utility, "marginal_gain", None)

    selection: set = set()
    # The evaluator's construction already evaluated F(empty) (counted
    # once on the naive path, exactly like the old explicit call).
    utility = evaluator.current_value
    if utility < 0:
        raise InvalidInstanceError("utility of the empty set must be non-negative")
    chosen: List[Hashable] = []
    steps: List[GreedyStep] = []
    total_cost = 0.0
    remaining: Dict[Hashable, FrozenSet[Element]] = dict(instance.subsets)
    limit = max_steps if max_steps is not None else len(instance.subsets) * 64

    # Kernel fast path: digest the candidate pool once, then score all
    # survivors per round in a single vectorized pass.
    pool_keys: List[Hashable] = []
    batch = None
    alive: List[int] = []
    pool_costs = None
    if evaluator.fast:
        pool_keys = list(instance.subsets)
        batch = evaluator.prepare([instance.subsets[k] for k in pool_keys])
        pool_costs = np.array([float(instance.costs[k]) for k in pool_keys])
        alive = list(range(len(pool_keys)))

    while utility < goal - 1e-12:
        if len(steps) >= limit:
            raise InfeasibleError(
                f"greedy exceeded {limit} steps without reaching utility {goal:.6g}"
            )
        best_key = None
        best_gain = 0.0
        if batch is not None:
            raw = batch.gains(alive)
            trunc = np.minimum(cap, utility + raw) - min(cap, utility)
            picked = _pick_best(trunc, pool_costs[alive])
            if picked is not None:
                local, best_gain, _ = picked
                best_key = pool_keys[alive[local]]
                del alive[local]
        else:
            best_ratio = 0.0
            frozen_sel = frozenset(selection) if probe is not None else None
            for key, items in remaining.items():
                if items <= selection:
                    continue
                if probe is not None:
                    union_value = utility + probe(frozen_sel, items)
                else:
                    union_value = instance.utility.value(frozenset(selection | items))
                truncated = min(cap, union_value)
                gain = truncated - min(cap, utility)
                if gain <= 1e-12:
                    continue
                cost = instance.costs[key]
                ratio = math.inf if cost == 0 else gain / cost
                if ratio > best_ratio or (ratio == best_ratio and gain > best_gain):
                    best_key, best_ratio, best_gain = key, ratio, gain
        if best_key is None:
            raise InfeasibleError(
                f"no subset improves utility beyond {utility:.6g}; "
                f"target {target:.6g} is unreachable"
            )
        items = remaining.pop(best_key)
        selection |= items
        if batch is not None:
            evaluator.add_set(items)
        utility = instance.utility.value(frozenset(selection))
        total_cost += instance.costs[best_key]
        chosen.append(best_key)
        steps.append(
            GreedyStep(
                index=best_key,
                cost=instance.costs[best_key],
                gain=best_gain,
                utility_after=utility,
                cost_after=total_cost,
            )
        )

    return GreedyResult(
        chosen=chosen,
        selection=frozenset(selection),
        utility=utility,
        cost=total_cost,
        target=target,
        epsilon=epsilon,
        steps=steps,
    )
