"""Set-function abstractions and structural checkers.

The paper manipulates utilities exclusively through value oracles
(Definition 1).  :class:`SetFunction` is that oracle: a callable from
finite sets of hashable elements to reals, with helpers for marginal
gains.  Concrete utilities live in :mod:`repro.core.functions` and
:mod:`repro.scheduling` (the matching utilities of Lemmas 2.2.2/2.3.2).

Two empirical checkers, :func:`check_submodular` and
:func:`check_monotone`, probe the lattice inequalities on random (or
exhaustive, for small ground sets) pairs; the property-based test suite
uses them to validate every utility the library ships — including the
matching functions whose submodularity is the paper's key structural
lemma.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import chain, combinations
from typing import Callable, FrozenSet, Hashable, Iterable, NamedTuple, Optional

import numpy as np

from repro.errors import NotSubmodularError
from repro.rng import as_generator

__all__ = [
    "SetFunction",
    "LambdaSetFunction",
    "TruncatedFunction",
    "RestrictedFunction",
    "SubsampledMarginals",
    "check_monotone",
    "check_submodular",
    "powerset",
]

Element = Hashable


class SubsampledMarginals(NamedTuple):
    """Result of an explicitly subsampled :meth:`SetFunction.batch_marginals`.

    *indices* are positions into the caller's candidate sequence (sorted
    ascending) that were actually scored; *gains* aligns with them.  The
    distinct return type is deliberate: callers cannot mistake a
    subsampled scan for an exact one.
    """

    indices: "np.ndarray"
    gains: "np.ndarray"


def _as_frozen(s: Iterable[Element]) -> FrozenSet[Element]:
    return s if isinstance(s, frozenset) else frozenset(s)


class SetFunction(ABC):
    """A real-valued function on subsets of a finite ground set.

    Subclasses implement :meth:`value`; everything else (marginals,
    call syntax, normalisation checks) is provided here.
    """

    @property
    @abstractmethod
    def ground_set(self) -> FrozenSet[Element]:
        """The universe the function is defined on."""

    @abstractmethod
    def value(self, subset: FrozenSet[Element]) -> float:
        """Evaluate the function on *subset* (a subset of the ground set)."""

    # -- conveniences -------------------------------------------------

    def __call__(self, subset: Iterable[Element]) -> float:
        return self.value(_as_frozen(subset))

    def marginal(self, subset: Iterable[Element], extra: Iterable[Element]) -> float:
        """Return ``F(subset | extra) - F(subset)``.

        *extra* may be a single-element iterable or a whole set; the gain
        of adding all of it at once is returned.
        """
        base = _as_frozen(subset)
        return self.value(base | _as_frozen(extra)) - self.value(base)

    def marginal_element(self, subset: Iterable[Element], element: Element) -> float:
        """Return ``F(subset + {element}) - F(subset)``."""
        base = _as_frozen(subset)
        return self.value(base | {element}) - self.value(base)

    def fast_evaluator(self, backend: Optional[str] = None):
        """A vectorized kernel evaluator, or ``None`` when there is none.

        Concrete families in :mod:`repro.core.functions` override this;
        oracle wrappers forward it (adding accounting / arrival checks).
        Kept separate from :meth:`incremental_evaluator` so probing for
        a kernel never constructs — or queries through — a throwaway
        naive evaluator.

        *backend* selects the kernel backend for families that have
        more than one (``"auto"``/``None``, ``"dense"``, ``"sparse"``,
        or ``"naive"`` to force the generic fallback); see
        :func:`repro.core.kernels.resolve_backend`.
        """
        return None

    def resolve_backend_arg(self, backend: Optional[str]) -> Optional[str]:
        """Apply the instance default when no explicit *backend* is given."""
        if backend is None:
            return getattr(self, "_default_backend", None)
        return backend

    def set_default_backend(self, backend: Optional[str]) -> None:
        """Pin this instance's kernel backend for calls that pass none.

        Workload builders use this to thread a sweep-level ``backend``
        parameter through to consumers that construct evaluators
        without one (engine adapters, the serving layer).  ``None``
        restores automatic selection.
        """
        from repro.core.kernels import KERNEL_BACKENDS

        if backend is not None and backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
            )
        self._default_backend = backend

    def incremental_evaluator(self, backend: Optional[str] = None) -> "IncrementalEvaluator":
        """A stateful incremental view of this function (see kernels).

        Returns the family's vectorized kernel when one exists
        (``fast = True``), else the generic (naive) fallback, which
        answers every query through :meth:`value` — correct for any
        oracle, including user-supplied :class:`LambdaSetFunction`
        wrappers.  Consumer loops check ``fast`` before switching to
        batched scoring.  ``backend="naive"`` forces the fallback.
        """
        from repro.core.kernels import IncrementalEvaluator

        backend = self.resolve_backend_arg(backend)
        fast = None if backend == "naive" else self.fast_evaluator(backend)
        return fast if fast is not None else IncrementalEvaluator(self)

    def batch_marginals(
        self,
        subset: Iterable[Element],
        candidates,
        *,
        backend: Optional[str] = None,
        subsample: Optional[int] = None,
        seed: int = 0,
    ):
        """``F(subset + c) - F(subset)`` for every single-element candidate.

        One-shot form of the incremental API: builds an evaluator at
        *subset* and scores all *candidates* in one pass (vectorized for
        the kernel-backed families, a python loop otherwise).  Greedy
        loops that score the same pool repeatedly should hold on to an
        evaluator instead of calling this per round.

        *subsample* is the stochastic-greedy opt-in: when set to an
        integer ``s``, only a seed-deterministic uniform sample of
        ``min(s, len(candidates))`` candidates is scored and the result
        is a :class:`SubsampledMarginals` (indices + gains) instead of
        a plain array — subsampling is never silent, in the call or in
        the return type.  Exact scoring (the default) is unchanged.
        """
        ev = self.incremental_evaluator(backend=backend)
        ev.reset(subset)
        pool = list(candidates)
        if subsample is None:
            return ev.gains(pool)
        s = int(subsample)
        if s <= 0:
            raise ValueError(f"subsample must be a positive sample size, got {subsample}")
        if s >= len(pool):
            idx = np.arange(len(pool), dtype=np.intp)
        else:
            gen = np.random.default_rng(seed)
            idx = np.sort(gen.choice(len(pool), size=s, replace=False)).astype(np.intp)
        return SubsampledMarginals(idx, ev.gains([pool[i] for i in idx]))

    def is_normalized(self, tol: float = 1e-12) -> bool:
        """True when ``F(empty) == 0`` (all paper utilities are)."""
        return abs(self.value(frozenset())) <= tol


class LambdaSetFunction(SetFunction):
    """Wrap an arbitrary callable as a :class:`SetFunction`.

    Handy for tests and for user-supplied oracles: the paper's model
    only assumes oracle access, so any callable qualifies.
    """

    def __init__(self, ground: Iterable[Element], fn: Callable[[FrozenSet[Element]], float]):
        self._ground = frozenset(ground)
        self._fn = fn

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._ground

    def value(self, subset: FrozenSet[Element]) -> float:
        return float(self._fn(_as_frozen(subset)))


class TruncatedFunction(SetFunction):
    """``min(cap, F)`` — the truncation the greedy of Lemma 2.1.2 optimises.

    Truncating a monotone submodular function at a constant preserves both
    monotonicity and submodularity, which is why the greedy's
    "count increments only up to x" rule keeps its guarantee.
    """

    def __init__(self, base: SetFunction, cap: float):
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self.base = base
        self.cap = float(cap)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self.base.ground_set

    def value(self, subset: FrozenSet[Element]) -> float:
        return min(self.cap, self.base.value(_as_frozen(subset)))


class RestrictedFunction(SetFunction):
    """``F`` restricted to a sub-universe, i.e. ``G(S) = F(S & allowed)``.

    Algorithm 2 (the non-monotone secretary) runs Algorithm 1 on one half
    of the stream; restriction is how that projection is expressed.
    """

    def __init__(self, base: SetFunction, allowed: Iterable[Element]):
        self.base = base
        self._allowed = frozenset(allowed)
        if not self._allowed <= base.ground_set:
            raise ValueError("allowed set must be a subset of the base ground set")

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self._allowed

    def value(self, subset: FrozenSet[Element]) -> float:
        return self.base.value(_as_frozen(subset) & self._allowed)


def powerset(items: Iterable[Element]) -> "chain[tuple[Element, ...]]":
    """All subsets of *items*, smallest first (used by exhaustive checks)."""
    pool = list(items)
    return chain.from_iterable(combinations(pool, r) for r in range(len(pool) + 1))


def check_monotone(
    fn: SetFunction,
    *,
    trials: int = 200,
    rng=None,
    exhaustive_limit: int = 10,
    tol: float = 1e-9,
) -> bool:
    """Empirically verify ``A <= B  =>  F(A) <= F(B)``.

    Exhaustive when the ground set has at most *exhaustive_limit*
    elements, randomised otherwise.  Returns ``True`` or raises
    :class:`NotSubmodularError` with a witness (reusing the error type
    for both lattice properties keeps the caller-side handling simple).
    """
    ground = sorted(fn.ground_set, key=repr)
    if len(ground) <= exhaustive_limit:
        for combo in powerset(ground):
            a = frozenset(combo)
            fa = fn.value(a)
            for e in ground:
                if e in a:
                    continue
                if fn.value(a | {e}) < fa - tol:
                    raise NotSubmodularError(
                        f"monotonicity violated at A={set(a)}, e={e!r}", witness=(a, e)
                    )
        return True
    gen = as_generator(rng)
    n = len(ground)
    for _ in range(trials):
        mask = gen.random(n) < gen.random()
        a = frozenset(g for g, m in zip(ground, mask) if m)
        extra = ground[int(gen.integers(n))]
        if extra in a:
            continue
        if fn.value(a | {extra}) < fn.value(a) - tol:
            raise NotSubmodularError(
                f"monotonicity violated at A={set(a)}, e={extra!r}", witness=(a, extra)
            )
    return True


def check_submodular(
    fn: SetFunction,
    *,
    trials: int = 200,
    rng=None,
    exhaustive_limit: int = 8,
    tol: float = 1e-9,
) -> bool:
    """Empirically verify the diminishing-returns characterisation.

    Checks ``F(A+z) - F(A) >= F(B+z) - F(B)`` for ``A ⊆ B`` (the paper's
    Definition 3, equivalent to the lattice form of Definition 1).
    Exhaustive below *exhaustive_limit* ground-set elements, randomised
    above.  Raises :class:`NotSubmodularError` with the violating triple.
    """
    ground = sorted(fn.ground_set, key=repr)
    n = len(ground)

    def _check(a: FrozenSet[Element], b: FrozenSet[Element], z: Element) -> None:
        gain_a = fn.value(a | {z}) - fn.value(a)
        gain_b = fn.value(b | {z}) - fn.value(b)
        if gain_a < gain_b - tol:
            raise NotSubmodularError(
                f"submodularity violated: A={set(a)} B={set(b)} z={z!r} "
                f"gain_A={gain_a} < gain_B={gain_b}",
                witness=(a, b, z),
            )

    if n <= exhaustive_limit:
        for combo_b in powerset(ground):
            b = frozenset(combo_b)
            for combo_a in powerset(sorted(b, key=repr)):
                a = frozenset(combo_a)
                for z in ground:
                    if z in b:
                        continue
                    _check(a, b, z)
        return True

    gen = as_generator(rng)
    for _ in range(trials):
        mask_b = gen.random(n) < gen.random()
        b = frozenset(g for g, m in zip(ground, mask_b) if m)
        sub_mask = gen.random(len(b)) < gen.random() if b else np.empty(0)
        a = frozenset(g for g, m in zip(sorted(b, key=repr), sub_mask) if m)
        z = ground[int(gen.integers(n))]
        if z in b:
            continue
        _check(a, b, z)
    return True
