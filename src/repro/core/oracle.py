"""Oracle wrappers: call counting and memoisation.

The paper's model charges algorithms per value-oracle query (explicitly
so in the subadditive hardness proof, which bounds algorithms by their
query count).  :class:`CountingOracle` makes that cost observable;
:class:`CachedOracle` removes redundant queries, which matters because
the budgeted greedy re-evaluates the same unions across iterations.
Both wrappers compose, and both are transparent ``SetFunction``s.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.submodular import Element, SetFunction

__all__ = ["CountingOracle", "CachedOracle"]


class CountingOracle(SetFunction):
    """Pass-through oracle that counts :meth:`value` invocations.

    The E12 ablation benchmark compares plain vs. lazy greedy by wrapping
    the same base utility in one of these and reading ``calls`` after.
    """

    def __init__(self, base: SetFunction):
        self.base = base
        self.calls = 0

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self.base.ground_set

    def value(self, subset: FrozenSet[Element]) -> float:
        self.calls += 1
        return self.base.value(subset)

    def reset(self) -> None:
        self.calls = 0


class CachedOracle(SetFunction):
    """Memoising oracle keyed on the frozen subset.

    Safe because all library utilities are pure functions of the subset.
    ``hits``/``misses`` counters let benchmarks report cache efficiency.
    """

    def __init__(self, base: SetFunction, max_entries: int | None = None):
        self.base = base
        self._cache: Dict[FrozenSet[Element], float] = {}
        self._marginal_cache: Dict[tuple, float] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self.base.ground_set

    def value(self, subset: FrozenSet[Element]) -> float:
        key = subset if isinstance(subset, frozenset) else frozenset(subset)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = self.base.value(key)
        if self.max_entries is None or len(self._cache) < self.max_entries:
            self._cache[key] = result
        return result

    def marginal_gain(
        self, selection: FrozenSet[Element], items: FrozenSet[Element]
    ) -> float:
        """``F(selection | items) - F(selection)``, memoised per selection.

        The cache key is the ``(selection, items)`` fingerprint pair —
        frozensets memoise their own hash after the first computation, so
        repeat probes of the same pair (a lazy greedy re-scoring a popped
        candidate, or a sweep replaying a cached instance) cost two dict
        lookups instead of two oracle evaluations.  Routed through the
        value cache, so a gain probe also warms plain :meth:`value` calls
        for the same union.
        """
        selection = selection if isinstance(selection, frozenset) else frozenset(selection)
        items = items if isinstance(items, frozenset) else frozenset(items)
        key = (selection, items)
        cached = self._marginal_cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        gain = self.value(selection | items) - self.value(selection)
        if self.max_entries is None or len(self._marginal_cache) < self.max_entries:
            self._marginal_cache[key] = gain
        return gain

    def clear(self) -> None:
        self._cache.clear()
        self._marginal_cache.clear()
        self.hits = 0
        self.misses = 0
