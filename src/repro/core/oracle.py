"""Oracle wrappers: call counting and memoisation.

The paper's model charges algorithms per value-oracle query (explicitly
so in the subadditive hardness proof, which bounds algorithms by their
query count).  :class:`CountingOracle` makes that cost observable;
:class:`CachedOracle` removes redundant queries, which matters because
the budgeted greedy re-evaluates the same unions across iterations.
Both wrappers compose, and both are transparent ``SetFunction``s.

Both also forward the incremental-evaluator API (see
:mod:`repro.core.kernels`): when the wrapped function exposes a
vectorized kernel, the wrapper returns a counting/pass-through view of
it so batched consumers keep the per-candidate query accounting that
makes reported ``oracle_work`` comparable to the naive scans.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Iterable, Sequence

import numpy as np

from repro.core.kernels import IncrementalEvaluator, PreparedBatch
from repro.core.submodular import Element, SetFunction

__all__ = ["CountingOracle", "CachedOracle"]


class _CountingEvaluator(IncrementalEvaluator):
    """Kernel evaluator view that bills one query per scored candidate.

    Wraps a ``fast`` inner evaluator and increments the owning
    :class:`CountingOracle`'s ``calls`` by the batch size on every
    gains/union query — one ``value`` call per candidate, the same
    price the naive scan pays.  Per-arrival consumers (the secretary
    scans) report bit-identical counts; batch consumers may differ by
    the few candidates a naive scan would have skipped without querying
    (e.g. subsets already inside the selection), which stays well
    inside the bench gate's oracle-work tolerance.
    """

    fast = True

    def __init__(self, inner: IncrementalEvaluator, owner: "CountingOracle"):
        self._inner = inner
        self._owner = owner
        self.fn = owner
        self.modular = inner.modular
        # The evaluator starts knowing F(empty) — the one query the
        # naive path's construction makes (and is billed for).
        owner.calls += 1

    # state delegation -------------------------------------------------

    @property
    def selection(self) -> FrozenSet[Element]:
        return self._inner.selection

    @property
    def current_value(self) -> float:
        return self._inner.current_value

    def reset(self, selection: Iterable[Element] = ()) -> None:
        # The naive fallback evaluates F(selection) on reset — bill the
        # same one query so batch_marginals reports alike on both paths.
        self._owner.calls += 1
        self._inner.reset(selection)

    def add(self, element: Element) -> float:
        # Unbilled: every consumer that grows a counting-stack selection
        # pairs the growth with a counted authoritative value() call
        # (the greedys) or with advance() on a value it already paid
        # for (the streaming scans); billing here would double-charge.
        return self._inner.add(element)

    def add_set(self, items: Iterable[Element]) -> float:
        return self._inner.add_set(items)

    def advance(self, element: Element, new_value: float) -> None:
        self._inner.advance(element, new_value)

    # counted queries --------------------------------------------------

    def gains(self, candidates: Sequence[Element]) -> np.ndarray:
        self._owner.calls += len(candidates)
        return self._inner.gains(candidates)

    def gain1(self, element: Element) -> float:
        self._owner.calls += 1
        return self._inner.gain1(element)

    def union_value1(self, element: Element) -> float:
        self._owner.calls += 1
        return self._inner.union_value1(element)

    def union_values(self, candidates: Sequence[Element]) -> np.ndarray:
        self._owner.calls += len(candidates)
        return self._inner.union_values(candidates)

    def set_gains(self, candidate_sets) -> np.ndarray:
        self._owner.calls += len(candidate_sets)
        return self._inner.set_gains(candidate_sets)

    def prepare(self, candidate_sets) -> PreparedBatch:
        inner_batch = self._inner.prepare(candidate_sets)
        batch = PreparedBatch(self, candidate_sets)

        def gains(indices, owner=self._owner, inner_batch=inner_batch):
            idx = list(indices)
            owner.calls += len(idx)
            return inner_batch.gains(idx)

        batch.gains = gains  # type: ignore[method-assign]
        return batch


class CountingOracle(SetFunction):
    """Pass-through oracle that counts :meth:`value` invocations.

    The E12 ablation benchmark compares plain vs. lazy greedy by wrapping
    the same base utility in one of these and reading ``calls`` after.
    Batched kernel queries routed through :meth:`incremental_evaluator`
    count one call per scored candidate (Definition 1 charges per set
    queried, and a batch of ``m`` marginals is ``m`` set queries).
    """

    def __init__(self, base: SetFunction):
        self.base = base
        self.calls = 0

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self.base.ground_set

    def value(self, subset: FrozenSet[Element]) -> float:
        self.calls += 1
        return self.base.value(subset)

    def reset(self) -> None:
        self.calls = 0

    def fast_evaluator(self, backend=None):
        # A kernel below gets the counting view; otherwise ``None`` so
        # the generic fallback is built on *this* oracle and every
        # evaluation is counted exactly as before the kernel layer.
        # ``backend`` passes through untouched — selection is the base
        # function's concern, billing is this wrapper's.
        backend = self.resolve_backend_arg(backend)
        inner = getattr(self.base, "fast_evaluator", lambda backend=None: None)(backend)
        if inner is not None:
            return _CountingEvaluator(inner, self)
        return None


class CachedOracle(SetFunction):
    """Memoising oracle keyed on the frozen subset, with LRU eviction.

    Safe because all library utilities are pure functions of the subset.
    ``hits``/``misses`` counters let benchmarks report cache efficiency.
    When *max_entries* is set, both the value cache and the marginal
    cache evict their least-recently-used entry instead of refusing new
    inserts — a full cache used to freeze its contents forever, so a
    long greedy run would degrade to 0% hit rate on post-fill queries.
    """

    def __init__(self, base: SetFunction, max_entries: int | None = None):
        self.base = base
        self._cache: "OrderedDict[FrozenSet[Element], float]" = OrderedDict()
        self._marginal_cache: "OrderedDict[tuple, float]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    @property
    def ground_set(self) -> FrozenSet[Element]:
        return self.base.ground_set

    def _insert(self, cache: OrderedDict, key, result) -> None:
        if self.max_entries is not None:
            if self.max_entries <= 0:
                return  # cache nothing, as before the LRU change
            if len(cache) >= self.max_entries:
                cache.popitem(last=False)
        cache[key] = result

    def value(self, subset: FrozenSet[Element]) -> float:
        key = subset if isinstance(subset, frozenset) else frozenset(subset)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        result = self.base.value(key)
        self._insert(self._cache, key, result)
        return result

    def marginal_gain(
        self, selection: FrozenSet[Element], items: FrozenSet[Element]
    ) -> float:
        """``F(selection | items) - F(selection)``, memoised per selection.

        The cache key is the ``(selection, items)`` fingerprint pair —
        frozensets memoise their own hash after the first computation, so
        repeat probes of the same pair (a lazy greedy re-scoring a popped
        candidate, or a sweep replaying a cached instance) cost two dict
        lookups instead of two oracle evaluations.  Routed through the
        value cache, so a gain probe also warms plain :meth:`value` calls
        for the same union.
        """
        selection = selection if isinstance(selection, frozenset) else frozenset(selection)
        items = items if isinstance(items, frozenset) else frozenset(items)
        key = (selection, items)
        cached = self._marginal_cache.get(key)
        if cached is not None:
            self.hits += 1
            self._marginal_cache.move_to_end(key)
            return cached
        gain = self.value(selection | items) - self.value(selection)
        self._insert(self._marginal_cache, key, gain)
        return gain

    def fast_evaluator(self, backend=None):
        # Kernel state already subsumes the memoisation (it never
        # recomputes covered work); bypass the dict caches entirely.
        # With no kernel below, ``None`` makes the generic fallback run
        # on this oracle, so queries keep hitting the dict caches.
        backend = self.resolve_backend_arg(backend)
        return getattr(self.base, "fast_evaluator", lambda backend=None: None)(backend)

    def clear(self) -> None:
        self._cache.clear()
        self._marginal_cache.clear()
        self.hits = 0
        self.misses = 0
