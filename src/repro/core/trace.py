"""Execution traces for the budgeted greedy.

Lemma 2.1.2's proof organises the greedy's picks into ``log(1/eps)``
*phases*: phase ``i`` ends when utility first reaches ``(1 - 1/2^i) x``
and the proof charges each phase at most ``2B``.  The trace records
enough per-step information to reconstruct that accounting, which the
E1 benchmark prints as its "cost per phase" table — an empirical view
of the proof itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Sequence

__all__ = ["GreedyStep", "GreedyResult", "phase_of"]


def phase_of(utility: float, target: float) -> int:
    """Phase index (1-based) a given utility level belongs to.

    Phase ``i`` covers utilities in ``[(1 - 1/2^(i-1)) x, (1 - 1/2^i) x)``.
    Utilities at or beyond the target map to ``inf``-like large phases;
    we clamp to 63 to keep the arithmetic in integers.
    """
    if target <= 0:
        return 1
    frac = utility / target
    if frac >= 1.0:
        return 63
    remaining = 1.0 - frac
    # remaining in (1/2^i, 1/2^(i-1)]  =>  phase i
    return min(63, max(1, int(math.floor(-math.log2(remaining))) + 1))


@dataclass(frozen=True)
class GreedyStep:
    """One pick of the greedy: which subset, at what marginal ratio."""

    index: Hashable
    cost: float
    gain: float
    utility_after: float
    cost_after: float

    @property
    def ratio(self) -> float:
        """Truncated utility gain per unit cost (the greedy's selection key)."""
        return self.gain / self.cost if self.cost > 0 else math.inf


@dataclass
class GreedyResult:
    """Outcome of a budgeted-greedy run.

    ``chosen`` preserves pick order; ``selection`` is the union of the
    picked subsets' elements (what the utility was evaluated on).
    """

    chosen: List[Hashable]
    selection: frozenset
    utility: float
    cost: float
    target: float
    epsilon: float
    steps: List[GreedyStep] = field(default_factory=list)

    @property
    def reached_target(self) -> bool:
        """Whether the bicriteria utility goal ``(1 - eps) x`` was met."""
        return self.utility >= (1.0 - self.epsilon) * self.target - 1e-9

    def cost_by_phase(self) -> dict[int, float]:
        """Total cost attributed to each proof phase (see module doc)."""
        out: dict[int, float] = {}
        prev_utility = 0.0
        for step in self.steps:
            ph = phase_of(prev_utility, self.target)
            out[ph] = out.get(ph, 0.0) + step.cost
            prev_utility = step.utility_after
        return out

    def summary(self) -> str:
        """One-line human-readable digest used by examples and benches."""
        return (
            f"greedy: {len(self.chosen)} picks, utility {self.utility:.4g}"
            f"/{self.target:.4g} (eps={self.epsilon:.3g}), cost {self.cost:.4g}"
        )


def total_cost(steps: Sequence[GreedyStep]) -> float:
    """Sum of step costs (kept as a function for the stats module)."""
    return float(sum(s.cost for s in steps))
