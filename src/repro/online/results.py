"""Result containers shared by every online policy.

These dataclasses used to live in the per-algorithm modules
(``secretary/submodular_secretary.py``, ``secretary/robust.py``,
``secretary/bottleneck.py``); the unified runtime moves them here so
policies can construct them without importing the algorithm wrappers
(which import the policies — the other direction).  The legacy modules
re-export them, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, List, Optional

__all__ = ["SegmentTrace", "SecretaryResult", "RobustResult", "BottleneckResult"]


@dataclass(frozen=True)
class SegmentTrace:
    """What happened inside one segment (for diagnostics/tests)."""

    segment: int
    start: int
    observe_until: int
    end: int
    threshold: float
    picked: Optional[Hashable]
    gain: float


@dataclass
class SecretaryResult:
    """Outcome of an online run: the hired set plus per-segment traces."""

    selected: FrozenSet[Hashable]
    traces: List[SegmentTrace] = field(default_factory=list)
    strategy: str = "segments"

    @property
    def hires(self) -> int:
        """The hired elements in hire order."""
        return len(self.selected)


@dataclass
class RobustResult:
    """Hired set with per-segment provenance."""

    selected: FrozenSet[Hashable]
    per_segment: List[Optional[Hashable]]

    @property
    def hires(self) -> int:
        """The hired elements in hire order."""
        return len(self.selected)


@dataclass
class BottleneckResult:
    """Hired set plus whether it is exactly the top-k set."""

    selected: FrozenSet[Hashable]
    threshold: float
    hired_top_k: bool
    min_value: float
