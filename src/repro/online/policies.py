"""Online algorithms as explicit ``observe(arrival) -> state`` machines.

Every Section 3 algorithm is one :class:`OnlinePolicy`: a small state
machine that is *bound* to a value oracle and a stream length, fed one
arrival (or one revealed minibatch) at a time, and asked to ``finish()``
into its result object.  The legacy per-algorithm entry points
(``monotone_submodular_secretary`` & co.) are thin wrappers that
construct a policy and drive it — the decision logic lives here, once.

The policy contract:

``bind(oracle, n)``
    Attach the (arrival-restricted) value oracle and the publicly known
    stream length; derived layout (segment bounds, observation windows,
    incremental evaluators) is computed here.
``observe(pos, element)`` / ``observe_batch(pos0, elements)``
    Consume one arrival / one revealed minibatch.  The default batch
    implementation loops ``observe``; :class:`SegmentedSubmodularPolicy`
    overrides it to score a whole batch in one kernel call (re-scoring
    the tail after a hire, so decisions are identical to the sequential
    pass).
``done``
    True once the policy will never change state again — drivers stop
    revealing arrivals, exactly like the legacy loops ``break`` out of
    their streams.
``state_dict()`` / ``load_state()`` / ``config_dict()`` / ``from_config()``
    The checkpoint codec: config rebuilds the policy, state restores the
    mid-stream machine (JSON-safe — ``-inf`` thresholds encode as
    ``None``).  Non-serializable dependencies (matroids, feasibility
    callables) are re-injected through ``from_config(..., **deps)``.

Under the default per-arrival driving, each policy performs the *same
oracle queries in the same order* as the loop it replaced — the golden
equivalence suite pins hired sets and query counts bit-identically.
"""

from __future__ import annotations

import abc
import math
from dataclasses import asdict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.core.kernels import evaluator_for
from repro.errors import BudgetError, InvalidInstanceError
from repro.online.results import (
    BottleneckResult,
    RobustResult,
    SecretaryResult,
    SegmentTrace,
)
from repro.online.runtime import (
    decode_float,
    encode_float,
    observation_lengths,
    offline_knapsack_estimate,
    segment_bounds,
    subsample_keep,
)
from repro.secretary.classical import dynkin_threshold

__all__ = [
    "OnlinePolicy",
    "SegmentedSubmodularPolicy",
    "BestSingletonPolicy",
    "RobustTopKPolicy",
    "BottleneckPolicy",
    "KnapsackSecretaryPolicy",
    "SubadditiveSegmentPolicy",
    "MatroidSecretaryPolicy",
    "POLICIES",
    "register_policy",
    "make_policy",
    "policy_names",
    "nonmonotone_half_policy",
]

CanTake = Callable[[FrozenSet[Hashable], Hashable], bool]


def _encode_element_map(mapping: Mapping[Hashable, float]) -> List[List[object]]:
    """Element-keyed map as ``[[element, value], ...]`` pairs.

    JSON object keys are always strings, so a dict keyed by int elements
    would come back stringified while the schedule's order keeps the
    ints; pair lists keep element identity through the round trip for
    every element type the schedule payload admits (str/int).
    """
    return [[e, float(v)] for e, v in mapping.items()]


def _decode_element_map(encoded) -> Dict[Hashable, float]:
    """Inverse of :func:`_encode_element_map`; accepts plain dicts too
    (in-process configs that never crossed a JSON boundary)."""
    if isinstance(encoded, dict):
        return {e: float(v) for e, v in encoded.items()}
    return {e: float(v) for e, v in encoded}


class OnlinePolicy(abc.ABC):
    """One online decision rule over a stream of arrivals."""

    name: str = ""

    def __init__(self) -> None:
        self._oracle = None
        self._n: Optional[int] = None
        self._done = False

    # -- lifecycle ------------------------------------------------------

    def bind(self, oracle, n: int) -> None:
        """Attach the value oracle and stream length; build derived state."""
        self._oracle = oracle
        self._n = int(n)
        self._setup()

    def _setup(self) -> None:  # pragma: no cover - trivial default
        """Hook for bound-time layout computation."""

    @property
    def bound(self) -> bool:
        """The policy's competitive-ratio guarantee, when one is known."""
        return self._oracle is not None

    @property
    def done(self) -> bool:
        """True once no future arrival can change the policy's state."""
        return self._done

    @abc.abstractmethod
    def observe(self, pos: int, element: Hashable) -> None:
        """Consume the arrival at stream position *pos*."""

    def observe_batch(self, pos0: int, elements: Sequence[Hashable]) -> None:
        """Consume a revealed minibatch (default: sequential observes)."""
        for i, a in enumerate(elements):
            if self._done:
                break
            self.observe(pos0 + i, a)

    @abc.abstractmethod
    def finish(self):
        """Close the run and return the algorithm's result object."""

    # -- decision log / resume frontier --------------------------------

    def hired_set(self) -> FrozenSet[Hashable]:
        """Elements hired so far (drives the run's decision log)."""
        return frozenset()

    def frontier(self) -> List[Hashable]:
        """Elements a resumed run must re-reveal to its fresh oracle.

        The no-peeking contract says a policy only ever queries sets of
        *arrived* elements; after a resume the only arrived elements it
        can still query are (by default) its hires.  Policies that keep
        non-hired arrivals queryable (the knapsack rule's observation
        half) override this.  Deterministic order so checkpoints are
        byte-stable.
        """
        return sorted(self.hired_set(), key=repr)

    # -- checkpoint codec ----------------------------------------------

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor arguments (deps excluded)."""
        return {}

    @abc.abstractmethod
    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state (call after :meth:`bind`)."""

    @abc.abstractmethod
    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore :meth:`state_dict` output (call after :meth:`bind`)."""

    @classmethod
    def from_config(cls, config: Mapping[str, object], **deps) -> "OnlinePolicy":
        """Rebuild an instance from a :meth:`config_dict` payload."""
        return cls(**dict(config), **deps)  # type: ignore[call-arg]


# -- Algorithm 1: the segmented submodular secretary ------------------------


class SegmentedSubmodularPolicy(OnlinePolicy):
    """Core of Algorithm 1: k segments, one classical subroutine each.

    ``skip`` arrivals are ignored before the segment window of length
    ``window_n`` opens (Algorithm 2 and Algorithm 3 run Algorithm 1 on a
    half of the stream); ``position_offset`` labels traces with global
    stream positions.  Per-arrival queries go through an incremental
    evaluator pinned at the hired set, enforcing the Section 3.2.1
    no-peeking contract whenever the oracle does.

    ``subsample`` is the sieve-style **opt-in**: when set to a rate in
    ``(0, 1]``, only a deterministic-hash-selected fraction of
    *observation-window* arrivals is scored when building each segment
    threshold (decision-phase arrivals are always scored — they decide
    hires).  The coin (:func:`repro.online.runtime.subsample_keep`)
    depends only on ``(subsample_seed, global position)``, so batched
    and sequential driving, and checkpoint/resume at any arrival, all
    drop exactly the same queries.  Default ``None`` — exact, and every
    construction site in the library leaves it that way; the bench
    harness measures the resulting utility drift whenever it is on.
    """

    name = "segmented"

    def __init__(
        self,
        k: int,
        *,
        monotone_clamp: bool = True,
        skip: int = 0,
        window_n: Optional[int] = None,
        position_offset: Optional[int] = None,
        strategy: str = "segments",
        can_take: Optional[CanTake] = None,
        subsample: Optional[float] = None,
        subsample_seed: int = 0,
    ) -> None:
        super().__init__()
        if k <= 0:
            raise BudgetError(f"k must be positive, got {k}")
        if subsample is not None and not 0.0 < float(subsample) <= 1.0:
            raise InvalidInstanceError(
                f"subsample must be a rate in (0, 1], got {subsample}"
            )
        self.k = int(k)
        self.monotone_clamp = bool(monotone_clamp)
        self.skip = int(skip)
        self.window_n = window_n if window_n is None else int(window_n)
        self.position_offset = (
            self.skip if position_offset is None else int(position_offset)
        )
        self.strategy = strategy
        self.can_take = can_take
        self.subsample = None if subsample is None else float(subsample)
        self.subsample_seed = int(subsample_seed)

    def _setup(self) -> None:
        n = self.window_n if self.window_n is not None else self._n - self.skip
        self._wn = max(0, int(n))
        self._bounds = segment_bounds(self._wn, self.k)
        self._observe_len = observation_lengths(self._bounds)
        self._evaluator = evaluator_for(self._oracle)
        self._current_value = self._evaluator.current_value
        self._base: FrozenSet[Hashable] = frozenset()
        self._selected: List[Hashable] = []
        self._selected_set: set = set()
        self._traces: List[SegmentTrace] = []
        self._seg = 0
        self._threshold = -math.inf
        self._picked: Optional[Hashable] = None
        self._best_gain = 0.0
        self._closed_tail = False

    # -- mechanics ------------------------------------------------------

    def _close_segment(self, j: int) -> None:
        s, e = self._bounds[j]
        off = self.position_offset
        self._traces.append(
            SegmentTrace(
                segment=j,
                start=off + s,
                observe_until=off + s + self._observe_len[j],
                end=off + e,
                threshold=self._threshold,
                picked=self._picked,
                gain=self._best_gain,
            )
        )

    def _reset_segment_trackers(self) -> None:
        self._threshold = -math.inf
        self._picked = None
        self._best_gain = 0.0
        self._base = frozenset(self._selected_set)

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        self._step(pos, element, None)

    def _step(self, pos: int, a: Hashable, scored: Optional[float]) -> None:
        if self._done:
            return
        ipos = pos - self.skip
        if ipos < 0:
            return
        if ipos >= self._wn:
            self._done = True
            return
        # Advance past finished (possibly empty) segments.
        while self._seg < self.k and ipos >= self._bounds[self._seg][1]:
            self._close_segment(self._seg)
            self._seg += 1
            self._reset_segment_trackers()
        if self._seg >= self.k:
            self._done = True
            return
        start, _end = self._bounds[self._seg]
        in_window = ipos - start < self._observe_len[self._seg]
        if in_window:
            if (
                self.subsample is not None
                and scored is None
                and not subsample_keep(self.subsample_seed, pos, self.subsample)
            ):
                return  # coin-dropped window arrival: never queried
            uv = scored if scored is not None else self._evaluator.union_value1(a)
            self._threshold = max(self._threshold, uv)
            return
        if self._picked is not None:
            return  # one hire per segment
        effective = self._threshold
        if self.monotone_clamp and effective < self._current_value:
            effective = self._current_value
        if self.can_take is not None and not self.can_take(self._base, a):
            return
        candidate = scored if scored is not None else self._evaluator.union_value1(a)
        if candidate >= effective:
            self._picked = a
            self._best_gain = candidate - self._current_value
            self._selected.append(a)
            self._selected_set.add(a)
            self._evaluator.advance(a, candidate)
            self._current_value = candidate

    def _will_query(self, positions: Sequence[int]) -> List[bool]:
        """Which of these in-order arrivals the sequential pass queries.

        Mirrors :meth:`_step`'s control flow against the state at the
        start of a scoring round: skip-region/past-window arrivals and
        decision-phase arrivals of a segment that already hired are
        never scored sequentially, so pre-scoring them would inflate the
        counted oracle work.  (A conservative miss here only moves a
        query from the batch to a single ``union_value1`` inside
        ``_step`` — decisions are unaffected either way.)
        """
        mask: List[bool] = []
        seg, picked = self._seg, self._picked is not None
        for ipos in positions:
            if ipos < 0 or ipos >= self._wn:
                mask.append(False)
                continue
            while seg < self.k and ipos >= self._bounds[seg][1]:
                seg += 1
                picked = False  # trackers reset when a segment closes
            if seg >= self.k:
                mask.append(False)
                continue
            in_window = ipos - self._bounds[seg][0] < self._observe_len[seg]
            if in_window:
                # Window arrivals query unless the subsample coin drops
                # them — keyed on the global position, so this mirror
                # agrees with the sequential coin in ``_step`` exactly.
                mask.append(
                    self.subsample is None
                    or subsample_keep(
                        self.subsample_seed, ipos + self.skip, self.subsample
                    )
                )
            else:
                mask.append(not picked)
        return mask

    def observe_batch(self, pos0: int, elements: Sequence[Hashable]) -> None:
        """Score the whole revealed batch in one kernel call.

        A hire mid-batch changes the selection, so the unconsumed tail
        is re-scored — decisions match the sequential pass exactly while
        the kernel work drops to one vectorized pass per batch (+1 per
        hire).  Only arrivals the sequential pass would actually query
        (:meth:`_will_query`) are scored, so the counted oracle work
        exceeds the per-arrival path only by the pre-hire tail scores a
        speculative batch discards (at most one partial batch per hire).
        Policies with feasibility hooks or non-kernel oracles fall back
        to sequential observes.
        """
        ev = getattr(self, "_evaluator", None)
        if self.can_take is not None or ev is None or not getattr(ev, "fast", False):
            super().observe_batch(pos0, elements)
            return
        i = 0
        while i < len(elements) and not self._done:
            rest = list(elements[i:])
            mask = self._will_query(
                [pos0 + i + j - self.skip for j in range(len(rest))]
            )
            queried = [a for a, m in zip(rest, mask) if m]
            scores = iter(ev.union_values(queried)) if queried else iter(())
            advanced = None
            for j, a in enumerate(rest):
                if self._done:
                    break
                before = len(self._selected)
                self._step(
                    pos0 + i + j, a, float(next(scores)) if mask[j] else None
                )
                if len(self._selected) != before:
                    advanced = j  # selection changed: re-score the tail
                    break
            if advanced is None:
                break
            i += advanced + 1

    def finish(self) -> SecretaryResult:
        """Finalize at end of stream and return the result object."""
        if not self._closed_tail:
            while self._seg < self.k:
                self._close_segment(self._seg)
                self._seg += 1
                self._reset_segment_trackers()
            self._closed_tail = True
        return SecretaryResult(
            selected=frozenset(self._selected_set),
            traces=list(self._traces),
            strategy=self.strategy,
        )

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        return frozenset(getattr(self, "_selected_set", ()))

    # -- checkpoint codec ----------------------------------------------

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`.

        The subsample keys are emitted only when the opt-in is active,
        so exact-mode checkpoints stay byte-identical to pre-subsample
        builds (and old checkpoints load via constructor defaults).
        """
        cfg = {
            "k": self.k,
            "monotone_clamp": self.monotone_clamp,
            "skip": self.skip,
            "window_n": self.window_n,
            "position_offset": self.position_offset,
            "strategy": self.strategy,
        }
        if self.subsample is not None:
            cfg["subsample"] = self.subsample
            cfg["subsample_seed"] = self.subsample_seed
        return cfg

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        return {
            "selected": list(self._selected),
            "base": sorted(self._base, key=repr),
            "seg": self._seg,
            "threshold": encode_float(self._threshold),
            "picked": self._picked,
            "best_gain": self._best_gain,
            "current_value": self._current_value,
            "done": self._done,
            "closed_tail": self._closed_tail,
            "traces": [
                {**asdict(t), "threshold": encode_float(t.threshold)}
                for t in self._traces
            ],
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        self._selected = list(state["selected"])  # type: ignore[arg-type]
        self._selected_set = set(self._selected)
        self._base = frozenset(state["base"])  # type: ignore[arg-type]
        self._seg = int(state["seg"])  # type: ignore[arg-type]
        self._threshold = decode_float(state["threshold"])  # type: ignore[arg-type]
        self._picked = state["picked"]
        self._best_gain = float(state["best_gain"])  # type: ignore[arg-type]
        self._done = bool(state["done"])
        self._closed_tail = bool(state["closed_tail"])
        self._traces = [
            SegmentTrace(**{**t, "threshold": decode_float(t["threshold"])})
            for t in state["traces"]  # type: ignore[union-attr]
        ]
        self._evaluator.reset(self._selected)
        self._current_value = float(state["current_value"])  # type: ignore[arg-type]


def nonmonotone_half_policy(n: int, k: int, use_first_half: bool) -> SegmentedSubmodularPolicy:
    """Algorithm 2's half-stream configuration of Algorithm 1.

    The first-half run observes positions ``[0, n//2)``; the second-half
    run skips the first half (always at least one arrival, mirroring the
    legacy consume loop) and runs on the remainder.
    """
    half = n // 2
    if use_first_half:
        return SegmentedSubmodularPolicy(
            k, window_n=half, strategy="first-half"
        )
    return SegmentedSubmodularPolicy(
        k,
        skip=max(1, half),
        window_n=n - half,
        position_offset=half,
        strategy="second-half",
    )


# -- the classical 1/e stopping rule (shared by four algorithms) ------------


class BestSingletonPolicy(OnlinePolicy):
    """Observe a window, then hire the first arrival beating its best.

    One parametrisation covers the four places the thesis uses the rule:
    the ``classical`` baseline method (strict comparison), the knapsack
    algorithm's heads branch (feasibility filter), Algorithm 3's small
    guesses (first-half limit + matroid filter), and the subadditive
    algorithm's strategy A.  Scores are singleton oracle values —
    exactly one counted query per unfiltered arrival.
    """

    name = "best_singleton"

    def __init__(
        self,
        *,
        strict: bool = False,
        require_finite: bool = False,
        window: Optional[int] = None,
        limit: Optional[int] = None,
        strategy: str = "best-singleton",
        feasible: Optional[Callable[[Hashable], bool]] = None,
    ) -> None:
        super().__init__()
        self.strict = bool(strict)
        self.require_finite = bool(require_finite)
        self.window = window if window is None else int(window)
        self.limit = limit if limit is None else int(limit)
        self.strategy = strategy
        self.feasible = feasible

    def _setup(self) -> None:
        horizon = self._n if self.limit is None else self.limit
        self._window = (
            dynkin_threshold(horizon) if self.window is None else self.window
        )
        self._best = -math.inf
        self._hired: Optional[Hashable] = None

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        if self._done:
            return
        if self.limit is not None and pos >= self.limit:
            self._done = True
            return
        if self.feasible is not None and not self.feasible(element):
            return
        score = float(self._oracle.value(frozenset({element})))
        if pos < self._window:
            self._best = max(self._best, score)
            return
        beats = score > self._best if self.strict else score >= self._best
        if beats and (not self.require_finite or score > -math.inf):
            self._hired = element
            self._done = True

    @property
    def hired(self) -> Optional[Hashable]:
        """The single hired element, or None before any hire."""
        return self._hired

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        hired = getattr(self, "_hired", None)
        return frozenset() if hired is None else frozenset({hired})

    def finish(self) -> SecretaryResult:
        """Finalize at end of stream and return the result object."""
        selected = frozenset() if self._hired is None else frozenset({self._hired})
        return SecretaryResult(selected=selected, traces=[], strategy=self.strategy)

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`."""
        return {
            "strict": self.strict,
            "require_finite": self.require_finite,
            "window": self.window,
            "limit": self.limit,
            "strategy": self.strategy,
        }

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        return {
            "best": encode_float(self._best),
            "hired": self._hired,
            "done": self._done,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        self._best = decode_float(state["best"])  # type: ignore[arg-type]
        self._hired = state["hired"]
        self._done = bool(state["done"])


# -- Section 3.6: the oblivious robust top-k rule ---------------------------


class RobustTopKPolicy(OnlinePolicy):
    """k segments, an independent classical rule on raw values in each."""

    name = "robust_topk"

    def __init__(self, values: Mapping[Hashable, float], k: int) -> None:
        super().__init__()
        if k <= 0:
            raise BudgetError(f"k must be positive, got {k}")
        self.values = dict(values)
        self.k = int(k)

    def _setup(self) -> None:
        self._bounds = segment_bounds(self._n, self.k)
        self._observe_len = observation_lengths(self._bounds)
        self._seg = 0
        self._best = -math.inf
        self._per_segment: List[Optional[Hashable]] = [None] * self.k
        self._selected: set = set()

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        if self._done:
            return
        while self._seg < self.k and pos >= self._bounds[self._seg][1]:
            self._seg += 1
            self._best = -math.inf
        if self._seg >= self.k:
            self._done = True
            return
        start, _ = self._bounds[self._seg]
        v = float(self.values[element])
        if pos - start < self._observe_len[self._seg]:
            self._best = max(self._best, v)
        elif self._per_segment[self._seg] is None and v >= self._best:
            self._per_segment[self._seg] = element
            self._selected.add(element)

    def finish(self) -> RobustResult:
        """Finalize at end of stream and return the result object."""
        return RobustResult(
            selected=frozenset(self._selected),
            per_segment=list(self._per_segment),
        )

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        return frozenset(getattr(self, "_selected", ()))

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`."""
        return {"values": _encode_element_map(self.values), "k": self.k}

    @classmethod
    def from_config(cls, config: Mapping[str, object], **deps) -> "RobustTopKPolicy":
        """Rebuild an instance from a :meth:`config_dict` payload."""
        return cls(_decode_element_map(config["values"]), int(config["k"]), **deps)  # type: ignore[arg-type]

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        return {
            "seg": self._seg,
            "best": encode_float(self._best),
            "per_segment": list(self._per_segment),
            "done": self._done,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        self._seg = int(state["seg"])  # type: ignore[arg-type]
        self._best = decode_float(state["best"])  # type: ignore[arg-type]
        self._per_segment = list(state["per_segment"])  # type: ignore[arg-type]
        self._selected = {e for e in self._per_segment if e is not None}
        self._done = bool(state["done"])


# -- Section 3.6: the bottleneck (min-value) rule ---------------------------


class BottleneckPolicy(OnlinePolicy):
    """Observe a 1/k fraction, then hire the first k above its best."""

    name = "bottleneck"

    def __init__(self, values: Mapping[Hashable, float], k: int) -> None:
        super().__init__()
        if k <= 0:
            raise BudgetError(f"k must be positive, got {k}")
        self.values = dict(values)
        self.k = int(k)

    def _setup(self) -> None:
        n, k = self._n, self.k
        # k = 1 degenerates to the classical 1/e rule; k >= 2 observes
        # the paper's "first 1/k fraction" (nothing, for streams shorter
        # than k — every arrival must be hireable).
        if k > 1:
            self._window = max(1, n // k) if n >= k else 0
        else:
            self._window = max(0, int(math.floor(n / math.e)))
        self._threshold = -math.inf
        self._selected: List[Hashable] = []

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        if self._done:
            return
        v = float(self.values[element])
        if pos < self._window:
            self._threshold = max(self._threshold, v)
        elif len(self._selected) < self.k and v > self._threshold:
            self._selected.append(element)

    def finish(self) -> BottleneckResult:
        """Finalize at end of stream and return the result object."""
        chosen = frozenset(self._selected)
        top_k = set(
            sorted(self.values, key=lambda e: (-self.values[e], repr(e)))[: self.k]
        )
        hired_top_k = len(chosen) == self.k and chosen == frozenset(top_k)
        min_value = min((self.values[a] for a in chosen), default=0.0)
        return BottleneckResult(
            selected=chosen,
            threshold=self._threshold,
            hired_top_k=hired_top_k,
            min_value=min_value if len(chosen) == self.k else 0.0,
        )

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        return frozenset(getattr(self, "_selected", ()))

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`."""
        return {"values": _encode_element_map(self.values), "k": self.k}

    @classmethod
    def from_config(cls, config: Mapping[str, object], **deps) -> "BottleneckPolicy":
        """Rebuild an instance from a :meth:`config_dict` payload."""
        return cls(_decode_element_map(config["values"]), int(config["k"]), **deps)  # type: ignore[arg-type]

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        return {
            "threshold": encode_float(self._threshold),
            "selected": list(self._selected),
            "done": self._done,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        self._threshold = decode_float(state["threshold"])  # type: ignore[arg-type]
        self._selected = list(state["selected"])  # type: ignore[arg-type]
        self._done = bool(state["done"])


# -- Section 3.4: the knapsack coin-flip rule -------------------------------


class KnapsackSecretaryPolicy(OnlinePolicy):
    """Theorem 3.1.3's rule over pre-reduced single-knapsack weights.

    ``heads`` chases the single best feasible item with the classical
    rule; tails collects the first half, estimates OPT offline on it
    (:func:`~repro.online.runtime.offline_knapsack_estimate`), then
    hires any later item whose marginal density beats ``OPT_hat /
    density_divisor``.  The coin itself is config — drawn by the caller
    — so a resumed run never needs the original RNG.
    """

    name = "knapsack"

    def __init__(
        self,
        weights: Mapping[Hashable, float],
        heads: bool,
        density_divisor: float = 6.0,
    ) -> None:
        super().__init__()
        if density_divisor <= 0:
            raise BudgetError("density_divisor must be positive")
        self.weights = dict(weights)
        self.heads = bool(heads)
        self.density_divisor = float(density_divisor)

    def _setup(self) -> None:
        self._half = self._n // 2
        if self.heads:
            self._singleton = BestSingletonPolicy(
                feasible=lambda a: self.weights[a] <= 1.0
            )
            self._singleton.bind(self._oracle, self._n)
            return
        self._phase = "collect"
        self._first_half: List[Hashable] = []
        self._bar = 0.0
        self._load = 0.0
        self._value = 0.0
        self._selected: List[Hashable] = []
        self._evaluator = None
        if self._n == 0:
            self._begin_filter()

    def _begin_filter(self) -> None:
        opt_hat = offline_knapsack_estimate(
            self._oracle, self.weights, self._first_half
        )
        self._bar = opt_hat / self.density_divisor
        # Incremental marginals against the growing hired set (one
        # counted query per arrival, kernel-fast when supported).
        self._evaluator = evaluator_for(self._oracle)
        self._value = self._evaluator.current_value
        self._phase = "filter"

    @property
    def done(self) -> bool:
        """Whether the policy will hire nothing further."""
        if self.heads and self.bound:
            return self._singleton.done
        return self._done

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        if self.heads:
            self._singleton.observe(pos, element)
            return
        if self._phase == "collect":
            self._first_half.append(element)
            if len(self._first_half) >= max(1, self._half):
                self._begin_filter()
            return
        w = self.weights[element]
        if self._load + w > 1.0:
            return
        gain = self._evaluator.gain1(element)
        if w > 0 and gain / w >= self._bar and gain > 0:
            self._selected.append(element)
            self._load += w
        elif w == 0 and gain > 0:
            self._selected.append(element)
        else:
            return
        self._value = self._oracle.value(frozenset(self._selected))
        self._evaluator.advance(element, self._value)

    def finish(self) -> SecretaryResult:
        """Finalize at end of stream and return the result object."""
        if self.heads:
            result = self._singleton.finish()
            return SecretaryResult(
                selected=result.selected, traces=[], strategy="best-singleton"
            )
        return SecretaryResult(
            selected=frozenset(self._selected), traces=[], strategy="density"
        )

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        if self.heads:
            return self._singleton.hired_set()
        return frozenset(getattr(self, "_selected", ()))

    def frontier(self) -> List[Hashable]:
        # The tails rule keeps its observation half queryable: it runs
        # the offline estimate over ``_first_half`` when the collect
        # phase closes, so a run resumed mid-collect must re-reveal
        # those arrivals too (still O(selected + n/2), never O(stream)).
        """Elements a resumed policy may still query (hires + pending)."""
        if not self.heads and getattr(self, "_phase", None) == "collect":
            return sorted(set(self._first_half) | self.hired_set(), key=repr)
        return sorted(self.hired_set(), key=repr)

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`."""
        return {
            "weights": _encode_element_map(self.weights),
            "heads": self.heads,
            "density_divisor": self.density_divisor,
        }

    @classmethod
    def from_config(
        cls, config: Mapping[str, object], **deps
    ) -> "KnapsackSecretaryPolicy":
        """Rebuild an instance from a :meth:`config_dict` payload."""
        return cls(
            _decode_element_map(config["weights"]),
            heads=bool(config["heads"]),
            density_divisor=float(config["density_divisor"]),  # type: ignore[arg-type]
            **deps,
        )

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        if self.heads:
            return {"singleton": self._singleton.state_dict()}
        return {
            "phase": self._phase,
            "first_half": list(self._first_half),
            "bar": self._bar,
            "load": self._load,
            "value": self._value,
            "selected": list(self._selected),
            "done": self._done,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        if self.heads:
            self._singleton.load_state(state["singleton"])  # type: ignore[arg-type]
            return
        self._phase = str(state["phase"])
        self._first_half = list(state["first_half"])  # type: ignore[arg-type]
        self._bar = float(state["bar"])  # type: ignore[arg-type]
        self._load = float(state["load"])  # type: ignore[arg-type]
        self._selected = list(state["selected"])  # type: ignore[arg-type]
        self._done = bool(state["done"])
        if self._phase == "filter":
            self._evaluator = evaluator_for(self._oracle)
            self._evaluator.reset(self._selected)
            self._value = float(state["value"])  # type: ignore[arg-type]


# -- Section 3.5: the subadditive random-segment strategy -------------------


class SubadditiveSegmentPolicy(OnlinePolicy):
    """Hire one pre-drawn size-<=k segment wholesale (strategy B).

    Strategy A (the coin's other face) is a plain
    :class:`BestSingletonPolicy`; the wrapper picks between them.
    """

    name = "subadditive_segment"

    def __init__(self, k: int, target: int) -> None:
        super().__init__()
        if k <= 0:
            raise BudgetError(f"k must be positive, got {k}")
        self.k = int(k)
        self.target = int(target)

    def _setup(self) -> None:
        self._lo = self.target * self.k
        self._hi = min(self._n, self._lo + self.k)
        self._selected: List[Hashable] = []

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        if self._done:
            return
        if self._lo <= pos < self._hi:
            self._selected.append(element)
        elif pos >= self._hi:
            self._done = True

    def finish(self) -> SecretaryResult:
        """Finalize at end of stream and return the result object."""
        return SecretaryResult(
            selected=frozenset(self._selected),
            traces=[],
            strategy=f"segment-{self.target}",
        )

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        return frozenset(getattr(self, "_selected", ()))

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`."""
        return {"k": self.k, "target": self.target}

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        return {"selected": list(self._selected), "done": self._done}

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        self._selected = list(state["selected"])  # type: ignore[arg-type]
        self._done = bool(state["done"])


# -- Section 3.3: the matroid secretary guess dispatcher --------------------


class MatroidSecretaryPolicy(OnlinePolicy):
    """Algorithm 3 for a *given* guess ``k = |S*|`` (the wrapper draws it).

    Small guesses hire the best independent singleton of the first half;
    large guesses run Algorithm 1 on the first half with every hire kept
    independent in all matroids.  Matroids are a runtime dependency —
    re-inject them via ``from_config(config, matroids=...)`` on resume.
    """

    name = "matroid"

    def __init__(self, matroids: Sequence, k_guess: int) -> None:
        super().__init__()
        if not matroids:
            raise BudgetError("need at least one matroid; use Algorithm 1 for none")
        if k_guess <= 0:
            raise BudgetError(f"k_guess must be positive, got {k_guess}")
        self.matroids = list(matroids)
        self.k_guess = int(k_guess)

    def _independent(self, subset) -> bool:
        return all(m.is_independent(subset) for m in self.matroids)

    def _setup(self) -> None:
        r = max(1, max(m.rank() for m in self.matroids))
        log_r = max(1, math.ceil(math.log2(r))) if r > 1 else 1
        half = self._n // 2
        if self.k_guess <= max(1, log_r):
            self._inner: OnlinePolicy = BestSingletonPolicy(
                require_finite=True,
                limit=half,
                feasible=lambda a: self._independent(frozenset({a})),
            )
            self._strategy = "best-singleton"
        else:
            self._inner = SegmentedSubmodularPolicy(
                self.k_guess,
                window_n=half,
                can_take=lambda cur, a: self._independent(frozenset(cur) | {a}),
                strategy=f"segments-k={self.k_guess}",
            )
            self._strategy = self._inner.strategy
        self._inner.bind(self._oracle, self._n)

    @property
    def done(self) -> bool:
        """Whether the policy will hire nothing further."""
        if self.bound:
            return self._inner.done
        return self._done

    def observe(self, pos: int, element: Hashable) -> None:
        """Advance the policy by one arrival at stream position *pos*."""
        self._inner.observe(pos, element)

    def observe_batch(self, pos0: int, elements: Sequence[Hashable]) -> None:
        """Vectorized observe: consume one revealed minibatch."""
        self._inner.observe_batch(pos0, elements)

    def finish(self) -> SecretaryResult:
        """Finalize at end of stream and return the result object."""
        result = self._inner.finish()
        return SecretaryResult(
            selected=result.selected,
            traces=result.traces,
            strategy=self._strategy,
        )

    def hired_set(self) -> FrozenSet[Hashable]:
        """The policy's current hired set."""
        inner = getattr(self, "_inner", None)
        return frozenset() if inner is None else inner.hired_set()

    def frontier(self) -> List[Hashable]:
        """Elements a resumed policy may still query (hires + pending)."""
        inner = getattr(self, "_inner", None)
        return [] if inner is None else inner.frontier()

    def config_dict(self) -> Dict[str, object]:
        """JSON-able constructor config; inverse of :meth:`from_config`."""
        return {"k_guess": self.k_guess}

    def state_dict(self) -> Dict[str, object]:
        """JSON-able mutable state; inverse of :meth:`load_state`."""
        return {"inner": self._inner.state_dict()}

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore mutable state from a :meth:`state_dict` payload."""
        self._inner.load_state(state["inner"])  # type: ignore[arg-type]


# -- registry ---------------------------------------------------------------

POLICIES: Dict[str, Type[OnlinePolicy]] = {}


def register_policy(cls: Type[OnlinePolicy]) -> Type[OnlinePolicy]:
    """Register a policy constructor under *name*."""
    if not cls.name:
        raise InvalidInstanceError("policy class must set a non-empty name")
    POLICIES[cls.name] = cls
    return cls


def policy_names() -> Tuple[str, ...]:
    """Sorted names of every registered policy."""
    return tuple(sorted(POLICIES))


def make_policy(name: str, config: Mapping[str, object], **deps) -> OnlinePolicy:
    """Rebuild a registered policy from its checkpoint config."""
    cls = POLICIES.get(name)
    if cls is None:
        raise InvalidInstanceError(
            f"unknown policy {name!r}; known: {policy_names()}"
        )
    return cls.from_config(config, **deps)


for _cls in (
    SegmentedSubmodularPolicy,
    BestSingletonPolicy,
    RobustTopKPolicy,
    BottleneckPolicy,
    KnapsackSecretaryPolicy,
    SubadditiveSegmentPolicy,
    MatroidSecretaryPolicy,
):
    register_policy(_cls)
