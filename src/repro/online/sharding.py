"""Sharded online runtime: one logical stream across S policy replicas.

The ROADMAP's distributed-stream-sharding item: an
:class:`~repro.online.arrivals.ArrivalSchedule` is a materialised order
plus a minibatch partition, so a logical stream can be split into ``S``
*shard schedules* — each element is assigned to a shard by a stable
content hash (:func:`repro.engine.hashing.derive_seed`, so the
assignment is a pure function of the element and survives process
boundaries), and each shard schedule preserves the global order's
relative order, batch structure, and timestamps restricted to its
elements.  One policy replica runs per shard over a
:class:`ShardView` of the utility (the same value oracle, ground set
restricted to the shard), and a feasibility-aware **merge** stage
re-ranks the union of per-shard hires by marginal gain under the global
oracle, taking candidates greedily subject to the task's constraint
(cardinality ``limit``, or any ``can_take`` hook — knapsack load,
matroid independence).

``S = 1`` is the identity: the single shard schedule *is* the input
schedule, the shard view delegates every query, and the merge stage is
skipped — so a one-shard :class:`ShardedRun` reproduces the unsharded
:class:`~repro.online.driver.OnlineRun` hires and oracle-call counts
bit-identically (pinned by ``tests/online/test_sharding.py``).

Checkpointing composes: a sharded checkpoint is a *manifest* (shard
count, salt, schema version) carrying one ordinary per-shard checkpoint
each — any subset of shards may be mid-stream, finished, or untouched,
and :func:`resume_sharded_run` rebuilds exactly that state.

The partition itself is an explicit, *versioned* layer: a
:class:`PartitionMap` is an append-only list of epochs ``(num_shards,
salt, consumed boundary)``, and lane sources consult the map at yield
time instead of baking the hash in.  A topology change (S → S') is a
new epoch appended by :func:`reshard_manifest`: every already-consumed
prefix (and its hired set, decision log, and fingerprint chain) stays
exactly where it is, pinned to its lane forever, and only the
unconsumed suffix is re-assigned under the newest epoch's hash.  S' = S
with the same salt is the identity, and any S → S' → S round-trip
re-derives the original assignment for every unconsumed element — so
the round-tripped manifest resumes and merges bit-identically to the
straight-through sharded run (pinned by
``tests/online/test_resharding.py``).
"""

from __future__ import annotations

import copy
import math
from bisect import bisect_right
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.kernels import evaluator_for
from repro.core.oracle import CountingOracle
from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.online.arrivals import (
    ArrivalSchedule,
    ArrivalSource,
    source_from_spec,
)
from repro.online.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    SHARDED_MANIFEST_SCHEMA_VERSION,
    SUPPORTED_MANIFEST_VERSIONS,
    check_schema_version,
    make_checkpoint,
    resume_run,
)
from repro.online.driver import OnlineRun
from repro.online.policies import OnlinePolicy
from repro.online.results import SecretaryResult

__all__ = [
    "SHARDED_CHECKPOINT_FORMAT",
    "SHARDED_MANIFEST_SCHEMA_VERSION",
    "SUPPORTED_MANIFEST_VERSIONS",
    "PartitionLaneSource",
    "PartitionMap",
    "ShardCounters",
    "ShardSource",
    "ShardView",
    "ShardedRun",
    "shard_of",
    "shard_schedule",
    "merge_hires",
    "knapsack_constraint",
    "matroid_constraint",
    "make_sharded_checkpoint",
    "partition_from_manifest",
    "partition_lane_source",
    "reshard_manifest",
    "resume_sharded_run",
]

SHARDED_CHECKPOINT_FORMAT = "repro-online-sharded-checkpoint/1"

CanTake = Callable[[FrozenSet[Hashable], Hashable], bool]


def shard_of(element: Hashable, num_shards: int, salt: int = 0) -> int:
    """Stable shard index for *element* under *num_shards* shards.

    Hash-derived through the engine's seed derivation (SHA-256 over the
    element's ``repr``), so the assignment is a pure function of
    ``(element, num_shards, salt)`` — identical in every process, under
    hash randomisation, and across releases.  *salt* lets two sharded
    runs over the same ground set use independent partitions.
    """
    # Imported lazily: engine.hashing lives in the engine package, whose
    # __init__ imports the task adapters, which import this module.
    from repro.engine.hashing import derive_seed

    if num_shards <= 0:
        raise InvalidInstanceError(f"num_shards must be positive, got {num_shards}")
    return derive_seed(int(salt), "shard", repr(element)) % num_shards


def shard_schedule(
    schedule: ArrivalSchedule, num_shards: int, salt: int = 0
) -> List[ArrivalSchedule]:
    """Partition *schedule* into *num_shards* shard schedules.

    Each shard's ``order`` is the subsequence of the global order whose
    elements hash to that shard (relative order preserved); each global
    minibatch contributes its per-shard intersection as one shard batch
    (empty intersections vanish, so revealed-together stays
    revealed-together within a shard); timestamps follow their
    arrivals.  Shards may be empty.  ``num_shards == 1`` returns the
    input schedule itself — the identity partition the S=1 bit-identity
    pin relies on.
    """
    if num_shards <= 0:
        raise InvalidInstanceError(f"num_shards must be positive, got {num_shards}")
    if num_shards == 1:
        return [schedule]
    assign = [shard_of(e, num_shards, salt) for e in schedule.order]
    orders: List[List[Hashable]] = [[] for _ in range(num_shards)]
    stamps: List[List[float]] = [[] for _ in range(num_shards)]
    sizes: List[List[int]] = [[] for _ in range(num_shards)]
    pos = 0
    for batch in schedule.batch_sizes:
        counts = [0] * num_shards
        for i in range(pos, pos + batch):
            s = assign[i]
            orders[s].append(schedule.order[i])
            if schedule.timestamps is not None:
                stamps[s].append(schedule.timestamps[i])
            counts[s] += 1
        for s, c in enumerate(counts):
            if c:
                sizes[s].append(c)
        pos += batch
    return [
        ArrivalSchedule(
            process=schedule.process,
            seed=schedule.seed,
            order=orders[s],
            batch_sizes=sizes[s],
            timestamps=None if schedule.timestamps is None else stamps[s],
            params={
                **schedule.params,
                "shard_index": s,
                "num_shards": num_shards,
                "shard_salt": int(salt),
            },
        )
        for s in range(num_shards)
    ]


class PartitionMap:
    """Versioned shard assignment: an append-only history of epochs.

    Epoch 0 is the run's base topology ``(num_shards, salt)``; every
    later epoch is one reshard, recording the new ``(num_shards, salt)``
    plus the per-lane ``consumed`` boundary — each lane's cursor at the
    moment the topology changed.  The boundaries are what make the map
    *deterministic without O(consumed) state*: replaying the epochs over
    the parent order (:meth:`lane_streams`) re-derives exactly which
    elements each lane had consumed (those stay pinned to that lane
    forever) and re-assigns every unconsumed element under the newest
    epoch's hash.

    A single-epoch map is byte-compatible with the pre-epoch runtime:
    its lane sources emit the old ``{"index", "num_shards", "salt"}``
    shard spec and filter by the same :func:`shard_of` hash.
    """

    def __init__(self, epochs: Sequence[Mapping[str, object]]) -> None:
        if not epochs:
            raise InvalidInstanceError("a partition map needs at least one epoch")
        normalized: List[Dict[str, object]] = []
        for k, epoch in enumerate(epochs):
            num_shards = int(epoch["num_shards"])  # type: ignore[arg-type]
            if num_shards < 1:
                raise InvalidInstanceError(
                    f"partition epoch {k}: num_shards must be >= 1, "
                    f"got {num_shards}"
                )
            entry: Dict[str, object] = {
                "num_shards": num_shards,
                "salt": int(epoch.get("salt", 0)),  # type: ignore[arg-type]
            }
            if k == 0:
                if epoch.get("consumed"):
                    raise InvalidInstanceError(
                        "partition epoch 0 is the base topology and "
                        "records no consumed boundary"
                    )
            else:
                consumed = epoch.get("consumed")
                if not isinstance(consumed, (list, tuple)):
                    raise InvalidInstanceError(
                        f"partition epoch {k} needs a per-lane 'consumed' "
                        "boundary list"
                    )
                boundary = [int(c) for c in consumed]
                if any(c < 0 for c in boundary):
                    raise InvalidInstanceError(
                        f"partition epoch {k}: negative consumed boundary "
                        f"{boundary}"
                    )
                entry["consumed"] = boundary
            normalized.append(entry)
        self._epochs = tuple(normalized)

    @classmethod
    def base(cls, num_shards: int, salt: int = 0) -> "PartitionMap":
        """The single-epoch map of a fresh run: ``(num_shards, salt)``."""
        return cls([{"num_shards": int(num_shards), "salt": int(salt)}])

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "PartitionMap":
        """Rebuild a map from its :meth:`payload` (checkpoint block)."""
        if not isinstance(payload, Mapping) or "epochs" not in payload:
            raise InvalidInstanceError(
                "partition payload needs an 'epochs' list"
            )
        return cls(payload["epochs"])  # type: ignore[arg-type]

    def payload(self) -> Dict[str, object]:
        """JSON-able epoch history (the manifest's ``partition`` block)."""
        return {"epochs": [dict(e) for e in self._epochs]}

    @property
    def epochs(self) -> Sequence[Mapping[str, object]]:
        """The epoch history, oldest first (read-only)."""
        return self._epochs

    @property
    def epoch(self) -> int:
        """Index of the newest epoch (0 for a never-resharded map)."""
        return len(self._epochs) - 1

    @property
    def single_epoch(self) -> bool:
        """Whether the map is the base topology with no reshard history."""
        return len(self._epochs) == 1

    @property
    def num_shards(self) -> int:
        """The active topology: the newest epoch's shard count."""
        return int(self._epochs[-1]["num_shards"])  # type: ignore[arg-type]

    @property
    def salt(self) -> int:
        """The newest epoch's hash salt."""
        return int(self._epochs[-1]["salt"])  # type: ignore[arg-type]

    def assign(self, element: Hashable) -> int:
        """Newest-epoch lane for an *unconsumed* element (pure hash)."""
        return shard_of(element, self.num_shards, self.salt)

    def lane_count(self) -> int:
        """Lanes that may hold state under this history.

        The maximum over every epoch's topology and boundary width: a
        lane retired by a shrink keeps existing (frozen at its consumed
        prefix) as long as it has state, so manifests may carry more
        lane entries than the active ``num_shards``.
        """
        lanes = 0
        for epoch in self._epochs:
            lanes = max(lanes, int(epoch["num_shards"]))  # type: ignore[arg-type]
            lanes = max(lanes, len(epoch.get("consumed") or ()))
        return lanes

    def reshard(
        self, num_shards: int, consumed: Sequence[int], *,
        salt: Optional[int] = None,
    ) -> "PartitionMap":
        """A new map with one more epoch appended.

        *consumed* is the per-lane cursor list at the moment of the
        change (one entry per current manifest lane); *salt* defaults to
        the current epoch's salt — which is exactly what makes an
        S → S' → S round-trip restore the original assignment.
        """
        return PartitionMap(
            list(self._epochs)
            + [{
                "num_shards": int(num_shards),
                "salt": self.salt if salt is None else int(salt),
                "consumed": [int(c) for c in consumed],
            }]
        )

    def lane_streams(
        self, order: Sequence[Hashable]
    ) -> List[Tuple[List[int], List[int]]]:
        """Replay the epoch history over the parent *order*.

        Returns one ``(pinned_positions, suffix_positions)`` pair per
        lane (:meth:`lane_count` of them): *pinned_positions* are the
        parent positions the lane consumed before some epoch boundary,
        **in consumption order**; *suffix_positions* are the unconsumed
        parent positions the newest epoch assigns to the lane, in parent
        order.  Every parent position lands in exactly one lane's pinned
        or suffix list.

        O(n · epochs): each epoch is one pass over the parent order —
        unpinned elements consume the lane's boundary quota front-first
        (that *is* the order the lane consumed them in) and everything
        past the quota re-hashes under the epoch's ``(num_shards,
        salt)``.
        """
        lanes = self.lane_count()
        order = list(order)
        first = self._epochs[0]
        lane = [
            shard_of(e, int(first["num_shards"]), int(first["salt"]))  # type: ignore[arg-type]
            for e in order
        ]
        pinned = [False] * len(order)
        pinned_by_lane: List[List[int]] = [[] for _ in range(lanes)]
        for k, epoch in enumerate(self._epochs[1:], start=1):
            boundary = list(epoch["consumed"])  # type: ignore[arg-type]
            quota = []
            for a in range(lanes):
                have = len(pinned_by_lane[a])
                # Lanes beyond the boundary list held no manifest entry
                # at this epoch; their cursor is whatever was pinned.
                want = int(boundary[a]) if a < len(boundary) else have
                if want < have:
                    raise InvalidInstanceError(
                        f"partition epoch {k}: lane {a} boundary {want} "
                        f"below its already-pinned prefix ({have})"
                    )
                quota.append(want - have)
            num_shards = int(epoch["num_shards"])  # type: ignore[arg-type]
            salt = int(epoch["salt"])  # type: ignore[arg-type]
            for p, e in enumerate(order):
                if pinned[p]:
                    continue
                a = lane[p]
                if quota[a] > 0:
                    pinned[p] = True
                    pinned_by_lane[a].append(p)
                    quota[a] -= 1
                else:
                    lane[p] = shard_of(e, num_shards, salt)
            leftover = [(a, q) for a, q in enumerate(quota) if q]
            if leftover:
                raise InvalidInstanceError(
                    f"partition epoch {k}: consumed boundary exceeds the "
                    f"stream (lanes with unmet quota: {leftover})"
                )
        suffix_by_lane: List[List[int]] = [[] for _ in range(lanes)]
        for p in range(len(order)):
            if not pinned[p]:
                suffix_by_lane[lane[p]].append(p)
        return [
            (pinned_by_lane[a], suffix_by_lane[a]) for a in range(lanes)
        ]


class ShardSource(ArrivalSource):
    """Lazy hash partition: one shard's view of a parent arrival source.

    Filters each parent minibatch to the elements hashing to this shard
    *at yield time* — no materialized pre-split — with shard-local
    positions, batch structure, and timestamps exactly matching the
    corresponding :func:`shard_schedule` entry (the streaming ≡
    materialized equivalence suite pins shard fingerprints equal).

    The source owns its parent exclusively: it pulls whole parent
    batches, so suspend state is the parent's O(1) state plus the
    pending (already-pulled, not-yet-emitted) tail of at most one batch.
    """

    def __init__(self, parent: ArrivalSource, index: int, num_shards: int,
                 *, salt: int = 0) -> None:
        if num_shards <= 0:
            raise InvalidInstanceError(
                f"num_shards must be positive, got {num_shards}"
            )
        if not (0 <= int(index) < int(num_shards)):
            raise InvalidInstanceError(
                f"shard index {index} outside [0, {num_shards})"
            )
        self._parent = parent
        self.index = int(index)
        self.partition = PartitionMap.base(int(num_shards), int(salt))
        self.num_shards = self.partition.num_shards
        self.salt = self.partition.salt
        parent_order = parent.order
        order = (
            None if parent_order is None
            else [e for e in parent_order
                  if self.partition.assign(e) == self.index]
        )
        n = None if order is None else len(order)
        super().__init__(
            parent.process, parent.seed,
            {
                **parent.params,
                "shard_index": self.index,
                "num_shards": self.num_shards,
                "shard_salt": self.salt,
            },
            n,
        )
        self._order = order
        self._pending: List[Hashable] = []
        self._pending_ts: Optional[List[float]] = None
        self._pending_new = False
        self._materialized: Optional[ArrivalSchedule] = None

    @property
    def order(self) -> Optional[List[Hashable]]:
        """The materialized arrival order (forces lazy generation)."""
        return self._order

    def _emit(self, limit: Optional[int]):
        while not self._pending:
            step = self._parent.take(None)
            if step is None:
                return None
            _pos0, batch, stamps = step
            keep = [
                i for i, e in enumerate(batch)
                if self.partition.assign(e) == self.index
            ]
            if keep:
                self._pending = [batch[i] for i in keep]
                self._pending_ts = (
                    None if stamps is None else [stamps[i] for i in keep]
                )
                self._pending_new = True
        hi = len(self._pending) if limit is None else min(limit, len(self._pending))
        elements = self._pending[:hi]
        stamps = None if self._pending_ts is None else self._pending_ts[:hi]
        starts = self._pending_new
        self._pending = self._pending[hi:]
        if self._pending_ts is not None:
            self._pending_ts = self._pending_ts[hi:]
        self._pending_new = False
        return elements, stamps, starts

    def spec(self) -> Dict[str, object]:
        """JSON-able stream identity: process name, seed, sorted params."""
        spec = self._parent.spec()
        spec["shard"] = {
            "index": self.index,
            "num_shards": self.num_shards,
            "salt": self.salt,
        }
        return spec

    def _extra_state(self) -> Dict[str, object]:
        return {
            "parent": self._parent.state_dict(),
            "pending": list(self._pending),
            "pending_ts": (
                None if self._pending_ts is None else list(self._pending_ts)
            ),
            "pending_new": self._pending_new,
        }

    def _restore_extra(self, state: Dict[str, object]) -> None:
        self._parent.restore(dict(state["parent"]))  # type: ignore[arg-type]
        self._pending = list(state.get("pending") or [])
        ts = state.get("pending_ts")
        self._pending_ts = None if ts is None else [float(t) for t in ts]  # type: ignore[union-attr]
        self._pending_new = bool(state.get("pending_new", False))

    def materialize(self) -> ArrivalSchedule:
        """The full remaining stream as an :class:`ArrivalSchedule`."""
        if self._materialized is None:
            self._materialized = shard_schedule(
                self._parent.materialize(), self.num_shards, salt=self.salt
            )[self.index]
        return self._materialized


class PartitionLaneSource(ArrivalSource):
    """One lane's stream under a multi-epoch :class:`PartitionMap`.

    The post-reshard replacement for :class:`ShardSource`: the lane's
    order is its pinned consumed prefix (every element the lane took
    before some epoch boundary, in consumption order) followed by the
    unconsumed suffix the newest epoch assigns to it (in parent order).
    A resumed lane's cursor always sits at or past the prefix boundary,
    so emission only ever walks the suffix — the prefix exists to keep
    the cursor = consumed-count invariant (and hence O(1) restore and
    fingerprint-chain continuity) intact across topology changes.

    Batch structure groups consecutive lane arrivals by their parent
    minibatch (revealed-together stays revealed-together within a lane,
    exactly like :class:`ShardSource`) — across the prefix/suffix
    boundary too, so a lane suspended mid-batch resumes the batch's tail
    without opening a new one.  Suspend state is the plain cursor +
    fingerprint pair — emission is purely positional, so no parent
    stream state is needed.
    """

    def __init__(self, parent: ArrivalSource, index: int,
                 partition: PartitionMap) -> None:
        lanes = partition.lane_count()
        if not (0 <= int(index) < lanes):
            raise InvalidInstanceError(
                f"lane index {index} outside [0, {lanes})"
            )
        self._parent = parent
        self.index = int(index)
        self.partition = partition
        schedule = parent.materialize()
        pinned, suffix = partition.lane_streams(schedule.order)[self.index]
        positions = list(pinned) + list(suffix)
        order = [schedule.order[p] for p in positions]
        ts = schedule.timestamps
        stamps = None if ts is None else [float(ts[p]) for p in positions]
        parent_starts = [0]
        for size in schedule.batch_sizes:
            parent_starts.append(parent_starts[-1] + size)
        # Group consecutive lane arrivals sharing a parent minibatch —
        # across the prefix/suffix boundary too, so a lane suspended
        # mid-batch resumes its tail with ``starts_new_batch=False``
        # exactly like an un-resharded ShardSource would.
        sizes: List[int] = []
        last_batch = None
        for p in positions:
            b = bisect_right(parent_starts, p) - 1
            if sizes and b == last_batch:
                sizes[-1] += 1
            else:
                sizes.append(1)
            last_batch = b
        super().__init__(
            parent.process, parent.seed,
            {
                **parent.params,
                "shard_index": self.index,
                "num_shards": partition.num_shards,
                "shard_salt": partition.salt,
                "partition_epoch": partition.epoch,
            },
            len(order),
        )
        self._order = order
        self._stamps = stamps
        self._suffix_start = len(pinned)
        starts = [0]
        for size in sizes:
            starts.append(starts[-1] + size)
        self._starts = starts  # batch start positions, len = #batches + 1
        self._materialized: Optional[ArrivalSchedule] = None

    @property
    def order(self) -> List[Hashable]:
        """The materialized arrival order (forces lazy generation)."""
        return self._order

    @property
    def suffix_start(self) -> int:
        """First lane position past the pinned consumed prefix."""
        return self._suffix_start

    def _emit(self, limit: Optional[int]):
        if self._cursor >= len(self._order):
            return None
        b = bisect_right(self._starts, self._cursor) - 1
        end = self._starts[b + 1]
        hi = end if limit is None else min(end, self._cursor + limit)
        elements = self._order[self._cursor:hi]
        stamps = (
            None if self._stamps is None else self._stamps[self._cursor:hi]
        )
        return elements, stamps, self._cursor == self._starts[b]

    def spec(self) -> Dict[str, object]:
        """JSON-able stream identity: process name, seed, sorted params."""
        spec = self._parent.spec()
        spec["shard"] = {
            "index": self.index,
            "partition": self.partition.payload(),
        }
        return spec

    def materialize(self) -> ArrivalSchedule:
        """The full remaining stream as an :class:`ArrivalSchedule`."""
        if self._materialized is None:
            sizes = [
                self._starts[i + 1] - self._starts[i]
                for i in range(len(self._starts) - 1)
            ]
            self._materialized = ArrivalSchedule(
                process=self.process, seed=self.seed,
                order=list(self._order), batch_sizes=sizes,
                timestamps=(
                    None if self._stamps is None else list(self._stamps)
                ),
                params=dict(self.params),
            )
        return self._materialized


def partition_lane_source(
    parent: ArrivalSource, index: int, partition: PartitionMap
) -> ArrivalSource:
    """Lane *index* of *parent* under *partition*.

    Single-epoch maps stay on the byte-compatible fast paths — the
    parent itself for a one-shard map, :class:`ShardSource` (lazy
    filtering, old-style spec) otherwise — so never-resharded runs keep
    their exact pre-epoch checkpoints.  Multi-epoch maps build a
    :class:`PartitionLaneSource`.
    """
    if partition.single_epoch:
        if partition.num_shards == 1:
            return parent
        return ShardSource(
            parent, index, partition.num_shards, salt=partition.salt
        )
    return PartitionLaneSource(parent, index, partition)


class ShardView(SetFunction):
    """The global utility with its ground set restricted to one shard.

    Pure delegation: values (and any kernel evaluator below) come from
    the base function, so a shard replica scores its candidates exactly
    as the unsharded run would — only the advertised ground set shrinks,
    which is what lets the per-shard :class:`~repro.online.driver.OnlineRun`
    accept the shard schedule.
    """

    def __init__(self, base: SetFunction, elements: Iterable[Hashable]) -> None:
        self.base = base
        self._ground = frozenset(elements)
        extra = self._ground - base.ground_set
        if extra:
            raise InvalidInstanceError(
                f"shard elements outside the base ground set: "
                f"{sorted(map(repr, extra))[:5]}"
            )

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        """The shard-restricted ground set."""
        return self._ground

    def value(self, subset: FrozenSet[Hashable]) -> float:
        """Delegate valuation to the shared base utility."""
        return self.base.value(frozenset(subset))

    def fast_evaluator(self, backend=None):
        """Pass through the base utility's vectorized kernel, if any."""
        backend = self.resolve_backend_arg(backend)
        return getattr(self.base, "fast_evaluator", lambda backend=None: None)(backend)


def knapsack_constraint(
    weights: Mapping[Hashable, float], capacity: float = 1.0
) -> CanTake:
    """``can_take`` for a single knapsack over reduced per-item weights."""
    def can_take(current: FrozenSet[Hashable], element: Hashable) -> bool:
        """Feasibility hook for the merge: may *element* join *selected*?"""
        load = sum(float(weights.get(e, 0.0)) for e in current)
        return load + float(weights.get(element, math.inf)) <= capacity + 1e-9
    return can_take


def matroid_constraint(matroids: Sequence) -> CanTake:
    """``can_take`` keeping the merged set independent in every matroid."""
    def can_take(current: FrozenSet[Hashable], element: Hashable) -> bool:
        """Feasibility hook for the merge: may *element* join *selected*?"""
        candidate = frozenset(current) | {element}
        return all(m.is_independent(candidate) for m in matroids)
    return can_take


def merge_hires(
    utility: SetFunction,
    candidates: Sequence[Hashable],
    *,
    can_take: Optional[CanTake] = None,
    limit: Optional[int] = None,
) -> List[Hashable]:
    """Greedily re-rank *candidates* by marginal gain under *utility*.

    Each round scores every remaining candidate against the merged
    selection (one vectorized pass with a kernel-backed utility) and
    takes the best strictly-improving one that *can_take* admits,
    stopping at *limit* hires, when nothing improves, or when nothing
    admissible remains.  Ties break by candidate ``repr`` so the merge
    is deterministic across processes.  The result is always feasible:
    every prefix passed *can_take* and respected *limit*.
    """
    pool = sorted(set(candidates), key=repr)
    if not pool:
        return []
    evaluator = evaluator_for(utility)
    chosen: List[Hashable] = []
    current = evaluator.current_value
    while pool and (limit is None or len(chosen) < limit):
        gains = evaluator.gains(pool)
        ranked = sorted(range(len(pool)), key=lambda i: (-float(gains[i]), repr(pool[i])))
        picked = None
        for i in ranked:
            if not float(gains[i]) > 0.0:
                break
            if can_take is not None and not can_take(frozenset(chosen), pool[i]):
                continue
            picked = i
            break
        if picked is None:
            break
        element = pool.pop(picked)
        current += float(gains[picked])
        chosen.append(element)
        evaluator.advance(element, current)
    return chosen


OracleFactory = Callable[[int, SetFunction], SetFunction]
PolicyFactory = Callable[[int, ArrivalSchedule], OnlinePolicy]


class ShardCounters:
    """The standard ``oracle_factory``: one counting oracle per shard.

    Pass an instance as ``oracle_factory`` to
    :meth:`ShardedRun.from_schedule` / :func:`resume_sharded_run` and
    read ``calls`` (the sum over shards) afterwards — every consumer
    that reports per-shard oracle work uses this same accounting.
    """

    def __init__(self) -> None:
        self.countings: List[CountingOracle] = []

    def __call__(self, index: int, view: SetFunction) -> CountingOracle:
        counting = CountingOracle(view)
        self.countings.append(counting)
        return counting

    @property
    def calls(self) -> int:
        """Oracle calls consumed by this shard."""
        return sum(c.calls for c in self.countings)


class ShardedRun:
    """S policy replicas over one hash-partitioned arrival schedule.

    ``utility`` is the *global* (unrestricted) function the merge stage
    ranks against; each shard run owns whatever oracle its factory
    wrapped around the shard view (the session layer counts per shard).
    With a single shard the run delegates wholly — no merge, no extra
    oracle traffic — so S=1 is bit-identical to an unsharded
    :class:`~repro.online.driver.OnlineRun`.
    """

    def __init__(
        self,
        utility: SetFunction,
        runs: Sequence[OnlineRun],
        *,
        can_take: Optional[CanTake] = None,
        limit: Optional[int] = None,
        salt: int = 0,
        partition: Optional[PartitionMap] = None,
    ) -> None:
        if not runs:
            raise InvalidInstanceError("a sharded run needs at least one shard")
        self.utility = utility
        self.runs = list(runs)
        self.can_take = can_take
        self.limit = limit
        self.salt = int(salt)
        #: Multi-epoch partition history, present iff the run was resumed
        #: from a resharded (schema-v3) manifest — re-suspending must
        #: carry it forward so the epoch history survives every hop.
        self.partition = partition
        self.merge_calls = 0
        self._result: Optional[SecretaryResult] = None

    @classmethod
    def from_schedule(
        cls,
        utility: SetFunction,
        schedule: ArrivalSchedule,
        num_shards: int,
        policy_factory: PolicyFactory,
        *,
        oracle_factory: Optional[OracleFactory] = None,
        can_take: Optional[CanTake] = None,
        limit: Optional[int] = None,
        salt: int = 0,
    ) -> "ShardedRun":
        """Partition *schedule* and build one replica run per shard.

        *policy_factory* gets ``(shard_index, shard_schedule)`` and
        returns a fresh policy; *oracle_factory* gets ``(shard_index,
        shard_view)`` and may wrap it (counting, caching) — the wrapped
        oracle is what the shard's driver reveals to.
        """
        shards = shard_schedule(schedule, num_shards, salt=salt)
        runs = []
        for i, shard in enumerate(shards):
            view = ShardView(utility, shard.order)
            oracle = view if oracle_factory is None else oracle_factory(i, view)
            runs.append(OnlineRun(oracle, shard, policy_factory(i, shard)))
        return cls(
            utility, runs, can_take=can_take, limit=limit, salt=salt
        )

    @classmethod
    def from_source(
        cls,
        utility: SetFunction,
        source_factory: Callable[[], ArrivalSource],
        num_shards: int,
        policy_factory: PolicyFactory,
        *,
        oracle_factory: Optional[OracleFactory] = None,
        can_take: Optional[CanTake] = None,
        limit: Optional[int] = None,
        salt: int = 0,
    ) -> "ShardedRun":
        """Lazy-partition construction: no materialized pre-split.

        *source_factory* builds a fresh parent source per shard (each
        shard filters its own stream clone at yield time through
        :class:`ShardSource`).  ``num_shards == 1`` feeds the parent
        source to the single replica directly — the identity partition
        the S=1 bit-identity pin relies on.  *policy_factory* gets
        ``(shard_index, shard_source)``; the source exposes ``n`` like a
        schedule does.
        """
        if num_shards <= 0:
            raise InvalidInstanceError(
                f"num_shards must be positive, got {num_shards}"
            )
        runs = []
        for i in range(num_shards):
            parent = source_factory()
            src: ArrivalSource = (
                parent if num_shards == 1
                else ShardSource(parent, i, num_shards, salt=salt)
            )
            view = ShardView(utility, src.order or ())
            oracle = view if oracle_factory is None else oracle_factory(i, view)
            runs.append(OnlineRun(oracle, src, policy_factory(i, src)))
        return cls(
            utility, runs, can_take=can_take, limit=limit, salt=salt
        )

    # -- state ----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of policy replicas the stream is split across."""
        return len(self.runs)

    @property
    def n(self) -> int:
        """Total arrivals across all shards (= the base schedule's n)."""
        return sum(run.n for run in self.runs)

    @property
    def cursor(self) -> int:
        """Total consumed arrivals across all shards."""
        return sum(run.cursor for run in self.runs)

    @property
    def cursors(self) -> List[int]:
        """Per-shard consumed-arrival counts."""
        return [run.cursor for run in self.runs]

    @property
    def finished(self) -> bool:
        """Whether every arrival has been consumed or the policy is done."""
        return all(run.finished for run in self.runs)

    # -- execution -------------------------------------------------------

    def run(self, max_arrivals: Optional[int] = None) -> "ShardedRun":
        """Consume up to *max_arrivals* more arrivals, shards in order.

        The budget drains shard 0 first, then flows to shard 1, and so
        on — deterministic, and a suspended run resumes exactly where
        the budget ran out (possibly mid-batch inside one shard while
        later shards are untouched).
        """
        budget = None if max_arrivals is None else int(max_arrivals)
        for run in self.runs:
            if budget is not None and budget <= 0:
                break
            before = run.cursor
            run.run(budget)
            if budget is not None:
                budget -= run.cursor - before
        return self

    def run_shard(
        self, index: int, max_arrivals: Optional[int] = None
    ) -> "ShardedRun":
        """Advance a single shard (for skewed/out-of-band progress)."""
        self.runs[index].run(max_arrivals)
        return self

    def feed_shard(
        self, index: int, pos0: int, batch: Sequence[Hashable]
    ) -> "ShardedRun":
        """Consume one externally-pulled batch on shard *index*.

        The serving layer's push path for sharded tenants: one queue
        consumer per shard calls this with batches its producer pulled
        from that shard's own :class:`ShardSource`, mirroring
        :meth:`OnlineRun.feed <repro.online.driver.OnlineRun.feed>` —
        shard hires and oracle counts match the pull path bit for bit.
        """
        self.runs[index].feed(pos0, batch)
        return self

    def result(self) -> SecretaryResult:
        """Merge the per-shard hires into the final solution (cached).

        Single-shard runs return the shard's own result object — the
        merge stage (and its oracle traffic) exists only when there is
        something to reconcile.  The merge ranks on a counting wrapper
        of the global utility, so ``merge_calls`` reports its price
        separately from the shards' online query counts.
        """
        if self._result is None:
            if len(self.runs) == 1:
                self._result = self.runs[0].result()
            else:
                candidates = [
                    e for run in self.runs for e in run.result().selected
                ]
                counting = CountingOracle(self.utility)
                merged = merge_hires(
                    counting, candidates, can_take=self.can_take, limit=self.limit
                )
                self.merge_calls = counting.calls
                self._result = SecretaryResult(
                    selected=frozenset(merged),
                    traces=[],
                    strategy="sharded-merge",
                )
        return self._result

    def shard_results(self) -> List[SecretaryResult]:
        """Per-shard results (each shard must be finished)."""
        return [run.result() for run in self.runs]


# -- checkpoint codec --------------------------------------------------------


def make_sharded_checkpoint(
    run: ShardedRun, extra: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Serialise *run* as a manifest of ordinary per-shard checkpoints.

    Each entry under ``"shards"`` is a standard
    :func:`~repro.online.checkpoint.make_checkpoint` payload (source
    spec/state + cursor + decision log + policy config/state), so any
    subset of shards — mid-stream, finished, or untouched — round-trips.  ``"limit"`` records the
    merge cardinality; ``can_take`` hooks are runtime dependencies the
    resuming caller re-injects (the session layer derives them from the
    embedded recipe).
    """
    payload: Dict[str, object] = {
        "format": SHARDED_CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "num_shards": run.num_shards,
        "salt": run.salt,
        "limit": run.limit,
        "shards": [make_checkpoint(r) for r in run.runs],
    }
    if run.partition is not None and not run.partition.single_epoch:
        # Resharded runs re-suspend at schema v3 with their full epoch
        # history; never-resharded manifests keep their exact v2 bytes.
        payload["schema_version"] = SHARDED_MANIFEST_SCHEMA_VERSION
        payload["partition"] = run.partition.payload()
    if extra is not None:
        payload["instance"] = dict(extra)
    return payload


def partition_from_manifest(manifest: Mapping[str, object]) -> PartitionMap:
    """The manifest's partition map.

    v3 manifests carry it verbatim under ``"partition"``; older
    (never-resharded) manifests synthesise the single-epoch base map
    from their ``num_shards``/``salt`` fields — which is exactly the
    migration shim: every pre-epoch manifest is a valid epoch-0 history.
    """
    block = manifest.get("partition")
    if block:
        return PartitionMap.from_payload(block)  # type: ignore[arg-type]
    return PartitionMap.base(
        int(manifest.get("num_shards", 1)),  # type: ignore[arg-type]
        int(manifest.get("salt", 0)),  # type: ignore[arg-type]
    )


def reshard_manifest(
    manifest: Mapping[str, object],
    num_shards: int,
    utility: SetFunction,
    *,
    policy_factory: Optional[PolicyFactory] = None,
    salt: Optional[int] = None,
) -> Dict[str, object]:
    """Re-partition a suspended sharded manifest to *num_shards* lanes.

    Appends one epoch to the manifest's :class:`PartitionMap` with the
    current per-lane cursors as the consumed boundary: every consumed
    prefix — hires, decision log, policy state, fingerprint chain —
    stays exactly where it is, and only the unconsumed suffix is
    re-assigned under the new epoch's hash.  Carried lane entries keep
    their cursor and fingerprint state verbatim (only the source spec is
    rewritten to the partition form); lanes added by a grow are seeded
    as fresh cursor-0 entries via *policy_factory*; trailing lanes whose
    cursor is still 0 are dropped by a shrink (interior lanes never
    move — lane indices are positional and pinned prefixes refer to
    them).

    *salt* defaults to the current epoch's salt, which makes
    ``num_shards == current`` (and any S → S' → S round-trip) the
    identity: the round-tripped manifest resumes and merges
    bit-identically to the straight-through run.  The output is a
    schema-v3 manifest carrying the full epoch history; the input is
    not modified.
    """
    if manifest.get("format") != SHARDED_CHECKPOINT_FORMAT:
        raise InvalidInstanceError(
            f"not a {SHARDED_CHECKPOINT_FORMAT} payload: "
            f"{manifest.get('format')!r}"
        )
    check_schema_version(
        manifest, "sharded checkpoint", supported=SUPPORTED_MANIFEST_VERSIONS
    )
    if int(num_shards) <= 0:
        raise InvalidInstanceError(
            f"num_shards must be positive, got {num_shards}"
        )
    entries = manifest.get("shards")
    if not isinstance(entries, list) or not entries:
        raise InvalidInstanceError("sharded checkpoint has no shard entries")
    partition = partition_from_manifest(manifest)
    if (
        int(num_shards) == partition.num_shards
        and (salt is None or int(salt) == partition.salt)
    ):
        return copy.deepcopy(dict(manifest))
    for i, entry in enumerate(entries):
        if int(entry.get("schema_version", 1)) < 2:
            raise InvalidInstanceError(
                f"shard {i} is a v1 checkpoint entry with no rebuildable "
                "source spec; resume and re-checkpoint it before resharding"
            )
    cursors = [int(e.get("cursor", 0)) for e in entries]
    new_partition = partition.reshard(int(num_shards), cursors, salt=salt)
    # The shared parent stream: any entry's source spec minus its shard
    # filter and suspend state (every lane wraps the same parent).
    parent_spec = {
        k: v for k, v in dict(entries[0]["source"]).items()
        if k not in ("shard", "state")
    }
    # Keep lanes [0, keep): at least the new topology, plus every lane
    # with consumed state.  Only *trailing* cursor-0 lanes are dropped —
    # lane indices are positional and must not shift.
    keep = int(num_shards)
    for i, c in enumerate(cursors):
        if c > 0:
            keep = max(keep, i + 1)
    new_entries: List[Dict[str, object]] = []
    for i in range(keep):
        lane_src = partition_lane_source(
            source_from_spec(copy.deepcopy(parent_spec), utility),
            i, new_partition,
        )
        if i < len(entries):
            entry = copy.deepcopy(dict(entries[i]))
            old_state = dict(entry["source"].get("state") or {})
            spec = lane_src.spec()
            spec["state"] = {
                "cursor": int(old_state.get("cursor", entry.get("cursor", 0))),
                "fingerprint": dict(old_state["fingerprint"]),  # type: ignore[arg-type]
            }
            entry["source"] = spec
            new_entries.append(entry)
        else:
            if policy_factory is None:
                raise InvalidInstanceError(
                    f"resharding to {num_shards} shards adds lane {i}; "
                    "a policy_factory is required to seed its entry"
                )
            view = ShardView(utility, lane_src.order or ())
            run = OnlineRun(view, lane_src, policy_factory(i, lane_src))
            new_entries.append(make_checkpoint(run))
    out: Dict[str, object] = {
        "format": SHARDED_CHECKPOINT_FORMAT,
        "schema_version": SHARDED_MANIFEST_SCHEMA_VERSION,
        "num_shards": keep,
        "salt": new_partition.salt,
        "limit": manifest.get("limit"),
        "partition": new_partition.payload(),
        "shards": new_entries,
    }
    if manifest.get("instance") is not None:
        out["instance"] = copy.deepcopy(dict(manifest["instance"]))  # type: ignore[arg-type]
    return out


def resume_sharded_run(
    checkpoint: Mapping[str, object],
    utility: SetFunction,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    policies: Optional[Sequence[OnlinePolicy]] = None,
    deps: Optional[Mapping[str, object]] = None,
    can_take: Optional[CanTake] = None,
) -> ShardedRun:
    """Rebuild a :class:`ShardedRun` from its manifest checkpoint.

    Every shard resumes through the ordinary
    :func:`~repro.online.checkpoint.resume_run` path (v2: O(selected)
    source rebuild + frontier reveal; v1 entries: legacy prefix
    re-reveal) against a fresh :class:`ShardView` of
    *utility* — optionally wrapped by *oracle_factory* (counting).
    *policies*/*deps* forward to the per-shard resume for policies with
    non-serializable dependencies; *can_take* re-injects the merge
    constraint.
    """
    if checkpoint.get("format") != SHARDED_CHECKPOINT_FORMAT:
        raise InvalidInstanceError(
            f"not a {SHARDED_CHECKPOINT_FORMAT} payload: "
            f"{checkpoint.get('format')!r}"
        )
    check_schema_version(
        checkpoint, "sharded checkpoint", supported=SUPPORTED_MANIFEST_VERSIONS
    )
    shard_payloads = checkpoint.get("shards")
    if not isinstance(shard_payloads, list) or not shard_payloads:
        raise InvalidInstanceError("sharded checkpoint has no shard entries")
    if len(shard_payloads) != int(checkpoint.get("num_shards", len(shard_payloads))):
        raise InvalidInstanceError(
            f"sharded checkpoint manifest declares {checkpoint.get('num_shards')} "
            f"shards but carries {len(shard_payloads)}"
        )
    runs = []
    for i, shard_ck in enumerate(shard_payloads):
        source = None
        if int(shard_ck.get("schema_version", 1)) >= 2:
            # v2 entry: rebuild the shard's source from its spec over
            # the *base* utility (stream construction must not count as
            # oracle work), then restrict the view to its elements.
            source = source_from_spec(shard_ck.get("source"), utility)
            order = source.order or ()
        else:
            # v1 entry (migration shim): the shard order is embedded.
            order = shard_ck["schedule"]["order"]  # type: ignore[index]
        view = ShardView(utility, order)
        oracle = view if oracle_factory is None else oracle_factory(i, view)
        runs.append(
            resume_run(
                shard_ck,
                oracle,
                policy=None if policies is None else policies[i],
                deps=deps,
                source=source,
            )
        )
    limit = checkpoint.get("limit")
    partition = partition_from_manifest(checkpoint)
    return ShardedRun(
        utility,
        runs,
        can_take=can_take,
        limit=None if limit is None else int(limit),  # type: ignore[arg-type]
        salt=int(checkpoint.get("salt", 0)),  # type: ignore[arg-type]
        partition=None if partition.single_epoch else partition,
    )
