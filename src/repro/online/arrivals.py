"""Pluggable arrival processes — how elements reach an online policy.

The paper's model is a single uniform-random permutation; the runtime
generalises that into a registry of *arrival processes*, each a builder
``(utility, seed, **params) -> ArrivalSchedule``:

``uniform``
    The paper's model.  Bit-identical to the order
    :class:`~repro.secretary.stream.SecretaryStream` draws for the same
    seed, so every legacy experiment replays exactly.
``sorted_desc`` / ``sorted_asc``
    Adversarial deterministic orders by singleton value (descending
    defeats observation windows: the best element arrives first).
``bursty``
    The uniform permutation delivered in random minibatches (geometric
    sizes) — arrivals within a burst are interviewed together, which is
    what lets the driver score a whole burst in one kernel call.
``poisson``
    The uniform permutation with exponential interarrival timestamps;
    arrivals sharing an integer tick form one minibatch (a service-style
    "drain the queue once per tick" pattern).
``sliding_window``
    Replay of the sorted-descending order through a bounded shuffle
    buffer of size ``window`` — locally shuffled, globally sorted, the
    classic "almost sorted" replay trace.  An element can arrive at most
    ``window - 1`` positions earlier than its sorted position.

All randomness is seed-derived (child seeds via
:func:`repro.engine.hashing.derive_seed`), so a schedule is a pure
function of ``(utility, process, seed, params)`` and its
:meth:`ArrivalSchedule.fingerprint` pins instance provenance the same
way the engine's instance fingerprints do.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.rng import as_generator, random_permutation

__all__ = [
    "ArrivalSchedule",
    "ArrivalFingerprint",
    "ArrivalSource",
    "ScheduleSource",
    "BurstySource",
    "ARRIVAL_PROCESSES",
    "ARRIVAL_SOURCES",
    "register_arrival_process",
    "register_arrival_source",
    "build_arrival_schedule",
    "build_arrival_source",
    "as_arrival_source",
    "source_from_spec",
    "arrival_process_names",
]

SCHEDULE_FORMAT = "repro-arrival-schedule/1"

FINGERPRINT_FORMAT = "repro-arrival-fingerprint/2"

SOURCE_SPEC_FORMAT = "repro-arrival-source/1"


def _canonical(payload) -> str:
    """Canonical JSON (same convention as ``engine.hashing``), inlined
    so per-arrival fingerprint updates never cross the engine import."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


class ArrivalFingerprint:
    """Incrementally-maintained content hash of an arrival stream.

    A chained SHA-256: the chain starts from a canonical-JSON header
    ``(process, seed, params)`` and folds in one record per arrival —
    ``(repr(element), starts_new_batch, timestamp)`` — so the digest
    after *c* arrivals is a pure function of the stream's prefix.  The
    ``(chain, count)`` pair is plain JSON-able state: a suspended source
    resumes the hash in O(1) instead of replaying the prefix, and a
    fully drained source's digest equals
    :meth:`ArrivalSchedule.fingerprint` of the materialized schedule
    (the property the fingerprint-equivalence suite pins).
    """

    def __init__(self, header: Dict[str, object], *, chain: Optional[str] = None,
                 count: int = 0) -> None:
        self._header = dict(header)
        if chain is None:
            chain = hashlib.sha256(
                _canonical(self._header).encode("utf-8")
            ).hexdigest()
        self._chain = str(chain)
        self._count = int(count)

    @classmethod
    def for_stream(cls, process: str, seed, params: Dict[str, object],
                   ) -> "ArrivalFingerprint":
        """Fresh fingerprint chain for one (process, seed, params) stream."""
        return cls({
            "format": FINGERPRINT_FORMAT,
            "process": process,
            "seed": seed,
            "params": dict(params),
        })

    def update(self, element: Hashable, new_batch: bool,
               timestamp: Optional[float]) -> None:
        """Extend the chain with one revealed arrival."""
        record = _canonical([repr(element), bool(new_batch), timestamp])
        self._chain = hashlib.sha256(
            (self._chain + record).encode("utf-8")
        ).hexdigest()
        self._count += 1

    @property
    def digest(self) -> str:
        """Current chain digest (hex SHA-256)."""
        return self._chain

    @property
    def count(self) -> int:
        """Arrivals hashed into the chain so far."""
        return self._count

    def state_dict(self) -> Dict[str, object]:
        """JSON-able chain state; inverse of :meth:`from_state`."""
        return {"chain": self._chain, "count": self._count}

    @classmethod
    def from_state(cls, header: Dict[str, object],
                   state: Dict[str, object]) -> "ArrivalFingerprint":
        """Resume a chain from its checkpointed (chain, count) state."""
        return cls(header, chain=str(state["chain"]), count=int(state["count"]))  # type: ignore[arg-type]


@dataclass
class ArrivalSchedule:
    """A fully materialised arrival plan over a ground set.

    ``order`` enumerates the arrivals; ``batch_sizes`` partitions it
    into the minibatches the driver reveals together (all 1 for
    per-arrival processes); ``timestamps`` optionally attaches arrival
    times (Poisson process).  The schedule is plain data — JSON-able
    whenever the elements are — which is what makes checkpoints
    self-contained.
    """

    process: str
    seed: Optional[int]
    order: List[Hashable]
    batch_sizes: List[int]
    timestamps: Optional[List[float]] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if sum(self.batch_sizes) != len(self.order):
            raise InvalidInstanceError(
                f"batch sizes sum to {sum(self.batch_sizes)}, "
                f"order has {len(self.order)} arrivals"
            )
        if any(b <= 0 for b in self.batch_sizes):
            raise InvalidInstanceError("batch sizes must be positive")
        if self.timestamps is not None and len(self.timestamps) != len(self.order):
            raise InvalidInstanceError("one timestamp per arrival required")

    @property
    def n(self) -> int:
        """Total stream length."""
        return len(self.order)

    def __len__(self) -> int:
        return len(self.order)

    def batches(self, start: int = 0) -> Iterator[Tuple[int, List[Hashable]]]:
        """Yield ``(first_position, elements)`` minibatches from *start*.

        A *start* inside a batch yields the batch's unconsumed tail
        first — how a run resumed mid-burst continues without replaying
        decided arrivals.
        """
        pos = 0
        for size in self.batch_sizes:
            end = pos + size
            if end > start:
                lo = max(pos, start)
                yield lo, self.order[lo:end]
            pos = end

    def payload(self) -> Dict[str, object]:
        """JSON-able round-trippable form (checkpoints embed this)."""
        for e in self.order:
            if not isinstance(e, (str, int)):
                raise InvalidInstanceError(
                    f"schedule with element {e!r} is not JSON round-trippable; "
                    "checkpointable streams need str/int elements"
                )
        return {
            "format": SCHEDULE_FORMAT,
            "process": self.process,
            "seed": self.seed,
            "order": list(self.order),
            "batch_sizes": list(self.batch_sizes),
            "timestamps": None if self.timestamps is None else list(self.timestamps),
            # Sorted so every renderer of the payload (checkpoint files,
            # ``repro online inspect``, docs examples) prints the same
            # key order regardless of how the params dict was assembled.
            "params": dict(sorted(self.params.items())),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ArrivalSchedule":
        """Rebuild from a checkpoint-embedded JSON payload."""
        if payload.get("format") != SCHEDULE_FORMAT:
            raise InvalidInstanceError(
                f"not a {SCHEDULE_FORMAT} payload: {payload.get('format')!r}"
            )
        return cls(
            process=str(payload["process"]),
            seed=payload["seed"],  # type: ignore[arg-type]
            order=list(payload["order"]),  # type: ignore[arg-type]
            batch_sizes=[int(b) for b in payload["batch_sizes"]],  # type: ignore[union-attr]
            timestamps=(
                None if payload.get("timestamps") is None
                else [float(t) for t in payload["timestamps"]]  # type: ignore[union-attr]
            ),
            params=dict(payload.get("params") or {}),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the schedule (provenance anchor).

        Defined as the fully-advanced :class:`ArrivalFingerprint` chain,
        so a lazily-yielding :class:`ArrivalSource` that emits the same
        stream reaches the same digest without ever materializing.
        """
        fp = ArrivalFingerprint.for_stream(self.process, self.seed, self.params)
        pos = 0
        for size in self.batch_sizes:
            for i in range(pos, pos + size):
                fp.update(
                    self.order[i], i == pos,
                    None if self.timestamps is None else self.timestamps[i],
                )
            pos += size
        return fp.digest


ProcessBuilder = Callable[..., ArrivalSchedule]

ARRIVAL_PROCESSES: Dict[str, ProcessBuilder] = {}


def register_arrival_process(name: str, builder: ProcessBuilder) -> ProcessBuilder:
    """Register *builder* under *name* (last registration wins)."""
    if not name:
        raise InvalidInstanceError("arrival process needs a non-empty name")
    ARRIVAL_PROCESSES[name] = builder
    return builder


def arrival_process_names() -> Tuple[str, ...]:
    """Registered process names, sorted (stable CLI/docs order)."""
    return tuple(sorted(ARRIVAL_PROCESSES))


def build_arrival_schedule(
    process: str, utility: SetFunction, seed, **params
) -> ArrivalSchedule:
    """Build *process*'s schedule over *utility*'s ground set."""
    builder = ARRIVAL_PROCESSES.get(process)
    if builder is None:
        raise InvalidInstanceError(
            f"unknown arrival process {process!r}; known: {arrival_process_names()}"
        )
    try:
        return builder(utility, seed, **params)
    except TypeError as exc:
        # An unexpected keyword (user-supplied --process-params) is a
        # usage error, not an internal failure.
        raise InvalidInstanceError(
            f"bad parameters for arrival process {process!r}: {exc}"
        ) from exc


# -- builders ---------------------------------------------------------------
#
# ``seed`` may be an int (the reproducible path: child streams derive
# through engine hashing), ``None`` (OS entropy), or a live
# ``numpy.random.Generator`` — the latter draws order and batching
# sequentially from the caller's stream, which is how the legacy
# ``rng=Generator`` entry points stay bit-identical.


def _sorted_ground(utility: SetFunction) -> List[Hashable]:
    return sorted(utility.ground_set, key=repr)


def _seed_field(seed) -> Optional[int]:
    """What the schedule records as provenance (Generators are opaque)."""
    return int(seed) if isinstance(seed, (int,)) else None


def _child_gen(seed, label: str):
    """A generator for one independent aspect (batching, timestamps)."""
    from repro.engine.hashing import derive_seed  # lazy: avoids import cycle

    if seed is None or isinstance(seed, int):
        return as_generator(None if seed is None else derive_seed(int(seed), label))
    return as_generator(seed)  # live Generator: draw sequentially


def _uniform_order(utility: SetFunction, seed) -> List[Hashable]:
    """The exact permutation ``SecretaryStream`` draws for this seed."""
    return random_permutation(_sorted_ground(utility), as_generator(seed))


def _by_singleton_value(
    utility: SetFunction, descending: bool
) -> List[Hashable]:
    ground = _sorted_ground(utility)
    scored = [(utility.value(frozenset({e})), e) for e in ground]
    scored.sort(key=lambda t: ((-t[0] if descending else t[0]), repr(t[1])))
    return [e for _, e in scored]


def uniform_process(utility: SetFunction, seed) -> ArrivalSchedule:
    """The paper's arrival model: a seed-derived uniform permutation."""
    order = _uniform_order(utility, seed)
    return ArrivalSchedule(
        process="uniform", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order),
    )


def sorted_desc_process(utility: SetFunction, seed) -> ArrivalSchedule:
    """Adversarial order: elements arrive best-first."""
    order = _by_singleton_value(utility, descending=True)
    return ArrivalSchedule(
        process="sorted_desc", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order),
    )


def sorted_asc_process(utility: SetFunction, seed) -> ArrivalSchedule:
    """Adversarial order: elements arrive worst-first."""
    order = _by_singleton_value(utility, descending=False)
    return ArrivalSchedule(
        process="sorted_asc", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order),
    )


def bursty_process(
    utility: SetFunction, seed, *, mean_batch: float = 4.0
) -> ArrivalSchedule:
    """Uniform order delivered in geometric-size minibatches.

    The arrival *order* reuses the uniform process's permutation for the
    same seed (only the batching differs), so switching a cell from
    ``uniform`` to ``bursty`` isolates the effect of burst delivery.
    """
    if mean_batch < 1.0:
        raise InvalidInstanceError(f"mean_batch must be >= 1, got {mean_batch}")
    order = _uniform_order(utility, seed)
    gen = _child_gen(seed, "bursty-batches")
    sizes: List[int] = []
    remaining = len(order)
    while remaining > 0:
        size = min(remaining, int(gen.geometric(1.0 / mean_batch)))
        sizes.append(max(1, size))
        remaining -= sizes[-1]
    return ArrivalSchedule(
        process="bursty", seed=_seed_field(seed), order=order, batch_sizes=sizes,
        params={"mean_batch": mean_batch},
    )


def poisson_process(
    utility: SetFunction, seed, *, rate: float = 2.0
) -> ArrivalSchedule:
    """Uniform order with Poisson-process timestamps, batched per tick.

    Interarrival gaps are Exponential(rate); arrivals whose timestamps
    share an integer tick are delivered as one minibatch (the service
    pattern of draining a queue once per unit of time).
    """
    if rate <= 0:
        raise InvalidInstanceError(f"rate must be positive, got {rate}")
    order = _uniform_order(utility, seed)
    gen = _child_gen(seed, "poisson-times")
    gaps = gen.exponential(scale=1.0 / rate, size=len(order))
    times = [float(t) for t in gaps.cumsum()]
    # Group consecutive arrivals by tick.
    sizes: List[int] = []
    current_tick: Optional[int] = None
    for t in times:
        tick = math.floor(t)
        if tick == current_tick:
            sizes[-1] += 1
        else:
            sizes.append(1)
            current_tick = tick
    return ArrivalSchedule(
        process="poisson", seed=_seed_field(seed), order=order, batch_sizes=sizes,
        timestamps=times, params={"rate": rate},
    )


def sliding_window_process(
    utility: SetFunction, seed, *, window: int = 5
) -> ArrivalSchedule:
    """Sorted-descending replay through a size-*window* shuffle buffer.

    Fill a buffer with the next ``window`` elements of the sorted order,
    repeatedly emit a uniformly random buffer member and refill — the
    standard model of a nearly-sorted trace (each element arrives at
    most ``window - 1`` positions before its sorted position).
    """
    if window < 1:
        raise InvalidInstanceError(f"window must be >= 1, got {window}")
    source = _by_singleton_value(utility, descending=True)
    gen = _child_gen(seed, "sliding-window")
    buffer: List[Hashable] = []
    order: List[Hashable] = []
    i = 0
    while i < len(source) or buffer:
        while i < len(source) and len(buffer) < window:
            buffer.append(source[i])
            i += 1
        j = int(gen.integers(len(buffer)))
        order.append(buffer.pop(j))
    return ArrivalSchedule(
        process="sliding_window", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order), params={"window": window},
    )


def replay_process(utility: SetFunction, seed, *, payload) -> ArrivalSchedule:
    """Verbatim replay of a recorded schedule payload.

    *payload* is an :meth:`ArrivalSchedule.payload` dict (order +
    batches + timestamps); the replayed schedule reproduces it exactly,
    so recorded traces round-trip through the same runtime as synthetic
    processes.  The payload itself becomes the process parameter — a
    replay stream is reconstructible from its recipe alone, like every
    other process (at the price of an O(n) recipe, which is inherent to
    a recorded trace).
    """
    recorded = ArrivalSchedule.from_payload(dict(payload))
    if frozenset(recorded.order) != utility.ground_set:
        raise InvalidInstanceError(
            "replay payload does not enumerate the utility's ground set exactly"
        )
    return ArrivalSchedule(
        process="replay", seed=_seed_field(seed), order=recorded.order,
        batch_sizes=recorded.batch_sizes, timestamps=recorded.timestamps,
        params={"payload": dict(payload)},
    )


register_arrival_process("uniform", uniform_process)
register_arrival_process("sorted_desc", sorted_desc_process)
register_arrival_process("sorted_asc", sorted_asc_process)
register_arrival_process("bursty", bursty_process)
register_arrival_process("poisson", poisson_process)
register_arrival_process("sliding_window", sliding_window_process)
register_arrival_process("replay", replay_process)


# -- arrival sources ---------------------------------------------------------
#
# The streaming side of the registry: an ``ArrivalSource`` yields the
# same batches a materialized ``ArrivalSchedule`` would, but lazily,
# with a cursor and an incrementally-maintained fingerprint — so a
# suspended stream serialises as ``(spec, cursor, fingerprint state,
# a few source-specific extras)`` instead of the whole order, and
# resumes in O(1) stream work instead of O(cursor).


class ArrivalSource:
    """A resumable, lazily-yielding arrival stream.

    Subclasses implement :meth:`_emit` — return the next slice of the
    current minibatch (never crossing a batch boundary) — plus the
    state-dict extras they need to resume without replaying the prefix.
    The base class owns the cursor and the fingerprint chain.
    """

    def __init__(self, process: str, seed: Optional[int],
                 params: Dict[str, object], n: Optional[int]) -> None:
        self.process = str(process)
        self.seed = seed
        self.params = dict(params)
        self._n = n
        self._cursor = 0
        self._fp = ArrivalFingerprint.for_stream(self.process, self.seed,
                                                 self.params)

    # -- stream state ---------------------------------------------------

    @property
    def n(self) -> Optional[int]:
        """Total arrivals, or ``None`` for an unbounded source."""
        return self._n

    @property
    def cursor(self) -> int:
        """Arrivals consumed so far."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether the stream has no arrivals left."""
        return self._n is not None and self._cursor >= self._n

    @property
    def order(self) -> Optional[List[Hashable]]:
        """The full arrival order when knowable up front, else ``None``."""
        return None

    # -- consumption ----------------------------------------------------

    def _emit(self, limit: Optional[int]):
        """Next ``(elements, timestamps_or_None, starts_new_batch)`` slice
        of at most *limit* arrivals, never crossing a batch boundary;
        ``None`` when drained.  Must not advance the public cursor."""
        raise NotImplementedError

    def take(self, limit: Optional[int] = None):
        """Consume up to *limit* arrivals of the current minibatch.

        Returns ``(first_position, elements, timestamps_or_None)`` and
        advances cursor + fingerprint, or ``None`` when the stream is
        drained (or *limit* is 0).  A batch larger than *limit* is
        truncated — the next ``take`` resumes mid-batch.
        """
        if limit is not None and int(limit) <= 0:
            return None
        emitted = self._emit(None if limit is None else int(limit))
        if emitted is None:
            return None
        elements, stamps, starts_batch = emitted
        pos0 = self._cursor
        for i, element in enumerate(elements):
            self._fp.update(
                element, bool(starts_batch) and i == 0,
                None if stamps is None else stamps[i],
            )
        self._cursor = pos0 + len(elements)
        return pos0, list(elements), (None if stamps is None else list(stamps))

    def batches(self) -> Iterator[Tuple[int, List[Hashable]]]:
        """Drain the remaining stream one whole minibatch at a time."""
        while True:
            step = self.take(None)
            if step is None:
                return
            yield step[0], step[1]

    def seek(self, cursor: int) -> None:
        """Advance to *cursor* by consuming (and discarding) arrivals.

        O(cursor) — the v1-checkpoint migration path, which has no saved
        fingerprint state; v2 resumes restore in O(1) via
        :meth:`restore`.
        """
        cursor = int(cursor)
        if cursor < 0:
            raise InvalidInstanceError(
                f"cursor {cursor} outside stream of {self._n}"
            )
        while self._cursor < cursor:
            if self.take(cursor - self._cursor) is None:
                raise InvalidInstanceError(
                    f"cursor {cursor} outside stream of {self._n}"
                )

    # -- resumable state ------------------------------------------------

    def spec(self) -> Dict[str, object]:
        """How to rebuild this source: ``(process, seed, params)``.

        Params are emitted in sorted key order so a rendered spec
        (checkpoint files, ``repro online inspect``, docs examples) is
        deterministic across runs.
        """
        return {
            "format": SOURCE_SPEC_FORMAT,
            "process": self.process,
            "seed": self.seed,
            "params": dict(sorted(self.params.items())),
        }

    def _extra_state(self) -> Dict[str, object]:
        return {}

    def _restore_extra(self, state: Dict[str, object]) -> None:
        pass

    def state_dict(self) -> Dict[str, object]:
        """JSON-able suspend state: cursor + fingerprint chain + extras."""
        state: Dict[str, object] = {
            "cursor": self._cursor,
            "fingerprint": self._fp.state_dict(),
        }
        state.update(self._extra_state())
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """O(1) resume: jump to the saved cursor without replaying."""
        cursor = int(state["cursor"])  # type: ignore[arg-type]
        if cursor < 0 or (self._n is not None and cursor > self._n):
            raise InvalidInstanceError(
                f"cursor {cursor} outside stream of {self._n}"
            )
        self._cursor = cursor
        self._fp = ArrivalFingerprint.from_state(
            {
                "format": FINGERPRINT_FORMAT,
                "process": self.process,
                "seed": self.seed,
                "params": dict(self.params),
            },
            state["fingerprint"],  # type: ignore[arg-type]
        )
        self._restore_extra(state)

    def fingerprint(self) -> str:
        """Digest of the consumed prefix (= the schedule fingerprint
        once the stream is fully drained)."""
        return self._fp.digest

    def materialize(self) -> ArrivalSchedule:
        """The equivalent fully-materialized schedule (legacy view)."""
        raise NotImplementedError


class ScheduleSource(ArrivalSource):
    """Source view over a (deterministically rebuildable) schedule.

    The adapter that keeps every registered process available as a
    source: the schedule is built eagerly — O(n) memory, exactly as
    before — but consumption, cursor, and fingerprint follow the source
    contract.  Only :func:`build_arrival_source` may pass
    ``rebuildable=True`` — it just built the schedule from exactly the
    ``(process, seed, params)`` triple the spec records, so the spec
    alone reconstructs it and suspend state stays O(1).  Every other
    construction path (hand-built schedules, pre-sharded schedules,
    live-Generator seeds) embeds the schedule payload in the spec — the
    v1-style O(n) fallback — because resuming such a spec through the
    builder could produce a *different* stream (or a source class whose
    state layout does not match).
    """

    def __init__(self, schedule: ArrivalSchedule, *,
                 rebuildable: bool = False) -> None:
        super().__init__(schedule.process, schedule.seed, schedule.params,
                         schedule.n)
        self._rebuildable = bool(rebuildable)
        self._schedule = schedule
        starts = [0]
        for size in schedule.batch_sizes:
            starts.append(starts[-1] + size)
        self._starts = starts  # batch start positions, len = #batches + 1

    @property
    def order(self) -> List[Hashable]:
        """The materialized arrival order (forces lazy generation)."""
        return self._schedule.order

    def _emit(self, limit: Optional[int]):
        if self._cursor >= self._schedule.n:
            return None
        b = bisect_right(self._starts, self._cursor) - 1
        end = self._starts[b + 1]
        hi = end if limit is None else min(end, self._cursor + limit)
        elements = self._schedule.order[self._cursor:hi]
        ts = self._schedule.timestamps
        stamps = None if ts is None else ts[self._cursor:hi]
        return elements, stamps, self._cursor == self._starts[b]

    def spec(self) -> Dict[str, object]:
        """JSON-able stream identity: process name, seed, sorted params."""
        spec = super().spec()
        if not self._rebuildable:
            spec["schedule"] = self._schedule.payload()
        return spec

    def materialize(self) -> ArrivalSchedule:
        """The full remaining stream as an :class:`ArrivalSchedule`."""
        return self._schedule


class BurstySource(ArrivalSource):
    """The bursty process as a genuinely lazy source.

    The uniform permutation is precomputed (it is one vectorized draw),
    but geometric batch sizes are drawn one at a time exactly as the
    eager builder draws them — and the generator's ``bit_generator``
    state rides in the suspend state, so resume continues the RNG
    mid-stream with no replay and no re-draw.
    """

    def __init__(self, utility: SetFunction, seed, *,
                 mean_batch: float = 4.0) -> None:
        if mean_batch < 1.0:
            raise InvalidInstanceError(
                f"mean_batch must be >= 1, got {mean_batch}"
            )
        order = _uniform_order(utility, seed)
        super().__init__("bursty", _seed_field(seed),
                         {"mean_batch": mean_batch}, len(order))
        self.mean_batch = mean_batch
        self._order = order
        self._gen = _child_gen(seed, "bursty-batches")
        self._batch_end = 0
        self._materialized: Optional[ArrivalSchedule] = None

    @property
    def order(self) -> List[Hashable]:
        """The materialized arrival order (forces lazy generation)."""
        return self._order

    def _emit(self, limit: Optional[int]):
        if self._cursor >= len(self._order):
            return None
        starts = False
        if self._cursor >= self._batch_end:
            remaining = len(self._order) - self._cursor
            size = min(remaining, int(self._gen.geometric(1.0 / self.mean_batch)))
            self._batch_end = self._cursor + max(1, size)
            starts = True
        hi = (self._batch_end if limit is None
              else min(self._batch_end, self._cursor + limit))
        return self._order[self._cursor:hi], None, starts

    def _extra_state(self) -> Dict[str, object]:
        return {
            "batch_end": self._batch_end,
            "rng_state": self._gen.bit_generator.state,
        }

    def _restore_extra(self, state: Dict[str, object]) -> None:
        self._batch_end = int(state["batch_end"])  # type: ignore[arg-type]
        self._gen.bit_generator.state = state["rng_state"]

    def materialize(self) -> ArrivalSchedule:
        """The full remaining stream as an :class:`ArrivalSchedule`."""
        if self._materialized is None:
            self._materialized = bursty_process(
                _OrderGround(self._order), self.seed,
                mean_batch=self.mean_batch,
            )
        return self._materialized


class _OrderGround:
    """Minimal utility stand-in: just a ground set (for re-building a
    schedule whose order is already known)."""

    def __init__(self, order: List[Hashable]) -> None:
        self.ground_set = frozenset(order)

    def value(self, subset) -> float:  # pragma: no cover - never queried
        raise NotImplementedError


SourceBuilder = Callable[..., ArrivalSource]

ARRIVAL_SOURCES: Dict[str, SourceBuilder] = {}


def register_arrival_source(name: str, builder: SourceBuilder) -> SourceBuilder:
    """Register a native (lazy) source for an arrival process."""
    if not name:
        raise InvalidInstanceError("arrival source needs a non-empty name")
    ARRIVAL_SOURCES[name] = builder
    return builder


def build_arrival_source(
    process: str, utility: SetFunction, seed, **params
) -> ArrivalSource:
    """Build *process* as a resumable source over *utility*'s ground set.

    Processes with a registered native source (and a reproducible seed)
    get genuine lazy yielding; everything else — including live-Generator
    seeds, whose draws must stay sequential with the caller's stream —
    falls back to a :class:`ScheduleSource` over the eager builder, so
    every registered process is available through the source API.
    """
    builder = ARRIVAL_SOURCES.get(process)
    if builder is not None and isinstance(seed, int):
        try:
            return builder(utility, seed, **params)
        except TypeError as exc:
            raise InvalidInstanceError(
                f"bad parameters for arrival process {process!r}: {exc}"
            ) from exc
    return ScheduleSource(
        build_arrival_schedule(process, utility, seed, **params),
        # An int seed makes this exact (process, seed, params) call
        # reproducible, so the spec alone rebuilds the stream; live
        # Generators and None seeds are opaque — embed the payload.
        rebuildable=isinstance(seed, int),
    )


def as_arrival_source(arrivals) -> ArrivalSource:
    """Coerce a schedule (legacy callers) or source to a source."""
    if isinstance(arrivals, ArrivalSource):
        return arrivals
    if isinstance(arrivals, ArrivalSchedule):
        return ScheduleSource(arrivals)
    raise InvalidInstanceError(
        f"expected an ArrivalSchedule or ArrivalSource, got {type(arrivals).__name__}"
    )


def source_from_spec(spec: Dict[str, object], utility: SetFunction) -> ArrivalSource:
    """Rebuild a source from its :meth:`ArrivalSource.spec` payload.

    The single resume entry point: handles the embedded-schedule
    fallback (opaque seeds) and shard-filtered sources (the ``"shard"``
    key wraps the parent in a :class:`~repro.online.sharding.ShardSource`).
    """
    if not isinstance(spec, dict) or "process" not in spec:
        raise InvalidInstanceError("checkpoint carries no rebuildable source spec")
    if spec.get("schedule") is not None:
        base: ArrivalSource = ScheduleSource(
            ArrivalSchedule.from_payload(spec["schedule"])  # type: ignore[arg-type]
        )
    else:
        base = build_arrival_source(
            str(spec["process"]), utility, spec.get("seed"),
            **dict(spec.get("params") or {}),  # type: ignore[arg-type]
        )
    shard = spec.get("shard")
    if shard:
        # Imported lazily: sharding imports this module.
        from repro.online.sharding import (
            PartitionMap,
            ShardSource,
            partition_lane_source,
        )

        partition = shard.get("partition")  # type: ignore[union-attr]
        if partition is not None:
            # A resharded lane: the spec carries the full epoch history.
            return partition_lane_source(
                base, int(shard["index"]),  # type: ignore[index]
                PartitionMap.from_payload(partition),
            )
        return ShardSource(
            base, int(shard["index"]), int(shard["num_shards"]),  # type: ignore[index]
            salt=int(shard.get("salt", 0)),  # type: ignore[union-attr]
        )
    return base


register_arrival_source("bursty", BurstySource)
