"""Pluggable arrival processes — how elements reach an online policy.

The paper's model is a single uniform-random permutation; the runtime
generalises that into a registry of *arrival processes*, each a builder
``(utility, seed, **params) -> ArrivalSchedule``:

``uniform``
    The paper's model.  Bit-identical to the order
    :class:`~repro.secretary.stream.SecretaryStream` draws for the same
    seed, so every legacy experiment replays exactly.
``sorted_desc`` / ``sorted_asc``
    Adversarial deterministic orders by singleton value (descending
    defeats observation windows: the best element arrives first).
``bursty``
    The uniform permutation delivered in random minibatches (geometric
    sizes) — arrivals within a burst are interviewed together, which is
    what lets the driver score a whole burst in one kernel call.
``poisson``
    The uniform permutation with exponential interarrival timestamps;
    arrivals sharing an integer tick form one minibatch (a service-style
    "drain the queue once per tick" pattern).
``sliding_window``
    Replay of the sorted-descending order through a bounded shuffle
    buffer of size ``window`` — locally shuffled, globally sorted, the
    classic "almost sorted" replay trace.  An element can arrive at most
    ``window - 1`` positions earlier than its sorted position.

All randomness is seed-derived (child seeds via
:func:`repro.engine.hashing.derive_seed`), so a schedule is a pure
function of ``(utility, process, seed, params)`` and its
:meth:`ArrivalSchedule.fingerprint` pins instance provenance the same
way the engine's instance fingerprints do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.rng import as_generator, random_permutation

__all__ = [
    "ArrivalSchedule",
    "ARRIVAL_PROCESSES",
    "register_arrival_process",
    "build_arrival_schedule",
    "arrival_process_names",
]

SCHEDULE_FORMAT = "repro-arrival-schedule/1"


@dataclass
class ArrivalSchedule:
    """A fully materialised arrival plan over a ground set.

    ``order`` enumerates the arrivals; ``batch_sizes`` partitions it
    into the minibatches the driver reveals together (all 1 for
    per-arrival processes); ``timestamps`` optionally attaches arrival
    times (Poisson process).  The schedule is plain data — JSON-able
    whenever the elements are — which is what makes checkpoints
    self-contained.
    """

    process: str
    seed: Optional[int]
    order: List[Hashable]
    batch_sizes: List[int]
    timestamps: Optional[List[float]] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if sum(self.batch_sizes) != len(self.order):
            raise InvalidInstanceError(
                f"batch sizes sum to {sum(self.batch_sizes)}, "
                f"order has {len(self.order)} arrivals"
            )
        if any(b <= 0 for b in self.batch_sizes):
            raise InvalidInstanceError("batch sizes must be positive")
        if self.timestamps is not None and len(self.timestamps) != len(self.order):
            raise InvalidInstanceError("one timestamp per arrival required")

    @property
    def n(self) -> int:
        return len(self.order)

    def __len__(self) -> int:
        return len(self.order)

    def batches(self, start: int = 0) -> Iterator[Tuple[int, List[Hashable]]]:
        """Yield ``(first_position, elements)`` minibatches from *start*.

        A *start* inside a batch yields the batch's unconsumed tail
        first — how a run resumed mid-burst continues without replaying
        decided arrivals.
        """
        pos = 0
        for size in self.batch_sizes:
            end = pos + size
            if end > start:
                lo = max(pos, start)
                yield lo, self.order[lo:end]
            pos = end

    def payload(self) -> Dict[str, object]:
        """JSON-able round-trippable form (checkpoints embed this)."""
        for e in self.order:
            if not isinstance(e, (str, int)):
                raise InvalidInstanceError(
                    f"schedule with element {e!r} is not JSON round-trippable; "
                    "checkpointable streams need str/int elements"
                )
        return {
            "format": SCHEDULE_FORMAT,
            "process": self.process,
            "seed": self.seed,
            "order": list(self.order),
            "batch_sizes": list(self.batch_sizes),
            "timestamps": None if self.timestamps is None else list(self.timestamps),
            "params": dict(self.params),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ArrivalSchedule":
        if payload.get("format") != SCHEDULE_FORMAT:
            raise InvalidInstanceError(
                f"not a {SCHEDULE_FORMAT} payload: {payload.get('format')!r}"
            )
        return cls(
            process=str(payload["process"]),
            seed=payload["seed"],  # type: ignore[arg-type]
            order=list(payload["order"]),  # type: ignore[arg-type]
            batch_sizes=[int(b) for b in payload["batch_sizes"]],  # type: ignore[union-attr]
            timestamps=(
                None if payload.get("timestamps") is None
                else [float(t) for t in payload["timestamps"]]  # type: ignore[union-attr]
            ),
            params=dict(payload.get("params") or {}),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the schedule (provenance anchor)."""
        # Imported lazily: engine.hashing pulls in the task adapters,
        # which import the secretary stack, which imports this module.
        from repro.engine.hashing import spec_fingerprint

        payload = self.payload()
        payload["order"] = [repr(e) for e in self.order]
        return spec_fingerprint(payload)


ProcessBuilder = Callable[..., ArrivalSchedule]

ARRIVAL_PROCESSES: Dict[str, ProcessBuilder] = {}


def register_arrival_process(name: str, builder: ProcessBuilder) -> ProcessBuilder:
    """Register *builder* under *name* (last registration wins)."""
    if not name:
        raise InvalidInstanceError("arrival process needs a non-empty name")
    ARRIVAL_PROCESSES[name] = builder
    return builder


def arrival_process_names() -> Tuple[str, ...]:
    """Registered process names, sorted (stable CLI/docs order)."""
    return tuple(sorted(ARRIVAL_PROCESSES))


def build_arrival_schedule(
    process: str, utility: SetFunction, seed, **params
) -> ArrivalSchedule:
    """Build *process*'s schedule over *utility*'s ground set."""
    builder = ARRIVAL_PROCESSES.get(process)
    if builder is None:
        raise InvalidInstanceError(
            f"unknown arrival process {process!r}; known: {arrival_process_names()}"
        )
    try:
        return builder(utility, seed, **params)
    except TypeError as exc:
        # An unexpected keyword (user-supplied --process-params) is a
        # usage error, not an internal failure.
        raise InvalidInstanceError(
            f"bad parameters for arrival process {process!r}: {exc}"
        ) from exc


# -- builders ---------------------------------------------------------------
#
# ``seed`` may be an int (the reproducible path: child streams derive
# through engine hashing), ``None`` (OS entropy), or a live
# ``numpy.random.Generator`` — the latter draws order and batching
# sequentially from the caller's stream, which is how the legacy
# ``rng=Generator`` entry points stay bit-identical.


def _sorted_ground(utility: SetFunction) -> List[Hashable]:
    return sorted(utility.ground_set, key=repr)


def _seed_field(seed) -> Optional[int]:
    """What the schedule records as provenance (Generators are opaque)."""
    return int(seed) if isinstance(seed, (int,)) else None


def _child_gen(seed, label: str):
    """A generator for one independent aspect (batching, timestamps)."""
    from repro.engine.hashing import derive_seed  # lazy: avoids import cycle

    if seed is None or isinstance(seed, int):
        return as_generator(None if seed is None else derive_seed(int(seed), label))
    return as_generator(seed)  # live Generator: draw sequentially


def _uniform_order(utility: SetFunction, seed) -> List[Hashable]:
    """The exact permutation ``SecretaryStream`` draws for this seed."""
    return random_permutation(_sorted_ground(utility), as_generator(seed))


def _by_singleton_value(
    utility: SetFunction, descending: bool
) -> List[Hashable]:
    ground = _sorted_ground(utility)
    scored = [(utility.value(frozenset({e})), e) for e in ground]
    scored.sort(key=lambda t: ((-t[0] if descending else t[0]), repr(t[1])))
    return [e for _, e in scored]


def uniform_process(utility: SetFunction, seed) -> ArrivalSchedule:
    order = _uniform_order(utility, seed)
    return ArrivalSchedule(
        process="uniform", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order),
    )


def sorted_desc_process(utility: SetFunction, seed) -> ArrivalSchedule:
    order = _by_singleton_value(utility, descending=True)
    return ArrivalSchedule(
        process="sorted_desc", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order),
    )


def sorted_asc_process(utility: SetFunction, seed) -> ArrivalSchedule:
    order = _by_singleton_value(utility, descending=False)
    return ArrivalSchedule(
        process="sorted_asc", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order),
    )


def bursty_process(
    utility: SetFunction, seed, *, mean_batch: float = 4.0
) -> ArrivalSchedule:
    """Uniform order delivered in geometric-size minibatches.

    The arrival *order* reuses the uniform process's permutation for the
    same seed (only the batching differs), so switching a cell from
    ``uniform`` to ``bursty`` isolates the effect of burst delivery.
    """
    if mean_batch < 1.0:
        raise InvalidInstanceError(f"mean_batch must be >= 1, got {mean_batch}")
    order = _uniform_order(utility, seed)
    gen = _child_gen(seed, "bursty-batches")
    sizes: List[int] = []
    remaining = len(order)
    while remaining > 0:
        size = min(remaining, int(gen.geometric(1.0 / mean_batch)))
        sizes.append(max(1, size))
        remaining -= sizes[-1]
    return ArrivalSchedule(
        process="bursty", seed=_seed_field(seed), order=order, batch_sizes=sizes,
        params={"mean_batch": mean_batch},
    )


def poisson_process(
    utility: SetFunction, seed, *, rate: float = 2.0
) -> ArrivalSchedule:
    """Uniform order with Poisson-process timestamps, batched per tick.

    Interarrival gaps are Exponential(rate); arrivals whose timestamps
    share an integer tick are delivered as one minibatch (the service
    pattern of draining a queue once per unit of time).
    """
    if rate <= 0:
        raise InvalidInstanceError(f"rate must be positive, got {rate}")
    order = _uniform_order(utility, seed)
    gen = _child_gen(seed, "poisson-times")
    gaps = gen.exponential(scale=1.0 / rate, size=len(order))
    times = [float(t) for t in gaps.cumsum()]
    # Group consecutive arrivals by tick.
    sizes: List[int] = []
    current_tick: Optional[int] = None
    for t in times:
        tick = math.floor(t)
        if tick == current_tick:
            sizes[-1] += 1
        else:
            sizes.append(1)
            current_tick = tick
    return ArrivalSchedule(
        process="poisson", seed=_seed_field(seed), order=order, batch_sizes=sizes,
        timestamps=times, params={"rate": rate},
    )


def sliding_window_process(
    utility: SetFunction, seed, *, window: int = 5
) -> ArrivalSchedule:
    """Sorted-descending replay through a size-*window* shuffle buffer.

    Fill a buffer with the next ``window`` elements of the sorted order,
    repeatedly emit a uniformly random buffer member and refill — the
    standard model of a nearly-sorted trace (each element arrives at
    most ``window - 1`` positions before its sorted position).
    """
    if window < 1:
        raise InvalidInstanceError(f"window must be >= 1, got {window}")
    source = _by_singleton_value(utility, descending=True)
    gen = _child_gen(seed, "sliding-window")
    buffer: List[Hashable] = []
    order: List[Hashable] = []
    i = 0
    while i < len(source) or buffer:
        while i < len(source) and len(buffer) < window:
            buffer.append(source[i])
            i += 1
        j = int(gen.integers(len(buffer)))
        order.append(buffer.pop(j))
    return ArrivalSchedule(
        process="sliding_window", seed=_seed_field(seed), order=order,
        batch_sizes=[1] * len(order), params={"window": window},
    )


register_arrival_process("uniform", uniform_process)
register_arrival_process("sorted_desc", sorted_desc_process)
register_arrival_process("sorted_asc", sorted_asc_process)
register_arrival_process("bursty", bursty_process)
register_arrival_process("poisson", poisson_process)
register_arrival_process("sliding_window", sliding_window_process)
