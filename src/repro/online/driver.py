"""Drivers: feed an arrival schedule (or legacy stream) to a policy.

:class:`OnlineRun` owns one online execution — utility, arrival
schedule, arrival-restricted oracle, policy, cursor — and supports
incremental consumption (``run(max_arrivals=...)``), which is what makes
long streams suspendable: a run that stops mid-stream serialises to a
self-contained JSON checkpoint (see :mod:`repro.online.checkpoint`) and
resumes in another process.

Minibatch schedules are revealed a whole batch at a time (the
Section 3.2.1 no-peeking contract holds *per batch*: everything in a
burst has been interviewed before any of it is queried) and handed to
``policy.observe_batch`` — one kernel call per batch for the vectorized
policies.  Single-arrival batches take the exact legacy per-arrival
path, so default uniform runs are bit-identical to the pre-runtime
loops.

:func:`drive_stream` is the thin adapter the legacy wrappers use: it
walks a :class:`~repro.secretary.stream.SecretaryStream` (which reveals
on iteration) and stops as soon as the policy is done, exactly like the
loops it replaced broke out of their streams.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.online.arrivals import ArrivalSchedule
from repro.online.policies import OnlinePolicy
from repro.secretary.stream import ArrivalOracle

__all__ = ["OnlineRun", "drive_stream", "run_online"]


class OnlineRun:
    """One (suspendable) execution of a policy over an arrival schedule."""

    def __init__(
        self,
        utility: SetFunction,
        schedule: ArrivalSchedule,
        policy: OnlinePolicy,
    ) -> None:
        if frozenset(schedule.order) != utility.ground_set:
            raise InvalidInstanceError(
                "arrival schedule must enumerate the utility's ground set exactly"
            )
        self.utility = utility
        self.schedule = schedule
        self.policy = policy
        self.oracle = ArrivalOracle(utility)
        self.cursor = 0
        self._result = None
        policy.bind(self.oracle, schedule.n)

    # -- state ----------------------------------------------------------

    @property
    def n(self) -> int:
        return self.schedule.n

    @property
    def finished(self) -> bool:
        """No further arrival will be consumed."""
        return self.cursor >= self.n or self.policy.done

    # -- execution -------------------------------------------------------

    def _consume(self, pos0: int, batch: Sequence[Hashable]) -> None:
        for a in batch:
            self.oracle.reveal(a)
        if len(batch) == 1:
            self.policy.observe(pos0, batch[0])
        else:
            self.policy.observe_batch(pos0, list(batch))
        self.cursor = pos0 + len(batch)

    def run(self, max_arrivals: Optional[int] = None) -> "OnlineRun":
        """Consume up to *max_arrivals* more arrivals (all, when ``None``).

        Stops early once the policy reports ``done`` — later arrivals
        are then never revealed, matching the legacy algorithms that
        return mid-stream.
        """
        budget = self.n if max_arrivals is None else int(max_arrivals)
        for pos0, batch in self.schedule.batches(self.cursor):
            if budget <= 0 or self.finished:
                break
            if len(batch) > budget:
                batch = batch[:budget]
            self._consume(pos0, batch)
            budget -= len(batch)
        return self

    def result(self):
        """Finish the policy and return its result (cached)."""
        if self._result is None:
            self._result = self.policy.finish()
        return self._result


def drive_stream(stream, policy: OnlinePolicy, *, finish: bool = True):
    """Drive *policy* over a legacy :class:`SecretaryStream`, one arrival
    at a time, stopping as soon as the policy is done.

    Returns the policy's finished result (or the policy itself with
    ``finish=False``, for wrappers that post-process).
    """
    policy.bind(stream.oracle, stream.n)
    for pos, element in enumerate(stream):
        policy.observe(pos, element)
        if policy.done:
            break
    return policy.finish() if finish else policy


def run_online(
    utility: SetFunction,
    schedule: ArrivalSchedule,
    policy: OnlinePolicy,
):
    """One-shot convenience: run *policy* over *schedule* to completion."""
    return OnlineRun(utility, schedule, policy).run().result()
