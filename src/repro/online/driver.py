"""Drivers: feed an arrival source (or legacy stream) to a policy.

:class:`OnlineRun` owns one online execution — utility, arrival
source, arrival-restricted oracle, policy, cursor — and supports
incremental consumption (``run(max_arrivals=...)``), which is what makes
long streams suspendable: a run that stops mid-stream serialises to a
self-contained JSON checkpoint (see :mod:`repro.online.checkpoint`) and
resumes in another process.

Arrivals come from an :class:`~repro.online.arrivals.ArrivalSource`
(materialized :class:`~repro.online.arrivals.ArrivalSchedule` inputs are
wrapped transparently), so the driver itself never needs the full order:
it pulls batches, reveals them, and appends every hire to an append-only
``decisions`` log — ``[position, element]`` pairs — which is what the v2
checkpoint persists instead of the stream.

Minibatch schedules are revealed a whole batch at a time (the
Section 3.2.1 no-peeking contract holds *per batch*: everything in a
burst has been interviewed before any of it is queried) and handed to
``policy.observe_batch`` — one kernel call per batch for the vectorized
policies.  Single-arrival batches take the exact legacy per-arrival
path, so default uniform runs are bit-identical to the pre-runtime
loops.

:func:`drive_stream` is the thin adapter the legacy wrappers use: it
walks a :class:`~repro.secretary.stream.SecretaryStream` (which reveals
on iteration) and stops as soon as the policy is done, exactly like the
loops it replaced broke out of their streams.
"""

from __future__ import annotations

import json

from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.online.arrivals import ArrivalSchedule, ArrivalSource, as_arrival_source
from repro.online.policies import OnlinePolicy
from repro.secretary.stream import ArrivalOracle

__all__ = ["OnlineRun", "drive_stream", "run_online"]


class OnlineRun:
    """One (suspendable) execution of a policy over an arrival stream."""

    def __init__(
        self,
        utility: SetFunction,
        arrivals,
        policy: OnlinePolicy,
    ) -> None:
        source = as_arrival_source(arrivals)
        if source.order is not None and (
            frozenset(source.order) != utility.ground_set
        ):
            raise InvalidInstanceError(
                "arrival schedule must enumerate the utility's ground set exactly"
            )
        if source.n is None:
            raise InvalidInstanceError(
                "online policies lay out against a known stream length; "
                "unbounded sources need an explicit horizon"
            )
        self.utility = utility
        self.source: ArrivalSource = source
        self.policy = policy
        self.oracle = ArrivalOracle(utility)
        #: Append-only hire log: ``[stream_position, element]`` pairs in
        #: hire order.  This (plus policy state) is what checkpoints
        #: persist — O(selected), not O(arrived).
        self.decisions: List[List] = []
        self._hired_logged: frozenset = frozenset()
        self._result = None
        policy.bind(self.oracle, source.n)

    # -- state ----------------------------------------------------------

    @property
    def schedule(self) -> ArrivalSchedule:
        """Materialized view of the stream (legacy accessor)."""
        return self.source.materialize()

    @property
    def n(self) -> int:
        """Total stream length."""
        return int(self.source.n)  # type: ignore[arg-type]

    @property
    def cursor(self) -> int:
        """Arrivals consumed so far."""
        return self.source.cursor

    @property
    def finished(self) -> bool:
        """No further arrival will be consumed."""
        return self.source.exhausted or self.policy.done

    # -- execution -------------------------------------------------------

    def _consume(self, pos0: int, batch: Sequence[Hashable]) -> None:
        for a in batch:
            self.oracle.reveal(a)
        if len(batch) == 1:
            self.policy.observe(pos0, batch[0])
        else:
            self.policy.observe_batch(pos0, list(batch))
        self._log_decisions(pos0, batch)

    def _log_decisions(self, pos0: int, batch: Sequence[Hashable]) -> None:
        hired = frozenset(self.policy.hired_set())
        if hired == self._hired_logged:
            return
        new = hired - self._hired_logged
        for i, a in enumerate(batch):
            if a in new:
                self.decisions.append([pos0 + i, a])
        self._hired_logged = hired

    def feed(self, pos0: int, batch: Sequence[Hashable]) -> "OnlineRun":
        """Consume one externally-pulled batch (the serving push path).

        The serving layer (:mod:`repro.online.serving`) splits the
        pull/consume halves of :meth:`run` across asyncio tasks: a
        producer calls ``self.source.take(...)`` and enqueues the step,
        a consumer feeds it here.  *batch* must be exactly what the
        source yielded for *pos0* — reveal, observe, and decision
        logging then match the pull path bit for bit.  A batch arriving
        after the policy reported ``done`` is dropped without revealing,
        exactly as :meth:`run` never takes past ``done``.
        """
        if not self.policy.done:
            self._consume(int(pos0), list(batch))
        return self

    def run(self, max_arrivals: Optional[int] = None) -> "OnlineRun":
        """Consume up to *max_arrivals* more arrivals (all, when ``None``).

        Stops early once the policy reports ``done`` — later arrivals
        are then never revealed, matching the legacy algorithms that
        return mid-stream.
        """
        budget = None if max_arrivals is None else int(max_arrivals)
        while not self.finished:
            if budget is not None and budget <= 0:
                break
            step = self.source.take(budget)
            if step is None:
                break
            pos0, batch, _stamps = step
            self._consume(pos0, batch)
            if budget is not None:
                budget -= len(batch)
        return self

    # -- transactional feeds ---------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Capture the mutable run state a single feed may touch.

        The fault-tolerant serving path brackets each :meth:`feed` with
        ``snapshot()`` / :meth:`rollback`: if an injected (or real)
        oracle failure escapes mid-batch, the batch is rolled back and
        retried as if it had never been observed.  The policy state
        travels through a JSON round-trip of ``state_dict()`` (the same
        encoding checkpoints use), so the snapshot shares no mutable
        structure with the live policy.  Source state is deliberately
        absent: the serving producer has already pulled the batch, and
        a retry re-feeds that same in-hand batch.
        """
        return {
            "policy": json.loads(json.dumps(self.policy.state_dict())),
            "decisions": [list(d) for d in self.decisions],
            "hired": self._hired_logged,
        }

    def rollback(self, snap: Mapping[str, object]) -> None:
        """Restore a :meth:`snapshot` taken before a failed feed.

        Reinstates the policy state machine, the decision log, and the
        hired-set watermark.  The arrival oracle needs no rollback —
        ``reveal`` is an idempotent set-add, and the retried feed
        re-reveals the same batch.  Counting-oracle rollback is the
        caller's job (the serving loop snapshots ``calls`` alongside),
        because the policy's ``load_state`` may itself bill restore
        queries.
        """
        self.policy.load_state(json.loads(json.dumps(snap["policy"])))
        self.decisions = [list(d) for d in snap["decisions"]]  # type: ignore[union-attr]
        self._hired_logged = frozenset(snap["hired"])  # type: ignore[arg-type]
        self._result = None

    # -- resume ----------------------------------------------------------

    def seek(self, cursor: int) -> None:
        """Advance the source to *cursor* without observing (v1 resume)."""
        self.source.seek(cursor)

    def restore(self, checkpoint: Mapping[str, object]) -> None:
        """Restore a v2 checkpoint's stream/oracle/policy state in place.

        O(selected): the saved frontier (hired set plus any elements the
        policy may still query, e.g. the knapsack rule's observation
        half) is re-revealed to the fresh oracle, the source jumps to
        its saved cursor/fingerprint, the decision log is reinstated,
        and the policy state machine reloads.  Nothing scales with the
        consumed prefix.
        """
        cursor = int(checkpoint["cursor"])  # type: ignore[arg-type]
        n = self.source.n
        if cursor < 0 or (n is not None and cursor > n):
            raise InvalidInstanceError(
                f"cursor {cursor} outside stream of {n}"
            )
        source_block = checkpoint.get("source")
        if not isinstance(source_block, Mapping) or "state" not in source_block:
            raise InvalidInstanceError("checkpoint carries no source state")
        self.source.restore(dict(source_block["state"]))  # type: ignore[arg-type]
        if self.source.cursor != cursor:
            raise InvalidInstanceError(
                f"cursor {cursor} does not match the source state's "
                f"cursor {self.source.cursor}"
            )
        for element in checkpoint.get("frontier", ()):  # type: ignore[union-attr]
            self.oracle.reveal(element)
        self.decisions = [list(d) for d in checkpoint.get("decisions", ())]  # type: ignore[union-attr]
        self.policy.load_state(checkpoint["policy"]["state"])  # type: ignore[index]
        self._hired_logged = frozenset(self.policy.hired_set())
        self._result = None

    def result(self):
        """Finish the policy and return its result (cached)."""
        if self._result is None:
            self._result = self.policy.finish()
        return self._result


def drive_stream(stream, policy: OnlinePolicy, *, finish: bool = True):
    """Drive *policy* over a legacy :class:`SecretaryStream`, one arrival
    at a time, stopping as soon as the policy is done.

    Returns the policy's finished result (or the policy itself with
    ``finish=False``, for wrappers that post-process).
    """
    policy.bind(stream.oracle, stream.n)
    for pos, element in enumerate(stream):
        policy.observe(pos, element)
        if policy.done:
            break
    return policy.finish() if finish else policy


def run_online(
    utility: SetFunction,
    schedule: ArrivalSchedule,
    policy: OnlinePolicy,
):
    """One-shot convenience: run *policy* over *schedule* to completion."""
    return OnlineRun(utility, schedule, policy).run().result()
