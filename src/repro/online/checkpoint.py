"""Checkpoint/resume codec: JSON round-trip of a suspended online run.

Schema **v2** (the O(selected) layout): a checkpoint holds the arrival
*source spec* — ``(process, seed, params)`` plus the source's O(1)
suspend state (cursor, incremental fingerprint chain, RNG state) — the
append-only decision log, the resume *frontier* (the hired set plus any
arrivals the policy may still query), and the policy's config + mutable
state.  Nothing scales with the consumed prefix: resume rebuilds the
source from its spec, jumps it to the saved cursor, re-reveals only the
frontier, and restores the policy state machine — so suspend-at-any-
arrival followed by resume reproduces the uninterrupted run's hired set
exactly (the property suite asserts this for every policy × arrival
process), at O(selected) cost for million-arrival streams.

Schema **v1** checkpoints (PR 5 and earlier: full embedded schedule,
prefix re-reveal on resume) still load through a migration shim — the
legacy O(stream) path, kept so old files keep working.

The utility itself is not serialised — values can be arbitrarily large
objects and are already reproducible from workload seeds — so
:func:`resume_run` takes the rebuilt utility (and any non-serializable
policy dependencies such as matroids) from the caller; the CLI layer
(:mod:`repro.online.session`) stores the workload recipe alongside the
checkpoint to make that rebuild automatic.
"""

from __future__ import annotations

import os

from typing import Dict, Mapping, Optional
from urllib.parse import quote, unquote

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.online.arrivals import (
    ArrivalSchedule,
    ArrivalSource,
    ScheduleSource,
    source_from_spec,
)
from repro.online.driver import OnlineRun
from repro.online.policies import OnlinePolicy, make_policy

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "SHARDED_MANIFEST_SCHEMA_VERSION",
    "SUPPORTED_CHECKPOINT_VERSIONS",
    "SUPPORTED_MANIFEST_VERSIONS",
    "TENANT_CHECKPOINT_NAME",
    "IdleCheckpointPolicy",
    "check_schema_version",
    "list_tenant_checkpoints",
    "make_checkpoint",
    "read_tenant_checkpoint",
    "resume_run",
    "tenant_checkpoint_path",
    "write_tenant_checkpoint",
]

CHECKPOINT_FORMAT = "repro-online-checkpoint/1"

#: Version of the checkpoint payload schema.  v1 embedded the full
#: materialized schedule and re-revealed the consumed prefix on resume
#: (O(stream) at both ends); v2 stores a source spec + decision log +
#: frontier (O(selected)).  Payloads written before versioning carry no
#: marker and are accepted as version 1; unknown versions are rejected
#: up front with an actionable error instead of a ``KeyError`` deep
#: inside a policy's ``from_config``.
CHECKPOINT_SCHEMA_VERSION = 2

#: Every schema version this release can read (v1 via the migration shim).
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

#: Schema version of a *sharded manifest* that carries a partition-epoch
#: history (a ``"partition"`` block recording every reshard; see
#: :class:`repro.online.sharding.PartitionMap`).  A never-resharded
#: manifest keeps writing :data:`CHECKPOINT_SCHEMA_VERSION` with the old
#: single-epoch shard blocks, so its bytes are unchanged; only
#: :func:`repro.online.sharding.reshard_manifest` emits version 3.
SHARDED_MANIFEST_SCHEMA_VERSION = 3

#: Every sharded-manifest schema version this release can read (v1/v2
#: through the same migration shims as flat checkpoints, v3 with the
#: epoch history).
SUPPORTED_MANIFEST_VERSIONS = (1, 2, 3)


def check_schema_version(
    payload: Mapping[str, object],
    what: str = "checkpoint",
    *,
    key: str = "schema_version",
    supported=SUPPORTED_CHECKPOINT_VERSIONS,
) -> None:
    """Reject payloads written under an unknown schema version.

    *supported* is a single version or a collection of readable ones.
    """
    version = payload.get(key, 1)
    ok = (
        tuple(supported)
        if isinstance(supported, (tuple, list, set, frozenset))
        else (supported,)
    )
    if version not in ok:
        shown = ", ".join(str(v) for v in ok)
        raise InvalidInstanceError(
            f"{what} schema version {version!r} is not supported by this "
            f"release (supported: {shown}); it was probably written "
            "by a different release — re-run the stream or resume with "
            "the release that wrote it"
        )


def _checked_elements(elements, what: str) -> list:
    out = []
    for e in elements:
        if not isinstance(e, (str, int)):
            raise InvalidInstanceError(
                f"checkpoint {what} with element {e!r} is not JSON "
                "round-trippable; checkpointable streams need str/int elements"
            )
        out.append(e)
    return out


def make_checkpoint(
    run: OnlineRun, extra: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Serialise *run* as an O(selected) schema-v2 payload.

    The stream travels as ``(source spec, source state)``; hires travel
    as the decision log; the frontier lists what resume must re-reveal.
    *extra* is attached verbatim under ``"instance"`` — callers use it
    to record how to rebuild the utility (workload family, seed, ...).
    """
    decisions = [
        [int(pos), element]
        for pos, element in run.decisions
    ]
    _checked_elements((d[1] for d in decisions), "decision log")
    payload: Dict[str, object] = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "cursor": run.cursor,
        "source": {**run.source.spec(), "state": run.source.state_dict()},
        "decisions": decisions,
        "frontier": _checked_elements(run.policy.frontier(), "frontier"),
        "policy": {
            "name": run.policy.name,
            "config": run.policy.config_dict(),
            "state": run.policy.state_dict(),
        },
    }
    if extra is not None:
        payload["instance"] = dict(extra)
    return payload


def resume_run(
    checkpoint: Mapping[str, object],
    utility: SetFunction,
    *,
    policy: Optional[OnlinePolicy] = None,
    deps: Optional[Mapping[str, object]] = None,
    source: Optional[ArrivalSource] = None,
) -> OnlineRun:
    """Rebuild a suspended :class:`OnlineRun` from *checkpoint*.

    v2 payloads resume in O(selected): the source is rebuilt from its
    spec (or taken from the explicit *source* argument — the session
    layer passes one built over the uncounted base utility, so stream
    construction never inflates oracle-call accounting), jumped to the
    saved cursor, and only the frontier is re-revealed.  v1 payloads go
    through the migration shim: schedule from the embedded payload,
    prefix re-revealed, decision log reconstructed from the restored
    policy — the legacy O(stream) path.

    The policy is rebuilt from the checkpoint's config unless an
    explicit *policy* instance is given (required when it carries
    non-serializable dependencies not coverable by *deps*).
    """
    if checkpoint.get("format") != CHECKPOINT_FORMAT:
        raise InvalidInstanceError(
            f"not a {CHECKPOINT_FORMAT} payload: {checkpoint.get('format')!r}"
        )
    check_schema_version(checkpoint)
    spec = checkpoint["policy"]
    if policy is None:
        policy = make_policy(
            str(spec["name"]), spec["config"], **dict(deps or {})  # type: ignore[index]
        )
    version = int(checkpoint.get("schema_version", 1))  # type: ignore[arg-type]
    if version == 1:
        return _resume_v1(checkpoint, utility, policy)
    if source is None:
        source = source_from_spec(checkpoint.get("source"), utility)  # type: ignore[arg-type]
    run = OnlineRun(utility, source, policy)
    run.restore(checkpoint)
    return run


# -- per-tenant checkpoint layout -------------------------------------------
#
# The serving layer (:mod:`repro.online.serving`) multiplexes many
# independent sessions ("tenants") per process; each tenant checkpoints
# into its own directory so tenants suspend, resume, and garbage-collect
# independently:
#
#     <root>/<encoded tenant id>/checkpoint.json
#
# Tenant ids are caller-chosen strings; the directory name percent-
# encodes anything outside ``[A-Za-z0-9._-]`` so arbitrary ids stay
# filesystem- and round-trip-safe.

#: File name of a tenant's current checkpoint inside its directory.
TENANT_CHECKPOINT_NAME = "checkpoint.json"

_TENANT_SAFE = "._-"


def _encode_tenant_id(tenant_id: str) -> str:
    """Percent-encode *tenant_id* into a safe directory name.

    ``""``, ``"."``, and ``".."`` are rejected outright — quote() would
    pass them through, and a directory by those names aliases the root
    or its parent.
    """
    tenant_id = str(tenant_id)
    if tenant_id in ("", ".", ".."):
        raise InvalidInstanceError(
            f"tenant id {tenant_id!r} cannot name a checkpoint directory"
        )
    return quote(tenant_id, safe=_TENANT_SAFE)


def tenant_checkpoint_path(root: str, tenant_id: str) -> str:
    """Where tenant *tenant_id* checkpoints under checkpoint root *root*."""
    return os.path.join(
        str(root), _encode_tenant_id(tenant_id), TENANT_CHECKPOINT_NAME
    )


def write_tenant_checkpoint(
    payload: Mapping[str, object], root: str, tenant_id: str
) -> str:
    """Atomically write *payload* as *tenant_id*'s current checkpoint.

    Creates the per-tenant directory on first use and returns the
    written path.  The write goes through
    :func:`repro.io.dump_json_atomic`, so a crash mid-write never
    truncates the checkpoint a resume depends on.

    Three fault sites bracket the write (scope = tenant id):
    ``checkpoint.before_write``, ``checkpoint.mid_write`` (inside the
    torn-write window, after the temp file but before the atomic
    rename), and ``checkpoint.after_write`` — the crash-consistency
    audit hard-kills at each to prove the atomicity claim above.
    """
    from repro.io import dump_json_atomic  # lazy: io imports scheduling
    from repro.online.faults import fault_hit  # lazy: faults imports numpy

    path = tenant_checkpoint_path(root, tenant_id)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fault_hit("checkpoint.before_write", tenant_id)
    dump_json_atomic(
        dict(payload),
        path,
        mid_write_hook=lambda: fault_hit("checkpoint.mid_write", tenant_id),
    )
    fault_hit("checkpoint.after_write", tenant_id)
    return path


def read_tenant_checkpoint(root: str, tenant_id: str) -> Optional[Dict[str, object]]:
    """The tenant's current checkpoint payload, or ``None`` if absent.

    Corrupt (non-JSON / non-object) files raise
    :class:`~repro.errors.InvalidInstanceError` naming the file, the
    same contract as the CLI's checkpoint loader.
    """
    import json

    path = tenant_checkpoint_path(root, tenant_id)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(
                f"tenant checkpoint {path} is corrupt or truncated "
                f"(not valid JSON: {exc})"
            ) from exc
    if not isinstance(payload, dict):
        raise InvalidInstanceError(f"tenant checkpoint {path} is not a JSON object")
    return payload


def list_tenant_checkpoints(root: str) -> Dict[str, str]:
    """Map tenant id -> checkpoint path for every tenant under *root*.

    Only directories that actually contain a
    :data:`TENANT_CHECKPOINT_NAME` file count; ids are decoded from
    their directory names, and the result is sorted by id so callers
    iterate deterministically.
    """
    if not os.path.isdir(root):
        return {}
    found = {}
    for entry in os.listdir(root):
        path = os.path.join(root, entry, TENANT_CHECKPOINT_NAME)
        if os.path.isfile(path):
            found[unquote(entry)] = path
    return dict(sorted(found.items()))


class IdleCheckpointPolicy:
    """When the serving loop checkpoints an idle tenant.

    A tenant is *quiescent* when its queues are empty and no pulled
    batch is in flight; the serving loop asks this policy whether a
    quiescent tenant is *due* a checkpoint.  The defaults checkpoint a
    tenant after it has sat idle for ``idle_seconds`` — but only if its
    stream advanced at least ``min_progress`` arrivals since the last
    checkpoint, so a parked tenant is not re-serialised every poll.
    """

    def __init__(self, idle_seconds: float = 0.05, min_progress: int = 1) -> None:
        """Record the idle threshold and the minimum progress between writes."""
        if idle_seconds < 0:
            raise InvalidInstanceError(
                f"idle_seconds must be >= 0, got {idle_seconds}"
            )
        if min_progress < 1:
            raise InvalidInstanceError(
                f"min_progress must be >= 1, got {min_progress}"
            )
        self.idle_seconds = float(idle_seconds)
        self.min_progress = int(min_progress)
        self._last_cursor: Dict[str, int] = {}

    def due(self, tenant_id: str, cursor: int, idle_for: float) -> bool:
        """Whether a tenant idle for *idle_for* seconds should checkpoint now."""
        if idle_for < self.idle_seconds:
            return False
        last = self._last_cursor.get(str(tenant_id))
        return last is None or int(cursor) - last >= self.min_progress

    def note_checkpoint(self, tenant_id: str, cursor: int) -> None:
        """Record that the tenant just checkpointed at *cursor*."""
        self._last_cursor[str(tenant_id)] = int(cursor)


def _resume_v1(
    checkpoint: Mapping[str, object],
    utility: SetFunction,
    policy: OnlinePolicy,
) -> OnlineRun:
    """Migration shim for schema-v1 (PR 5) checkpoints.

    The embedded schedule is materialized, the consumed prefix is
    re-revealed to a fresh arrival oracle (v1 stored no frontier), and
    the decision log — which v1 never recorded — is reconstructed from
    the restored policy's hired set, with positions recovered from the
    embedded order.  O(stream), as v1 always was.
    """
    schedule = ArrivalSchedule.from_payload(checkpoint["schedule"])  # type: ignore[arg-type]
    cursor = int(checkpoint["cursor"])  # type: ignore[arg-type]
    if not (0 <= cursor <= schedule.n):
        raise InvalidInstanceError(
            f"cursor {cursor} outside stream of {schedule.n}"
        )
    run = OnlineRun(utility, ScheduleSource(schedule), policy)
    run.seek(cursor)
    for element in schedule.order[:cursor]:
        run.oracle.reveal(element)
    policy.load_state(checkpoint["policy"]["state"])  # type: ignore[index]
    position = {e: i for i, e in enumerate(schedule.order)}
    hired = frozenset(policy.hired_set())
    run.decisions = sorted(
        ([position[e], e] for e in hired), key=lambda d: d[0]
    )
    run._hired_logged = hired
    return run
