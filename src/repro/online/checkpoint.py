"""Checkpoint/resume codec: JSON round-trip of a suspended online run.

A checkpoint is a plain dict (safe for ``json.dumps``) holding the
arrival schedule, the stream cursor, and the policy's config + mutable
state.  Resuming rebuilds the arrival oracle by replaying *reveals*
(never decisions) for the consumed prefix, reconstructs the policy from
its config, and restores its state — so suspend-at-any-arrival followed
by resume reproduces the uninterrupted run's hired set exactly (the
property suite asserts this for every policy × arrival process).

The utility itself is not serialised — values can be arbitrarily large
objects and are already reproducible from workload seeds — so
:func:`resume_run` takes the rebuilt utility (and any non-serializable
policy dependencies such as matroids) from the caller; the CLI layer
(:mod:`repro.online.session`) stores the workload recipe alongside the
checkpoint to make that rebuild automatic.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.online.arrivals import ArrivalSchedule
from repro.online.driver import OnlineRun
from repro.online.policies import OnlinePolicy, make_policy

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "check_schema_version",
    "make_checkpoint",
    "resume_run",
]

CHECKPOINT_FORMAT = "repro-online-checkpoint/1"

#: Version of the checkpoint payload schema (the key layout of the
#: schedule / policy / instance-recipe sections).  Payloads written
#: before versioning carry no marker and are accepted as version 1;
#: any other version is rejected up front with an actionable error
#: instead of a ``KeyError`` deep inside a policy's ``from_config``.
CHECKPOINT_SCHEMA_VERSION = 1


def check_schema_version(
    payload: Mapping[str, object],
    what: str = "checkpoint",
    *,
    key: str = "schema_version",
    supported: int = CHECKPOINT_SCHEMA_VERSION,
) -> None:
    """Reject payloads written under an unknown schema version."""
    version = payload.get(key, 1)
    if version != supported:
        raise InvalidInstanceError(
            f"{what} schema version {version!r} is not supported by this "
            f"release (supported: {supported}); it was probably written "
            "by a different release — re-run the stream or resume with "
            "the release that wrote it"
        )


def make_checkpoint(
    run: OnlineRun, extra: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Serialise *run* (policy + schedule + cursor) to a JSON-able dict.

    *extra* is attached verbatim under ``"instance"`` — callers use it
    to record how to rebuild the utility (workload family, seed, ...).
    """
    payload: Dict[str, object] = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "cursor": run.cursor,
        "schedule": run.schedule.payload(),
        "policy": {
            "name": run.policy.name,
            "config": run.policy.config_dict(),
            "state": run.policy.state_dict(),
        },
    }
    if extra is not None:
        payload["instance"] = dict(extra)
    return payload


def resume_run(
    checkpoint: Mapping[str, object],
    utility: SetFunction,
    *,
    policy: Optional[OnlinePolicy] = None,
    deps: Optional[Mapping[str, object]] = None,
) -> OnlineRun:
    """Rebuild a suspended :class:`OnlineRun` from *checkpoint*.

    The consumed prefix of the schedule is re-revealed to a fresh
    arrival oracle (restoring the no-peeking frontier), then the
    policy — rebuilt from the checkpoint's config unless an explicit
    *policy* instance is given (required when the policy carries
    non-serializable dependencies not coverable by *deps*) — is bound
    and its mutable state restored.
    """
    if checkpoint.get("format") != CHECKPOINT_FORMAT:
        raise InvalidInstanceError(
            f"not a {CHECKPOINT_FORMAT} payload: {checkpoint.get('format')!r}"
        )
    check_schema_version(checkpoint)
    schedule = ArrivalSchedule.from_payload(checkpoint["schedule"])  # type: ignore[arg-type]
    spec = checkpoint["policy"]
    if policy is None:
        policy = make_policy(
            str(spec["name"]), spec["config"], **dict(deps or {})  # type: ignore[index]
        )
    cursor = int(checkpoint["cursor"])  # type: ignore[arg-type]
    if not (0 <= cursor <= schedule.n):
        raise InvalidInstanceError(f"cursor {cursor} outside stream of {schedule.n}")
    run = OnlineRun(utility, schedule, policy)
    for element in schedule.order[:cursor]:
        run.oracle.reveal(element)
    run.cursor = cursor
    policy.load_state(spec["state"])  # type: ignore[index]
    return run
