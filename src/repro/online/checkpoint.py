"""Checkpoint/resume codec: JSON round-trip of a suspended online run.

Schema **v2** (the O(selected) layout): a checkpoint holds the arrival
*source spec* — ``(process, seed, params)`` plus the source's O(1)
suspend state (cursor, incremental fingerprint chain, RNG state) — the
append-only decision log, the resume *frontier* (the hired set plus any
arrivals the policy may still query), and the policy's config + mutable
state.  Nothing scales with the consumed prefix: resume rebuilds the
source from its spec, jumps it to the saved cursor, re-reveals only the
frontier, and restores the policy state machine — so suspend-at-any-
arrival followed by resume reproduces the uninterrupted run's hired set
exactly (the property suite asserts this for every policy × arrival
process), at O(selected) cost for million-arrival streams.

Schema **v1** checkpoints (PR 5 and earlier: full embedded schedule,
prefix re-reveal on resume) still load through a migration shim — the
legacy O(stream) path, kept so old files keep working.

The utility itself is not serialised — values can be arbitrarily large
objects and are already reproducible from workload seeds — so
:func:`resume_run` takes the rebuilt utility (and any non-serializable
policy dependencies such as matroids) from the caller; the CLI layer
(:mod:`repro.online.session`) stores the workload recipe alongside the
checkpoint to make that rebuild automatic.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.online.arrivals import (
    ArrivalSchedule,
    ArrivalSource,
    ScheduleSource,
    source_from_spec,
)
from repro.online.driver import OnlineRun
from repro.online.policies import OnlinePolicy, make_policy

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "SUPPORTED_CHECKPOINT_VERSIONS",
    "check_schema_version",
    "make_checkpoint",
    "resume_run",
]

CHECKPOINT_FORMAT = "repro-online-checkpoint/1"

#: Version of the checkpoint payload schema.  v1 embedded the full
#: materialized schedule and re-revealed the consumed prefix on resume
#: (O(stream) at both ends); v2 stores a source spec + decision log +
#: frontier (O(selected)).  Payloads written before versioning carry no
#: marker and are accepted as version 1; unknown versions are rejected
#: up front with an actionable error instead of a ``KeyError`` deep
#: inside a policy's ``from_config``.
CHECKPOINT_SCHEMA_VERSION = 2

#: Every schema version this release can read (v1 via the migration shim).
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)


def check_schema_version(
    payload: Mapping[str, object],
    what: str = "checkpoint",
    *,
    key: str = "schema_version",
    supported=SUPPORTED_CHECKPOINT_VERSIONS,
) -> None:
    """Reject payloads written under an unknown schema version.

    *supported* is a single version or a collection of readable ones.
    """
    version = payload.get(key, 1)
    ok = (
        tuple(supported)
        if isinstance(supported, (tuple, list, set, frozenset))
        else (supported,)
    )
    if version not in ok:
        shown = ", ".join(str(v) for v in ok)
        raise InvalidInstanceError(
            f"{what} schema version {version!r} is not supported by this "
            f"release (supported: {shown}); it was probably written "
            "by a different release — re-run the stream or resume with "
            "the release that wrote it"
        )


def _checked_elements(elements, what: str) -> list:
    out = []
    for e in elements:
        if not isinstance(e, (str, int)):
            raise InvalidInstanceError(
                f"checkpoint {what} with element {e!r} is not JSON "
                "round-trippable; checkpointable streams need str/int elements"
            )
        out.append(e)
    return out


def make_checkpoint(
    run: OnlineRun, extra: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Serialise *run* as an O(selected) schema-v2 payload.

    The stream travels as ``(source spec, source state)``; hires travel
    as the decision log; the frontier lists what resume must re-reveal.
    *extra* is attached verbatim under ``"instance"`` — callers use it
    to record how to rebuild the utility (workload family, seed, ...).
    """
    decisions = [
        [int(pos), element]
        for pos, element in run.decisions
    ]
    _checked_elements((d[1] for d in decisions), "decision log")
    payload: Dict[str, object] = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "cursor": run.cursor,
        "source": {**run.source.spec(), "state": run.source.state_dict()},
        "decisions": decisions,
        "frontier": _checked_elements(run.policy.frontier(), "frontier"),
        "policy": {
            "name": run.policy.name,
            "config": run.policy.config_dict(),
            "state": run.policy.state_dict(),
        },
    }
    if extra is not None:
        payload["instance"] = dict(extra)
    return payload


def resume_run(
    checkpoint: Mapping[str, object],
    utility: SetFunction,
    *,
    policy: Optional[OnlinePolicy] = None,
    deps: Optional[Mapping[str, object]] = None,
    source: Optional[ArrivalSource] = None,
) -> OnlineRun:
    """Rebuild a suspended :class:`OnlineRun` from *checkpoint*.

    v2 payloads resume in O(selected): the source is rebuilt from its
    spec (or taken from the explicit *source* argument — the session
    layer passes one built over the uncounted base utility, so stream
    construction never inflates oracle-call accounting), jumped to the
    saved cursor, and only the frontier is re-revealed.  v1 payloads go
    through the migration shim: schedule from the embedded payload,
    prefix re-revealed, decision log reconstructed from the restored
    policy — the legacy O(stream) path.

    The policy is rebuilt from the checkpoint's config unless an
    explicit *policy* instance is given (required when it carries
    non-serializable dependencies not coverable by *deps*).
    """
    if checkpoint.get("format") != CHECKPOINT_FORMAT:
        raise InvalidInstanceError(
            f"not a {CHECKPOINT_FORMAT} payload: {checkpoint.get('format')!r}"
        )
    check_schema_version(checkpoint)
    spec = checkpoint["policy"]
    if policy is None:
        policy = make_policy(
            str(spec["name"]), spec["config"], **dict(deps or {})  # type: ignore[index]
        )
    version = int(checkpoint.get("schema_version", 1))  # type: ignore[arg-type]
    if version == 1:
        return _resume_v1(checkpoint, utility, policy)
    if source is None:
        source = source_from_spec(checkpoint.get("source"), utility)  # type: ignore[arg-type]
    run = OnlineRun(utility, source, policy)
    run.restore(checkpoint)
    return run


def _resume_v1(
    checkpoint: Mapping[str, object],
    utility: SetFunction,
    policy: OnlinePolicy,
) -> OnlineRun:
    """Migration shim for schema-v1 (PR 5) checkpoints.

    The embedded schedule is materialized, the consumed prefix is
    re-revealed to a fresh arrival oracle (v1 stored no frontier), and
    the decision log — which v1 never recorded — is reconstructed from
    the restored policy's hired set, with positions recovered from the
    embedded order.  O(stream), as v1 always was.
    """
    schedule = ArrivalSchedule.from_payload(checkpoint["schedule"])  # type: ignore[arg-type]
    cursor = int(checkpoint["cursor"])  # type: ignore[arg-type]
    if not (0 <= cursor <= schedule.n):
        raise InvalidInstanceError(
            f"cursor {cursor} outside stream of {schedule.n}"
        )
    run = OnlineRun(utility, ScheduleSource(schedule), policy)
    run.seek(cursor)
    for element in schedule.order[:cursor]:
        run.oracle.reveal(element)
    policy.load_state(checkpoint["policy"]["state"])  # type: ignore[index]
    position = {e: i for i, e in enumerate(schedule.order)}
    hired = frozenset(policy.hired_set())
    run.decisions = sorted(
        ([position[e], e] for e in hired), key=lambda d: d[0]
    )
    run._hired_logged = hired
    return run
