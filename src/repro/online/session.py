"""Self-contained online sessions: the backend of ``repro online``.

A *session* bundles a workload recipe (family, sizes, seed), the policy
it drives, and the arrival process into one resumable unit.  The recipe
travels inside the checkpoint, so ``repro online resume CHECKPOINT``
needs nothing but the file: the utility is rebuilt deterministically
from the recorded seed, the schedule is replayed from the serialized
order, and the policy state machine picks up mid-stream.

Seeds derive through :func:`repro.engine.hashing.derive_seed` — the
stream order and the algorithm's coin flips draw from independent child
seeds of the session seed, mirroring the engine adapters, and the coin
*outcomes* are baked into the policy config so resuming never replays
RNG state.
"""

from __future__ import annotations

import numpy as np

from typing import Dict, Mapping, Optional, Tuple

from repro.core.oracle import CountingOracle
from repro.core.submodular import SetFunction
from repro.engine.hashing import derive_seed
from repro.errors import InvalidInstanceError
from repro.online.arrivals import build_arrival_schedule
from repro.online.checkpoint import make_checkpoint, resume_run
from repro.online.driver import OnlineRun
from repro.online.policies import (
    BestSingletonPolicy,
    BottleneckPolicy,
    KnapsackSecretaryPolicy,
    OnlinePolicy,
    RobustTopKPolicy,
    SegmentedSubmodularPolicy,
    SubadditiveSegmentPolicy,
    nonmonotone_half_policy,
)
from repro.secretary.knapsack_secretary import reduce_knapsacks_to_one
from repro.workloads.secretary_streams import (
    STREAM_FAMILIES,
    knapsack_weights,
    stream_utility,
)

__all__ = [
    "SESSION_POLICIES",
    "SESSION_FAMILIES",
    "OnlineSession",
    "start_session",
    "resume_session",
]

SESSION_POLICIES = (
    "monotone",
    "nonmonotone",
    "classical",
    "robust",
    "bottleneck",
    "knapsack",
    "subadditive",
)
SESSION_FAMILIES = STREAM_FAMILIES


def _build_workload(recipe: Mapping[str, object]) -> Tuple[SetFunction, Dict]:
    """Rebuild (utility, per-item knapsack weights) from a recipe.

    Construction goes through the same
    :func:`~repro.workloads.secretary_streams.stream_utility` dispatch
    the engine adapters use, so a recipe names the same instance a
    sweep cell with the same (family, n, aux, seed) would build.
    """
    family = str(recipe["family"])
    n = int(recipe["n"])  # type: ignore[arg-type]
    aux = int(recipe.get("aux", 0))  # type: ignore[arg-type]
    seed = int(recipe["seed"])  # type: ignore[arg-type]
    if family not in SESSION_FAMILIES:
        raise InvalidInstanceError(
            f"unknown online workload family {family!r}; known: {SESSION_FAMILIES}"
        )
    gen = np.random.default_rng(seed)
    fn = stream_utility(
        family, n, aux=aux, rng=gen,
        distribution=str(recipe.get("distribution", "uniform")),
    )
    weights = {}
    if recipe.get("policy") == "knapsack":
        vectors = knapsack_weights(
            fn.ground_set, int(recipe.get("n_knapsacks", 2)), rng=gen  # type: ignore[arg-type]
        )
        weights = reduce_knapsacks_to_one(
            vectors, [1.0] * int(recipe.get("n_knapsacks", 2))  # type: ignore[arg-type]
        )
    return fn, weights


def _singleton_values(fn: SetFunction) -> Dict:
    return {e: fn.value(frozenset({e})) for e in sorted(fn.ground_set, key=repr)}


def _build_policy(
    recipe: Mapping[str, object], fn: SetFunction, weights: Mapping
) -> OnlinePolicy:
    name = str(recipe["policy"])
    n = int(recipe["n"])  # type: ignore[arg-type]
    k = int(recipe["k"])  # type: ignore[arg-type]
    algo_seed = derive_seed(int(recipe["seed"]), "online-algo")  # type: ignore[arg-type]
    gen = np.random.default_rng(algo_seed)
    if name == "monotone":
        return SegmentedSubmodularPolicy(k)
    if name == "nonmonotone":
        return nonmonotone_half_policy(n, k, bool(gen.random() < 0.5))
    if name == "classical":
        return BestSingletonPolicy(strict=True)
    if name == "robust":
        return RobustTopKPolicy(_singleton_values(fn), k)
    if name == "bottleneck":
        return BottleneckPolicy(_singleton_values(fn), k)
    if name == "knapsack":
        return KnapsackSecretaryPolicy(weights, heads=bool(gen.random() < 0.5))
    if name == "subadditive":
        if gen.random() < 0.5:
            return BestSingletonPolicy()
        n_segments = max(1, -(-n // k))  # ceil(n / k)
        return SubadditiveSegmentPolicy(k, int(gen.integers(n_segments)))
    raise InvalidInstanceError(
        f"unknown online policy {name!r}; known: {SESSION_POLICIES}"
    )


class OnlineSession:
    """A resumable (workload, policy, arrival process) execution.

    ``prior_calls`` carries the oracle-call count consumed before the
    last suspend (persisted in the checkpoint), so a resumed session's
    reported ``oracle_calls`` is cumulative and comparable to an
    uninterrupted run's — up to the few re-derivation queries some
    policies issue when restoring incremental-evaluator state.
    """

    def __init__(self, run: OnlineRun, base: SetFunction,
                 counting: CountingOracle, recipe: Dict[str, object],
                 prior_calls: int = 0) -> None:
        self.run = run
        self.base = base
        self.counting = counting
        self.recipe = recipe
        self.prior_calls = int(prior_calls)

    def advance(self, max_arrivals: Optional[int] = None) -> "OnlineSession":
        self.run.run(max_arrivals)
        return self

    @property
    def finished(self) -> bool:
        return self.run.finished

    @property
    def oracle_calls(self) -> int:
        """Cumulative counted queries across all suspend/resume hops."""
        return self.prior_calls + self.counting.calls

    def checkpoint(self) -> Dict[str, object]:
        extra = dict(self.recipe)
        extra["oracle_calls_consumed"] = self.oracle_calls
        return make_checkpoint(self.run, extra=extra)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "policy": self.recipe["policy"],
            "family": self.recipe["family"],
            "process": self.recipe["process"],
            "n": self.run.n,
            "cursor": self.run.cursor,
            "finished": self.run.finished,
            "oracle_calls": self.oracle_calls,
        }
        if self.run.finished:
            result = self.run.result()
            selected = sorted(result.selected, key=repr)
            out["selected"] = selected
            out["n_chosen"] = len(selected)
            out["value"] = float(self.base.value(frozenset(selected)))
            out["strategy"] = getattr(result, "strategy", None)
        return out


def start_session(
    policy: str = "monotone",
    family: str = "additive",
    n: int = 60,
    k: int = 4,
    *,
    seed: int = 0,
    process: str = "uniform",
    aux: int = 0,
    n_knapsacks: int = 2,
    distribution: str = "uniform",
    process_params: Optional[Mapping[str, object]] = None,
) -> OnlineSession:
    """Build a fresh session from a workload recipe."""
    recipe: Dict[str, object] = {
        "kind": "secretary-workload",
        "policy": policy,
        "family": family,
        "n": int(n),
        "k": int(k),
        "aux": int(aux),
        "n_knapsacks": int(n_knapsacks),
        "distribution": distribution,
        "seed": int(seed),
        "process": process,
        "process_params": dict(process_params or {}),
    }
    fn, weights = _build_workload(recipe)
    policy_obj = _build_policy(recipe, fn, weights)
    schedule = build_arrival_schedule(
        process, fn, derive_seed(int(seed), "online-stream"),
        **dict(process_params or {}),
    )
    counting = CountingOracle(fn)
    run = OnlineRun(counting, schedule, policy_obj)
    return OnlineSession(run, fn, counting, recipe)


def resume_session(checkpoint: Mapping[str, object]) -> OnlineSession:
    """Rebuild a suspended session from its self-contained checkpoint."""
    recipe = checkpoint.get("instance")
    if not isinstance(recipe, Mapping) or recipe.get("kind") != "secretary-workload":
        raise InvalidInstanceError(
            "checkpoint has no embedded workload recipe; resume it through "
            "repro.online.checkpoint.resume_run with an explicit utility"
        )
    fn, _ = _build_workload(recipe)
    counting = CountingOracle(fn)
    run = resume_run(checkpoint, counting)
    recipe = dict(recipe)
    prior = int(recipe.pop("oracle_calls_consumed", 0))  # type: ignore[arg-type]
    return OnlineSession(run, fn, counting, recipe, prior_calls=prior)
