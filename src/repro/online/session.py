"""Self-contained online sessions: the backend of ``repro online``.

A *session* bundles a workload recipe (family, sizes, seed), the policy
it drives, and the arrival process into one resumable unit.  The recipe
travels inside the checkpoint, so ``repro online resume CHECKPOINT``
needs nothing but the file: the utility is rebuilt deterministically
from the recorded seed, the arrival source is reconstructed from its
spec and jumped straight to the saved cursor (O(selected) — no prefix
replay), and the policy state machine picks up mid-stream.

Seeds derive through :func:`repro.engine.hashing.derive_seed` — the
stream order and the algorithm's coin flips draw from independent child
seeds of the session seed, mirroring the engine adapters, and the coin
*outcomes* are baked into the policy config so resuming never replays
RNG state.
"""

from __future__ import annotations

import multiprocessing

import numpy as np

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.submodular import SetFunction
from repro.engine.hashing import derive_seed
from repro.errors import InvalidInstanceError
from repro.online.arrivals import build_arrival_source, source_from_spec
from repro.online.checkpoint import (
    check_schema_version,
    make_checkpoint,
    resume_run,
)
from repro.online.driver import OnlineRun
from repro.online.policies import (
    BestSingletonPolicy,
    BottleneckPolicy,
    KnapsackSecretaryPolicy,
    OnlinePolicy,
    RobustTopKPolicy,
    SegmentedSubmodularPolicy,
    SubadditiveSegmentPolicy,
    nonmonotone_half_policy,
)
from repro.online.sharding import (
    SHARDED_CHECKPOINT_FORMAT,
    ShardCounters,
    ShardedRun,
    ShardView,
    knapsack_constraint,
    make_sharded_checkpoint,
    reshard_manifest,
    resume_sharded_run,
)
from repro.secretary.knapsack_secretary import reduce_knapsacks_to_one
from repro.workloads.secretary_streams import (
    STREAM_FAMILIES,
    knapsack_weights,
    stream_utility,
)

__all__ = [
    "RECIPE_SCHEMA_VERSION",
    "SESSION_POLICIES",
    "SESSION_FAMILIES",
    "OnlineSession",
    "ShardedSession",
    "WorkloadCache",
    "build_workload",
    "workload_key",
    "start_session",
    "resume_session",
    "start_sharded_session",
    "resume_sharded_session",
    "reshard_session",
    "resume_any_session",
]

#: Version of the embedded workload-recipe schema.  Recipes written
#: before versioning carry no marker and are accepted as version 1;
#: unknown versions are rejected up front (see
#: :func:`repro.online.checkpoint.check_schema_version`).
RECIPE_SCHEMA_VERSION = 1

SESSION_POLICIES = (
    "monotone",
    "nonmonotone",
    "classical",
    "robust",
    "bottleneck",
    "knapsack",
    "subadditive",
)
SESSION_FAMILIES = STREAM_FAMILIES


def build_workload(recipe: Mapping[str, object]) -> Tuple[SetFunction, Dict]:
    """Rebuild (utility, per-item knapsack weights) from a recipe.

    Construction goes through the same
    :func:`~repro.workloads.secretary_streams.stream_utility` dispatch
    the engine adapters use, so a recipe names the same instance a
    sweep cell with the same (family, n, aux, seed) would build.
    """
    family = str(recipe["family"])
    n = int(recipe["n"])  # type: ignore[arg-type]
    aux = int(recipe.get("aux", 0))  # type: ignore[arg-type]
    seed = int(recipe["seed"])  # type: ignore[arg-type]
    if family not in SESSION_FAMILIES:
        raise InvalidInstanceError(
            f"unknown online workload family {family!r}; known: {SESSION_FAMILIES}"
        )
    gen = np.random.default_rng(seed)
    fn = stream_utility(
        family, n, aux=aux, rng=gen,
        distribution=str(recipe.get("distribution", "uniform")),
    )
    weights = {}
    if recipe.get("policy") == "knapsack":
        vectors = knapsack_weights(
            fn.ground_set, int(recipe.get("n_knapsacks", 2)), rng=gen  # type: ignore[arg-type]
        )
        weights = reduce_knapsacks_to_one(
            vectors, [1.0] * int(recipe.get("n_knapsacks", 2))  # type: ignore[arg-type]
        )
    return fn, weights


def workload_key(recipe: Mapping[str, object]) -> Tuple:
    """Hashable identity of the workload *recipe* rebuilds.

    Two recipes with equal keys make :func:`build_workload` return the
    same utility (and, for knapsack policies, the same reduced weights):
    the generator is seeded by ``seed`` alone and the knapsack vectors
    are the only other draw.  Policy, arrival process, and ``k`` are
    deliberately absent — tenants that differ only there still share one
    utility instance (and one value cache) under :class:`WorkloadCache`.
    """
    needs_weights = recipe.get("policy") == "knapsack"
    return (
        str(recipe["family"]),
        int(recipe["n"]),  # type: ignore[arg-type]
        int(recipe.get("aux", 0)),  # type: ignore[arg-type]
        int(recipe["seed"]),  # type: ignore[arg-type]
        str(recipe.get("distribution", "uniform")),
        int(recipe.get("n_knapsacks", 2)) if needs_weights else None,  # type: ignore[arg-type]
    )


class WorkloadCache:
    """Shared (utility, weights, value cache) across same-workload tenants.

    The serving layer hands one instance to every ``start_session`` /
    ``resume_session`` it makes: tenants whose recipes agree on
    :func:`workload_key` then share a single utility object *and* a
    single :class:`~repro.core.oracle.CachedOracle` memoising its
    values.  Each tenant still wraps the shared cache in its own
    :class:`~repro.core.oracle.CountingOracle`, so per-tenant
    ``oracle_calls`` stay bit-identical to an uncached run — caching
    changes where values come from, never how many queries are billed.
    """

    def __init__(self, max_value_entries: Optional[int] = None) -> None:
        """Create an empty cache (*max_value_entries* bounds each LRU)."""
        self._entries: Dict[Tuple, Tuple[SetFunction, Dict, CachedOracle]] = {}
        self.max_value_entries = max_value_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of distinct workloads built so far."""
        return len(self._entries)

    def lookup(
        self, recipe: Mapping[str, object]
    ) -> Tuple[SetFunction, Dict, CachedOracle]:
        """Return (utility, weights, shared cached oracle) for *recipe*.

        Builds the workload on first sight of its :func:`workload_key`
        and reuses it afterwards; ``hits``/``misses`` count lookups for
        the serving stats.
        """
        key = workload_key(recipe)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            fn, weights = build_workload(recipe)
            entry = (fn, weights, CachedOracle(fn, self.max_value_entries))
            self._entries[key] = entry
        else:
            self.hits += 1
        return entry

    def stats(self) -> Dict[str, object]:
        """Aggregate cache effectiveness counters (JSON-friendly)."""
        shared = [oracle for _, _, oracle in self._entries.values()]
        return {
            "workloads": len(self._entries),
            "lookups": self.hits + self.misses,
            "workload_hits": self.hits,
            "value_hits": sum(o.hits for o in shared),
            "value_misses": sum(o.misses for o in shared),
        }


def _singleton_values(fn: SetFunction) -> Dict:
    return {e: fn.value(frozenset({e})) for e in sorted(fn.ground_set, key=repr)}


def _build_policy(
    recipe: Mapping[str, object],
    fn: SetFunction,
    weights: Mapping,
    *,
    n: Optional[int] = None,
    algo_seed: Optional[int] = None,
) -> OnlinePolicy:
    """Build the recipe's policy (optionally as one shard's replica).

    *n* overrides the stream length the policy lays out against (a shard
    replica sees its shard's length, not the logical stream's); *algo_seed*
    overrides the coin-flip seed (shard replicas flip independent,
    shard-derived coins).  The defaults reproduce the unsharded session.
    """
    name = str(recipe["policy"])
    n = int(recipe["n"]) if n is None else int(n)  # type: ignore[arg-type]
    k = int(recipe["k"])  # type: ignore[arg-type]
    if algo_seed is None:
        algo_seed = derive_seed(int(recipe["seed"]), "online-algo")  # type: ignore[arg-type]
    gen = np.random.default_rng(algo_seed)
    if name == "monotone":
        return SegmentedSubmodularPolicy(k)
    if name == "nonmonotone":
        return nonmonotone_half_policy(n, k, bool(gen.random() < 0.5))
    if name == "classical":
        return BestSingletonPolicy(strict=True)
    if name == "robust":
        return RobustTopKPolicy(_singleton_values(fn), k)
    if name == "bottleneck":
        return BottleneckPolicy(_singleton_values(fn), k)
    if name == "knapsack":
        return KnapsackSecretaryPolicy(weights, heads=bool(gen.random() < 0.5))
    if name == "subadditive":
        if gen.random() < 0.5:
            return BestSingletonPolicy()
        n_segments = max(1, -(-n // k))  # ceil(n / k)
        return SubadditiveSegmentPolicy(k, int(gen.integers(n_segments)))
    raise InvalidInstanceError(
        f"unknown online policy {name!r}; known: {SESSION_POLICIES}"
    )


class OnlineSession:
    """A resumable (workload, policy, arrival process) execution.

    ``prior_calls`` carries the oracle-call count consumed before the
    last suspend (persisted in the checkpoint), so a resumed session's
    reported ``oracle_calls`` is cumulative and *exactly* equal to an
    uninterrupted run's: the few re-derivation queries a policy issues
    while restoring incremental-evaluator state are measured at resume
    time and netted out of ``prior_calls`` (they re-derive values the
    uninterrupted run already paid for — billing them again would make
    every suspend/resume hop inflate the count).
    """

    def __init__(self, run: OnlineRun, base: SetFunction,
                 counting: CountingOracle, recipe: Dict[str, object],
                 prior_calls: int = 0) -> None:
        self.run = run
        self.base = base
        self.counting = counting
        self.recipe = recipe
        self.prior_calls = int(prior_calls)

    def advance(self, max_arrivals: Optional[int] = None) -> "OnlineSession":
        """Consume up to *max_arrivals* more arrivals (None = run to completion)."""
        self.run.run(max_arrivals)
        return self

    @property
    def finished(self) -> bool:
        """Whether every arrival has been consumed or the policy is done."""
        return self.run.finished

    @property
    def oracle_calls(self) -> int:
        """Cumulative counted queries across all suspend/resume hops."""
        return self.prior_calls + self.counting.calls

    def checkpoint(self) -> Dict[str, object]:
        """Suspend-state payload with the workload recipe attached."""
        extra = dict(self.recipe)
        extra["oracle_calls_consumed"] = self.oracle_calls
        return make_checkpoint(self.run, extra=extra)

    def summary(self) -> Dict[str, object]:
        """Selection, value, and oracle-call accounting for the run so far."""
        out: Dict[str, object] = {
            "policy": self.recipe["policy"],
            "family": self.recipe["family"],
            "process": self.recipe["process"],
            "n": self.run.n,
            "cursor": self.run.cursor,
            "finished": self.run.finished,
            "oracle_calls": self.oracle_calls,
        }
        if self.run.finished:
            result = self.run.result()
            selected = sorted(result.selected, key=repr)
            out["selected"] = selected
            out["n_chosen"] = len(selected)
            out["value"] = float(self.base.value(frozenset(selected)))
            out["strategy"] = getattr(result, "strategy", None)
        return out


def start_session(
    policy: str = "monotone",
    family: str = "additive",
    n: int = 60,
    k: int = 4,
    *,
    seed: int = 0,
    process: str = "uniform",
    aux: int = 0,
    n_knapsacks: int = 2,
    distribution: str = "uniform",
    process_params: Optional[Mapping[str, object]] = None,
    workload_cache: Optional[WorkloadCache] = None,
    fault_injector=None,
    fault_scope: Optional[str] = None,
) -> OnlineSession:
    """Build a fresh session from a workload recipe.

    With a *workload_cache*, same-workload tenants share one utility and
    one memoising value oracle; the per-tenant counting wrapper keeps
    ``oracle_calls`` identical either way.

    With a *fault_injector* (see :mod:`repro.online.faults`), the
    counting oracle is wrapped so every query passes through the
    ``oracle.value`` / ``oracle.batch`` fault sites under *fault_scope*
    (the tenant id, under the serving layer).  The wrapper sits outside
    the counting layer, so a query aborted by an injected fault is
    never billed.
    """
    recipe: Dict[str, object] = {
        "kind": "secretary-workload",
        "recipe_version": RECIPE_SCHEMA_VERSION,
        "policy": policy,
        "family": family,
        "n": int(n),
        "k": int(k),
        "aux": int(aux),
        "n_knapsacks": int(n_knapsacks),
        "distribution": distribution,
        "seed": int(seed),
        "process": process,
        "process_params": dict(process_params or {}),
    }
    if workload_cache is None:
        fn, weights = build_workload(recipe)
        shared: SetFunction = fn
    else:
        fn, weights, shared = workload_cache.lookup(recipe)
    policy_obj = _build_policy(recipe, fn, weights)
    source = build_arrival_source(
        process, fn, derive_seed(int(seed), "online-stream"),
        **dict(process_params or {}),
    )
    counting = CountingOracle(shared)
    target: SetFunction = counting
    if fault_injector is not None:
        target = fault_injector.wrap_oracle(counting, fault_scope or "session")
    run = OnlineRun(target, source, policy_obj)
    return OnlineSession(run, fn, counting, recipe)


def _checked_recipe(checkpoint: Mapping[str, object]) -> Mapping[str, object]:
    """The checkpoint's embedded recipe, kind- and version-validated."""
    recipe = checkpoint.get("instance")
    if not isinstance(recipe, Mapping) or recipe.get("kind") != "secretary-workload":
        raise InvalidInstanceError(
            "checkpoint has no embedded workload recipe; resume it through "
            "repro.online.checkpoint.resume_run with an explicit utility"
        )
    check_schema_version(
        recipe, "workload recipe",
        key="recipe_version", supported=RECIPE_SCHEMA_VERSION,
    )
    return recipe


def resume_session(
    checkpoint: Mapping[str, object],
    *,
    workload_cache: Optional[WorkloadCache] = None,
    fault_injector=None,
    fault_scope: Optional[str] = None,
) -> OnlineSession:
    """Rebuild a suspended session from its self-contained checkpoint.

    Cumulative ``oracle_calls`` accounting is exact: whatever restore
    itself bills (evaluator construction, frontier re-derivation) is
    measured right after :func:`~repro.online.checkpoint.resume_run`
    and netted out of the checkpoint's recorded prior count, so a
    suspend/resume hop never inflates the total over an uninterrupted
    run.
    """
    recipe = _checked_recipe(checkpoint)
    if workload_cache is None:
        fn, _ = build_workload(recipe)
        shared: SetFunction = fn
    else:
        fn, _, shared = workload_cache.lookup(recipe)
    counting = CountingOracle(shared)
    target: SetFunction = counting
    if fault_injector is not None:
        target = fault_injector.wrap_oracle(counting, fault_scope or "session")
    source = None
    if int(checkpoint.get("schema_version", 1)) >= 2:  # type: ignore[arg-type]
        # Rebuild the stream over the *base* utility so value-sorted
        # processes' construction queries never inflate call accounting.
        source = source_from_spec(checkpoint.get("source"), fn)
    run = resume_run(checkpoint, target, source=source)
    restore_overhead = counting.calls
    recipe = dict(recipe)
    prior = int(recipe.pop("oracle_calls_consumed", 0))  # type: ignore[arg-type]
    return OnlineSession(
        run, fn, counting, recipe, prior_calls=prior - restore_overhead
    )


# -- sharded sessions --------------------------------------------------------


def _shard_algo_seed(seed: int, shard_index: int, num_shards: int) -> int:
    """Coin-flip seed for one shard's policy replica.

    A single shard keeps the unsharded session's seed — that is what
    pins ``--shards 1`` bit-identical to the plain runtime; multiple
    shards flip independent, shard-derived coins.
    """
    base = derive_seed(int(seed), "online-algo")
    if num_shards == 1:
        return base
    return derive_seed(base, "shard", int(shard_index))


def _merge_rule(
    recipe: Mapping[str, object], weights: Mapping
) -> Tuple[Optional[Callable], Optional[int]]:
    """The ``(can_take, limit)`` pair the merge stage enforces.

    Mirrors each policy's own feasibility notion: the knapsack rule's
    hires must fit the reduced unit knapsack, the classical rule hires
    one, everything else is cardinality-``k``.
    """
    policy = str(recipe["policy"])
    if policy == "knapsack":
        return knapsack_constraint(weights), None
    if policy == "classical":
        return None, 1
    return None, int(recipe["k"])  # type: ignore[arg-type]


def _finish_shard_worker(job: Tuple[Dict, Dict]) -> Tuple[Dict, int]:
    """Spawn-pool body: resume one shard checkpoint, run to completion.

    Workers rebuild the utility from the recipe (checkpoints pickle,
    utilities need not) and return the finished shard's checkpoint plus
    the oracle calls it consumed.
    """
    recipe, shard_ck = job
    fn, _ = build_workload(recipe)
    if int(shard_ck.get("schema_version", 1)) >= 2:
        src = source_from_spec(shard_ck["source"], fn)
        view = ShardView(fn, src.order)
        counting = CountingOracle(view)
        run = resume_run(shard_ck, counting, source=src)
    else:
        view = ShardView(fn, shard_ck["schedule"]["order"])
        counting = CountingOracle(view)
        run = resume_run(shard_ck, counting)
    # Net out what the resume itself billed (evaluator construction,
    # frontier re-derivation): the parent already accounted for those
    # values, so the worker reports only genuinely new queries and the
    # parallel finish stays call-identical to the inline one.
    restore_overhead = counting.calls
    run.run()
    return make_checkpoint(run), counting.calls - restore_overhead


class ShardedSession:
    """A resumable sharded (workload, policy, arrival process) execution.

    The same contract as :class:`OnlineSession`, lifted over a
    :class:`~repro.online.sharding.ShardedRun`: one counting oracle per
    shard, cumulative ``oracle_calls`` across suspend/resume hops, a
    manifest checkpoint any subset of whose shards may be mid-stream.
    """

    def __init__(
        self,
        run: ShardedRun,
        base: SetFunction,
        countings: List[CountingOracle],
        recipe: Dict[str, object],
        prior_calls: int = 0,
    ) -> None:
        self.run = run
        self.base = base
        self.countings = countings
        self.recipe = recipe
        self.prior_calls = int(prior_calls)

    def advance(self, max_arrivals: Optional[int] = None) -> "ShardedSession":
        """Consume up to *max_arrivals* more arrivals (None = run to completion)."""
        self.run.run(max_arrivals)
        return self

    def advance_shard(
        self, index: int, max_arrivals: Optional[int] = None
    ) -> "ShardedSession":
        """Advance one shard independently (see :meth:`advance`)."""
        self.run.run_shard(index, max_arrivals)
        return self

    def advance_parallel(self, workers: int) -> "ShardedSession":
        """Run every unfinished shard to completion in a spawn pool.

        Each worker resumes one shard from its checkpoint (rebuilding
        the utility from the recipe, like a cross-process resume) and
        streams it dry; the parent folds the finished states back in.
        Falls back to the inline :meth:`advance` when there is nothing
        to parallelise.
        """
        pending = [i for i, r in enumerate(self.run.runs) if not r.finished]
        if len(pending) <= 1 or workers <= 1:
            return self.advance()
        jobs = [
            (dict(self.recipe), make_checkpoint(self.run.runs[i]))
            for i in pending
        ]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=min(int(workers), len(jobs))) as pool:
            finished = pool.map(_finish_shard_worker, jobs)
        for i, (ck, calls) in zip(pending, finished):
            self.run.runs[i].restore(ck)
            self.prior_calls += calls
        return self

    @property
    def finished(self) -> bool:
        """Whether every arrival has been consumed or the policy is done."""
        return self.run.finished

    @property
    def oracle_calls(self) -> int:
        """Cumulative counted queries: all shards + merge + prior hops."""
        return (
            self.prior_calls
            + sum(c.calls for c in self.countings)
            + self.run.merge_calls
        )

    def checkpoint(self) -> Dict[str, object]:
        """Suspend-state payload with the workload recipe attached."""
        extra = dict(self.recipe)
        extra["oracle_calls_consumed"] = self.oracle_calls
        return make_sharded_checkpoint(self.run, extra=extra)

    def summary(self) -> Dict[str, object]:
        """Selection, value, and oracle-call accounting for the run so far."""
        out: Dict[str, object] = {
            "policy": self.recipe["policy"],
            "family": self.recipe["family"],
            "process": self.recipe["process"],
            "shards": self.run.num_shards,
            "n": self.run.n,
            "cursor": self.run.cursor,
            "cursors": self.run.cursors,
            "finished": self.run.finished,
            "oracle_calls": self.oracle_calls,
        }
        if self.run.finished:
            result = self.run.result()
            selected = sorted(result.selected, key=repr)
            out["selected"] = selected
            out["n_chosen"] = len(selected)
            out["value"] = float(self.base.value(frozenset(selected)))
            out["strategy"] = getattr(result, "strategy", None)
            out["shard_n_chosen"] = [
                len(r.selected) for r in self.run.shard_results()
            ]
            out["merge_calls"] = self.run.merge_calls
            out["oracle_calls"] = self.oracle_calls  # includes the merge now
        return out


def start_sharded_session(
    policy: str = "monotone",
    family: str = "additive",
    n: int = 60,
    k: int = 4,
    *,
    shards: int = 1,
    seed: int = 0,
    process: str = "uniform",
    aux: int = 0,
    n_knapsacks: int = 2,
    distribution: str = "uniform",
    process_params: Optional[Mapping[str, object]] = None,
    workload_cache: Optional[WorkloadCache] = None,
    fault_injector=None,
    fault_scope: Optional[str] = None,
) -> ShardedSession:
    """Build a fresh sharded session: S policy replicas + merge.

    With a *fault_injector*, each shard's counting oracle is wrapped
    under its own derived scope (``<fault_scope>#s<index>``) so every
    shard sees an independent deterministic fault stream.
    """
    if shards < 1:
        raise InvalidInstanceError(f"shards must be >= 1, got {shards}")
    recipe: Dict[str, object] = {
        "kind": "secretary-workload",
        "recipe_version": RECIPE_SCHEMA_VERSION,
        "policy": policy,
        "family": family,
        "n": int(n),
        "k": int(k),
        "aux": int(aux),
        "n_knapsacks": int(n_knapsacks),
        "distribution": distribution,
        "seed": int(seed),
        "process": process,
        "process_params": dict(process_params or {}),
        "shards": int(shards),
    }
    if workload_cache is None:
        fn, weights = build_workload(recipe)
        shared: SetFunction = fn
    else:
        fn, weights, shared = workload_cache.lookup(recipe)
    stream_seed = derive_seed(int(seed), "online-stream")
    params = dict(process_params or {})

    def source_factory():
        """Build one lazy view of the tenant's full arrival stream."""
        return build_arrival_source(process, fn, stream_seed, **params)

    counters = ShardCounters()
    oracle_factory = _shard_oracle_factory(counters, fault_injector, fault_scope)

    def policy_factory(index: int, shard) -> OnlinePolicy:
        """Build the policy replica for shard *index*."""
        return _build_policy(
            recipe, fn, weights,
            n=shard.n,
            algo_seed=_shard_algo_seed(int(seed), index, int(shards)),
        )

    can_take, limit = _merge_rule(recipe, weights)
    # Shard views (and the merge stage) delegate to the shared value
    # cache when one is in play — counting stays per shard, above it.
    run = ShardedRun.from_source(
        shared, source_factory, int(shards), policy_factory,
        oracle_factory=oracle_factory, can_take=can_take, limit=limit,
    )
    return ShardedSession(run, fn, counters.countings, recipe)


def _shard_oracle_factory(
    counters: ShardCounters, fault_injector, fault_scope: Optional[str]
):
    """Per-shard oracle factory: counting, optionally fault-wrapped.

    Without an injector this *is* the plain :class:`ShardCounters`
    instance (the no-fault path is byte-for-byte the old wiring); with
    one, each shard's counting oracle is wrapped under a shard-derived
    scope so fault streams stay deterministic per shard.
    """
    if fault_injector is None:
        return counters
    scope = fault_scope or "session"

    def factory(index: int, view):
        """Wrap shard *index*'s counting oracle in its fault scope."""
        return fault_injector.wrap_oracle(
            counters(index, view), f"{scope}#s{index}"
        )

    return factory


def resume_sharded_session(
    checkpoint: Mapping[str, object],
    *,
    workload_cache: Optional[WorkloadCache] = None,
    fault_injector=None,
    fault_scope: Optional[str] = None,
) -> ShardedSession:
    """Rebuild a suspended sharded session from its manifest checkpoint.

    Like :func:`resume_session`, the queries restore itself bills are
    measured per shard and netted out of the recorded prior count, so
    cumulative ``oracle_calls`` across hops matches an uninterrupted
    sharded run exactly.
    """
    recipe = _checked_recipe(checkpoint)
    if workload_cache is None:
        fn, weights = build_workload(recipe)
        shared: SetFunction = fn
    else:
        fn, weights, shared = workload_cache.lookup(recipe)
    can_take, _ = _merge_rule(recipe, weights)
    counters = ShardCounters()
    oracle_factory = _shard_oracle_factory(counters, fault_injector, fault_scope)
    run = resume_sharded_run(
        checkpoint, shared, oracle_factory=oracle_factory, can_take=can_take
    )
    restore_overhead = sum(c.calls for c in counters.countings)
    recipe = dict(recipe)
    prior = int(recipe.pop("oracle_calls_consumed", 0))  # type: ignore[arg-type]
    return ShardedSession(
        run, fn, counters.countings, recipe,
        prior_calls=prior - restore_overhead,
    )


def reshard_session(
    checkpoint: Mapping[str, object],
    num_shards: int,
    *,
    salt: Optional[int] = None,
    workload_cache: Optional[WorkloadCache] = None,
) -> Dict[str, object]:
    """Re-partition a suspended sharded-session manifest (S → S').

    Pure manifest → manifest: the workload is rebuilt from the embedded
    recipe, lanes added by a grow are seeded with the same shard-derived
    policy replicas a fresh ``--shards S'`` session would flip, and
    :func:`~repro.online.sharding.reshard_manifest` does the partition
    work — consumed prefixes, hires, and cumulative oracle accounting
    stay exactly where they are.  The result resumes through the
    ordinary :func:`resume_sharded_session` / :func:`resume_any_session`
    path.
    """
    if int(num_shards) < 1:
        raise InvalidInstanceError(
            f"shards must be >= 1, got {num_shards}"
        )
    if checkpoint.get("format") != SHARDED_CHECKPOINT_FORMAT:
        raise InvalidInstanceError(
            "only sharded session manifests can be resharded; start the "
            "run with --shards (a --shards 1 manifest counts)"
        )
    recipe = _checked_recipe(checkpoint)
    if workload_cache is None:
        fn, weights = build_workload(recipe)
    else:
        fn, weights, _ = workload_cache.lookup(recipe)
    seed = int(recipe["seed"])  # type: ignore[arg-type]

    def policy_factory(index: int, lane) -> OnlinePolicy:
        """Seed the policy replica for a lane added by the grow."""
        return _build_policy(
            recipe, fn, weights,
            n=lane.n,
            algo_seed=_shard_algo_seed(seed, index, int(num_shards)),
        )

    out = reshard_manifest(
        checkpoint, int(num_shards), fn,
        policy_factory=policy_factory, salt=salt,
    )
    instance = out.get("instance")
    if isinstance(instance, dict) and "shards" in instance:
        instance["shards"] = int(num_shards)
    return out


def resume_any_session(
    checkpoint: Mapping[str, object],
    *,
    workload_cache: Optional[WorkloadCache] = None,
    fault_injector=None,
    fault_scope: Optional[str] = None,
):
    """Route a checkpoint payload to the matching resume path."""
    kwargs = dict(
        workload_cache=workload_cache,
        fault_injector=fault_injector,
        fault_scope=fault_scope,
    )
    if checkpoint.get("format") == SHARDED_CHECKPOINT_FORMAT:
        return resume_sharded_session(checkpoint, **kwargs)  # type: ignore[arg-type]
    return resume_session(checkpoint, **kwargs)  # type: ignore[arg-type]
