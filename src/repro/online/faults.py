"""Seed-deterministic fault injection for the online serving runtime.

The paper's model is adversarial about *inputs* — arrival orders,
budgets, and value distributions are chosen against the algorithm — but
a production serve also faces adversarial *infrastructure*: oracles
that time out, latency spikes, and processes killed mid-checkpoint.
This module makes those failures a reproducible experiment instead of a
flake: a :class:`FaultPlan` (a small JSON document) names *sites* where
faults fire, and a :class:`FaultInjector` built from it injects exactly
the same faults, in exactly the same places, on every run with the same
seed.

Fault *sites* are short dotted strings the runtime calls
:func:`fault_hit` (or :meth:`FaultInjector.hit`) at:

``serve.feed``
    Once per batch, just before the serving loop feeds it to a tenant's
    policy (scope = tenant id).
``oracle.value`` / ``oracle.batch``
    Per value query / per batched kernel query of a wrapped counting
    oracle (see :meth:`FaultInjector.wrap_oracle`).
``checkpoint.before_write`` / ``checkpoint.mid_write`` /
``checkpoint.after_write``
    Around every per-tenant checkpoint write (scope = tenant id); the
    ``mid_write`` site fires after the temp file is written but before
    the atomic ``os.replace`` — the classic torn-write window.
``report.write``
    Just before the serve CLI writes its ``--output`` report.

A :class:`FaultRule` matches sites (and scopes) by ``fnmatch`` pattern
and fires either at explicit 1-based hit indices (``at``) or with a
seeded per-hit probability (``rate``).  Determinism holds per
``(site, scope)`` stream: hit counters are keyed by site *and* scope,
so one tenant's fault schedule never depends on how the event loop
interleaved it with other tenants.

Four fault kinds exist: ``transient`` raises :class:`TransientFault`
(the serving loop rolls the batch back and retries it under the plan's
:class:`RetryPolicy`), ``permanent`` raises :class:`PermanentFault`
(a strike; ``max_strikes`` of them quarantine the tenant), ``latency``
injects a sleep, and ``kill`` hard-stops the process with
``os._exit(137)`` — no atexit handlers, no flushes — which is what the
crash-consistency audit (``benchmarks/fault_smoke.py``) uses to prove
checkpoint writes are torn-write safe at every registered
:data:`KILL_SITES` point.
"""

from __future__ import annotations

import json
import os
import time

from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import IncrementalEvaluator, PreparedBatch
from repro.core.submodular import Element, SetFunction
from repro.engine.hashing import derive_seed
from repro.errors import InvalidInstanceError

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_FORMAT",
    "KILL_EXIT_CODE",
    "KILL_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyOracle",
    "InjectedFault",
    "PermanentFault",
    "RetryPolicy",
    "TransientFault",
    "clear_injector",
    "current_injector",
    "fault_hit",
    "install_injector",
    "load_fault_plan",
]

#: Format marker of a fault-plan JSON document.
FAULT_PLAN_FORMAT = "repro-fault-plan/1"

#: Every fault kind a rule may inject.
FAULT_KINDS = ("transient", "permanent", "latency", "kill")

#: Exit status of a ``kill`` fault (the conventional SIGKILL code).
KILL_EXIT_CODE = 137

#: The registered hard-kill sites the crash-consistency audit sweeps:
#: killing at any of them must leave every tenant resumable from its
#: last durable checkpoint, bit-identical to an unfaulted run.
KILL_SITES = (
    "checkpoint.before_write",
    "checkpoint.mid_write",
    "checkpoint.after_write",
    "report.write",
)


class InjectedFault(RuntimeError):
    """Base class of all injected failures (never raised organically)."""


class TransientFault(InjectedFault):
    """An injected failure that a retry is expected to clear."""


class PermanentFault(InjectedFault):
    """An injected failure that retries will not clear (a strike)."""


class FaultRule:
    """One pattern-matched injection rule inside a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        ``fnmatch`` pattern over fault-site names (``"checkpoint.*"``,
        ``"serve.feed"``).
    kind:
        One of :data:`FAULT_KINDS`.
    scope:
        ``fnmatch`` pattern over scopes (tenant ids, shard scopes);
        defaults to every scope.
    at:
        Explicit 1-based hit indices of the ``(site, scope)`` stream at
        which the rule fires (``[1]`` = the first matching hit).
    rate:
        Per-hit firing probability in ``[0, 1]``, drawn from a seed
        derived from ``(plan seed, rule index, site, scope, hit)`` — the
        same hits fire on every run.  Exactly one of *at*/*rate* must be
        set.
    delay:
        Sleep seconds for ``latency`` rules (ignored otherwise).
    """

    def __init__(
        self,
        site: str,
        kind: str,
        *,
        scope: str = "*",
        at: Optional[Sequence[int]] = None,
        rate: float = 0.0,
        delay: float = 0.0,
    ) -> None:
        """Validate and freeze one injection rule."""
        self.site = str(site)
        self.kind = str(kind)
        self.scope = str(scope)
        self.at = None if at is None else tuple(int(i) for i in at)
        self.rate = float(rate)
        self.delay = float(delay)
        if not self.site:
            raise InvalidInstanceError("fault rule needs a non-empty 'site'")
        if self.kind not in FAULT_KINDS:
            raise InvalidInstanceError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.at is not None and any(i < 1 for i in self.at):
            raise InvalidInstanceError(
                f"fault rule 'at' indices are 1-based hit counts, got {self.at}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise InvalidInstanceError(
                f"fault rule 'rate' must be in [0, 1], got {self.rate}"
            )
        if (self.at is None) == (self.rate == 0.0):
            raise InvalidInstanceError(
                f"fault rule for site {self.site!r} must set exactly one of "
                "'at' (explicit hit indices) or 'rate' (seeded probability)"
            )
        if self.delay < 0.0:
            raise InvalidInstanceError(
                f"fault rule 'delay' must be >= 0, got {self.delay}"
            )
        if self.kind == "latency" and self.delay == 0.0:
            raise InvalidInstanceError(
                "latency fault rule needs a positive 'delay'"
            )

    def matches(self, site: str, scope: str) -> bool:
        """Whether this rule applies to a hit at ``(site, scope)``."""
        return fnmatchcase(site, self.site) and fnmatchcase(scope, self.scope)

    def payload(self) -> Dict[str, object]:
        """JSON-able form (inverse of :meth:`from_payload`)."""
        out: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.scope != "*":
            out["scope"] = self.scope
        if self.at is not None:
            out["at"] = list(self.at)
        if self.rate:
            out["rate"] = self.rate
        if self.delay:
            out["delay"] = self.delay
        return out

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultRule":
        """Build a rule from one JSON object, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise InvalidInstanceError("each fault rule must be a JSON object")
        known = {"site", "kind", "scope", "at", "rate", "delay"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidInstanceError(
                f"fault rule has unknown fields {unknown}; known: {sorted(known)}"
            )
        if "site" not in payload or "kind" not in payload:
            raise InvalidInstanceError("fault rule needs 'site' and 'kind'")
        return cls(
            str(payload["site"]),
            str(payload["kind"]),
            scope=str(payload.get("scope", "*")),
            at=payload.get("at"),  # type: ignore[arg-type]
            rate=float(payload.get("rate", 0.0)),  # type: ignore[arg-type]
            delay=float(payload.get("delay", 0.0)),  # type: ignore[arg-type]
        )


class RetryPolicy:
    """Deterministic exponential backoff + seeded jitter, with caps.

    The schedule is *stateless*: the delay of attempt ``a`` for scope
    ``s`` is a pure function of ``(plan seed, s, a)`` —
    ``min(max_delay, base_delay * 2**(a-1)) * (1 + jitter * u)`` with
    ``u`` drawn from a hash-derived child seed — so the same tenant
    retries on the same schedule across runs *and* across a
    checkpoint/resume hop (nothing about the schedule lives in process
    state).

    ``max_attempts`` caps total feed attempts per batch (transient
    faults); ``max_strikes`` caps permanent faults per tenant before
    quarantine.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_delay: float = 0.005,
        max_delay: float = 0.25,
        jitter: float = 0.1,
        max_strikes: int = 3,
    ) -> None:
        """Validate and freeze the retry/quarantine knobs."""
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.max_strikes = int(max_strikes)
        if self.max_attempts < 1:
            raise InvalidInstanceError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise InvalidInstanceError(
                "base_delay, max_delay, and jitter must be >= 0"
            )
        if self.max_strikes < 1:
            raise InvalidInstanceError(
                f"max_strikes must be >= 1, got {max_strikes}"
            )

    def delay(self, seed: int, scope: str, attempt: int) -> float:
        """Backoff seconds before retry *attempt* (1-based) for *scope*."""
        if attempt < 1:
            raise InvalidInstanceError(f"attempt is 1-based, got {attempt}")
        base = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0 or base == 0.0:
            return base
        u = np.random.default_rng(
            derive_seed(int(seed), "backoff", str(scope), int(attempt))
        ).random()
        return base * (1.0 + self.jitter * u)

    def payload(self) -> Dict[str, object]:
        """JSON-able form (inverse of :meth:`from_payload`)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "max_strikes": self.max_strikes,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RetryPolicy":
        """Build a policy from one JSON object, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise InvalidInstanceError("'retry' must be a JSON object")
        known = {"max_attempts", "base_delay", "max_delay", "jitter", "max_strikes"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidInstanceError(
                f"retry policy has unknown fields {unknown}; known: {sorted(known)}"
            )
        return cls(**{k: payload[k] for k in known if k in payload})  # type: ignore[arg-type]


class FaultPlan:
    """A reproducible chaos schedule: seed + rules + retry policy."""

    def __init__(
        self,
        *,
        seed: int = 0,
        rules: Iterable[FaultRule] = (),
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        """Freeze the plan (rules keep their declaration order)."""
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.retry = retry if retry is not None else RetryPolicy()

    def payload(self) -> Dict[str, object]:
        """JSON-able form (inverse of :meth:`from_payload`)."""
        return {
            "format": FAULT_PLAN_FORMAT,
            "seed": self.seed,
            "rules": [rule.payload() for rule in self.rules],
            "retry": self.retry.payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultPlan":
        """Parse a fault-plan JSON document (format-checked)."""
        if not isinstance(payload, Mapping):
            raise InvalidInstanceError("fault plan must be a JSON object")
        if payload.get("format") != FAULT_PLAN_FORMAT:
            raise InvalidInstanceError(
                f"not a {FAULT_PLAN_FORMAT} payload: {payload.get('format')!r}"
            )
        rules_raw = payload.get("rules", [])
        if not isinstance(rules_raw, list):
            raise InvalidInstanceError("fault plan 'rules' must be a list")
        retry_raw = payload.get("retry")
        return cls(
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
            rules=[FaultRule.from_payload(r) for r in rules_raw],
            retry=None if retry_raw is None else RetryPolicy.from_payload(retry_raw),  # type: ignore[arg-type]
        )


def load_fault_plan(path: str) -> FaultPlan:
    """Load and validate a :class:`FaultPlan` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(
                f"fault plan {path} is not valid JSON: {exc}"
            ) from exc
    return FaultPlan.from_payload(payload)


class FaultInjector:
    """Executes a :class:`FaultPlan`: counts hits, fires matching rules.

    Hit counters are keyed by ``(site, scope)``, so each scope (tenant)
    sees its own deterministic 1-based hit stream regardless of how the
    event loop interleaves tenants.  Every fired fault is appended to
    :attr:`fired` — ``{"site", "scope", "hit", "kind", "rule"}`` — which
    is what the determinism tests compare across runs.

    ``kill`` faults call :attr:`kill_fn` (default ``os._exit`` with
    :data:`KILL_EXIT_CODE`): a hard stop with no cleanup, exactly what
    the crash audit needs.  Tests may monkeypatch ``kill_fn``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        """Create a fresh injector (all hit counters at zero)."""
        self.plan = plan
        self.kill_fn = os._exit
        self.fired: List[Dict[str, object]] = []
        self._hits: Dict[Tuple[str, str], int] = {}

    def hit(self, site: str, scope: str = "-") -> float:
        """Register one hit at ``(site, scope)``; fire matching rules.

        Returns the total injected latency in seconds (0.0 when no
        latency rule fired); raises :class:`TransientFault` /
        :class:`PermanentFault` for fault rules; never returns from a
        ``kill`` rule.
        """
        site = str(site)
        scope = str(scope)
        key = (site, scope)
        count = self._hits.get(key, 0) + 1
        self._hits[key] = count
        delay = 0.0
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(site, scope):
                continue
            if not self._fires(index, rule, site, scope, count):
                continue
            self.fired.append(
                {
                    "site": site,
                    "scope": scope,
                    "hit": count,
                    "kind": rule.kind,
                    "rule": index,
                }
            )
            if rule.kind == "latency":
                delay += rule.delay
            elif rule.kind == "kill":
                self.kill_fn(KILL_EXIT_CODE)
            elif rule.kind == "transient":
                raise TransientFault(
                    f"injected transient fault at {site} "
                    f"(scope {scope!r}, hit {count})"
                )
            else:
                raise PermanentFault(
                    f"injected permanent fault at {site} "
                    f"(scope {scope!r}, hit {count})"
                )
        return delay

    def _fires(
        self, index: int, rule: FaultRule, site: str, scope: str, count: int
    ) -> bool:
        if rule.at is not None:
            return count in rule.at
        u = np.random.default_rng(
            derive_seed(self.plan.seed, "fault", index, site, scope, count)
        ).random()
        return u < rule.rate

    def hits(self, site: str, scope: str = "-") -> int:
        """How many times ``(site, scope)`` has been hit so far."""
        return self._hits.get((str(site), str(scope)), 0)

    def wrap_oracle(self, oracle: SetFunction, scope: str) -> "FaultyOracle":
        """Wrap *oracle* so its queries pass through ``oracle.*`` sites."""
        return FaultyOracle(oracle, self, scope)

    def stats(self) -> Dict[str, object]:
        """JSON-friendly summary of everything fired (for reports)."""
        by_site: Dict[str, int] = {}
        by_kind: Dict[str, int] = {}
        for event in self.fired:
            by_site[str(event["site"])] = by_site.get(str(event["site"]), 0) + 1
            by_kind[str(event["kind"])] = by_kind.get(str(event["kind"]), 0) + 1
        return {
            "seed": self.plan.seed,
            "rules": len(self.plan.rules),
            "fired": len(self.fired),
            "by_site": dict(sorted(by_site.items())),
            "by_kind": dict(sorted(by_kind.items())),
        }


class _FaultyEvaluator(IncrementalEvaluator):
    """Kernel view that hits ``oracle.batch`` once per batched query.

    Sits between a policy's vectorized scans and the counting
    evaluator: state-keeping methods pass straight through, every
    *counted* batched query first registers one ``oracle.batch`` hit for
    the owning scope.  An injected fault therefore fires *before* the
    inner evaluator bills the batch, so a rolled-back feed re-bills the
    retried batch exactly once.
    """

    fast = True

    def __init__(
        self, inner: IncrementalEvaluator, owner: "FaultyOracle"
    ) -> None:
        self._inner = inner
        self._owner = owner
        self.fn = owner
        self.modular = inner.modular

    # state delegation -------------------------------------------------

    @property
    def selection(self) -> FrozenSet[Element]:
        return self._inner.selection

    @property
    def current_value(self) -> float:
        return self._inner.current_value

    def reset(self, selection: Iterable[Element] = ()) -> None:
        self._inner.reset(selection)

    def add(self, element: Element) -> float:
        return self._inner.add(element)

    def add_set(self, items: Iterable[Element]) -> float:
        return self._inner.add_set(items)

    def advance(self, element: Element, new_value: float) -> None:
        self._inner.advance(element, new_value)

    # faulted queries --------------------------------------------------

    def _hit(self) -> None:
        self._owner.hit("oracle.batch")

    def gains(self, candidates: Sequence[Element]) -> np.ndarray:
        self._hit()
        return self._inner.gains(candidates)

    def gain1(self, element: Element) -> float:
        self._hit()
        return self._inner.gain1(element)

    def union_value1(self, element: Element) -> float:
        self._hit()
        return self._inner.union_value1(element)

    def union_values(self, candidates: Sequence[Element]) -> np.ndarray:
        self._hit()
        return self._inner.union_values(candidates)

    def set_gains(self, candidate_sets) -> np.ndarray:
        self._hit()
        return self._inner.set_gains(candidate_sets)

    def prepare(self, candidate_sets) -> PreparedBatch:
        inner_batch = self._inner.prepare(candidate_sets)
        batch = PreparedBatch(self, candidate_sets)

        def gains(indices, owner=self, inner_batch=inner_batch):
            owner._hit()
            return inner_batch.gains(list(indices))

        batch.gains = gains  # type: ignore[method-assign]
        return batch


class FaultyOracle(SetFunction):
    """Pass-through oracle whose queries run through fault sites.

    Wraps a tenant's :class:`~repro.core.oracle.CountingOracle`
    *outermost*, so a fault raised at the ``oracle.value`` /
    ``oracle.batch`` site aborts the query before the counting layer
    bills it — the serving loop's rollback + retry then re-bills the
    whole batch exactly once, keeping oracle-call accounting
    bit-identical to an unfaulted run.  Latency faults sleep inline,
    the way a genuinely slow oracle would.
    """

    def __init__(
        self, base: SetFunction, injector: FaultInjector, scope: str
    ) -> None:
        """Wrap *base*; every query reports under *scope* (tenant id)."""
        self.base = base
        self.injector = injector
        self.scope = str(scope)

    def hit(self, site: str) -> None:
        """Register one hit at *site* for this oracle's scope."""
        delay = self.injector.hit(site, self.scope)
        if delay > 0.0:
            time.sleep(delay)

    @property
    def ground_set(self) -> FrozenSet[Element]:
        """The wrapped oracle's ground set."""
        return self.base.ground_set

    def value(self, subset: FrozenSet[Element]) -> float:
        """Query the wrapped oracle through the ``oracle.value`` site."""
        self.hit("oracle.value")
        return self.base.value(subset)

    def fast_evaluator(self, backend=None):
        """Faulted view of the wrapped oracle's kernel evaluator (if any).

        ``backend`` passes through to the base so a ``--fault-plan``
        serve runs on the same kernels a clean run would pick.
        """
        backend = self.resolve_backend_arg(backend)
        inner = getattr(self.base, "fast_evaluator", lambda backend=None: None)(backend)
        if inner is not None:
            return _FaultyEvaluator(inner, self)
        return None


# -- process-global dispatch -------------------------------------------------
#
# Checkpoint writes happen deep inside the codec, far from any serving
# object; they report through a process-global injector the serving loop
# (or CLI) installs for the duration of a faulted run.  With no injector
# installed, ``fault_hit`` is a no-op attribute check — the no-fault
# serving path stays bit-identical (and unmeasurably close in cost) to
# a build without this module.

_INJECTOR: Optional[FaultInjector] = None


def install_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install the process-global injector; returns the previous one.

    Callers restore the returned previous injector when they are done,
    so nested faulted scopes compose.
    """
    global _INJECTOR
    previous = _INJECTOR
    _INJECTOR = injector
    return previous


def clear_injector() -> None:
    """Remove the process-global injector (all sites become no-ops)."""
    global _INJECTOR
    _INJECTOR = None


def current_injector() -> Optional[FaultInjector]:
    """The process-global injector, or ``None`` when faults are off."""
    return _INJECTOR


def fault_hit(site: str, scope: str = "-") -> float:
    """Report one hit at ``(site, scope)`` to the global injector.

    No-op (returns 0.0) when no injector is installed.  Latency faults
    sleep synchronously here — this is the sync-site entry point
    (checkpoint writes, report writes); async call sites use
    :meth:`FaultInjector.hit` directly and ``await`` their delays.
    """
    injector = _INJECTOR
    if injector is None:
        return 0.0
    delay = injector.hit(site, scope)
    if delay > 0.0:
        time.sleep(delay)
    return delay
