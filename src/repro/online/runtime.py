"""Shared runtime utilities for the online policies.

The per-algorithm modules used to each carry their own copy of the
segment-layout / observation-window arithmetic and the offline knapsack
estimate; the runtime centralises them so a policy is only its decision
rule.  ``-inf`` thresholds are encoded as ``None`` in checkpoint state
(:func:`encode_float` / :func:`decode_float`) to keep the JSON strict.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import evaluator_for
from repro.core.submodular import SetFunction

__all__ = [
    "segment_bounds",
    "observation_lengths",
    "encode_float",
    "decode_float",
    "offline_knapsack_estimate",
    "subsample_keep",
]

_MASK64 = (1 << 64) - 1


def subsample_keep(seed: int, pos: int, rate: float) -> bool:
    """Deterministic per-position coin for opt-in candidate subsampling.

    A splitmix64-style hash of ``(seed, pos)`` mapped to ``[0, 1)`` and
    compared against *rate* — the same arrival gets the same verdict
    whether it is scored sequentially, inside a batch, or after a
    checkpoint/resume, because the coin depends only on the global
    stream position, never on traversal order or process state.
    ``rate >= 1`` keeps everything (the exact path).
    """
    if rate >= 1.0:
        return True
    x = (int(seed) * 0x9E3779B97F4A7C15 + int(pos) + 1) & _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    x ^= x >> 31
    return (x >> 11) * (1.0 / (1 << 53)) < rate


def segment_bounds(n: int, k: int) -> List[Tuple[int, int]]:
    """Split positions ``0..n-1`` into k near-equal contiguous segments.

    The paper pads with dummy secretaries to make ``k | n``; distributing
    the remainder across segments is the equivalent trick without
    simulating dummies (each real arrival keeps a uniform position).
    Segments may be empty when ``k > n``.
    """
    return [((j * n) // k, ((j + 1) * n) // k) for j in range(k)]


def observation_lengths(bounds: Sequence[Tuple[int, int]]) -> Dict[int, int]:
    """Per-segment observation-window lengths: ``floor(len / e)``."""
    return {j: int(math.floor((e - s) / math.e)) for j, (s, e) in enumerate(bounds)}


def encode_float(x: float) -> Optional[float]:
    """JSON-strict encoding: ``-inf`` becomes ``None``."""
    return None if x == -math.inf else float(x)


def decode_float(x: Optional[float]) -> float:
    """Inverse of :func:`encode_float`."""
    return -math.inf if x is None else float(x)


def offline_knapsack_estimate(
    utility: SetFunction,
    weights: Mapping[Hashable, float],
    items: Sequence[Hashable],
    capacity: float = 1.0,
) -> float:
    """Constant-factor offline estimate of the knapsack optimum on *items*.

    max(best feasible singleton, density-greedy value): the classical
    analysis gives value >= OPT/3 for monotone submodular utilities on a
    knapsack, which is all the online rule needs ("a constant factor
    estimation of OPT by looking at the first half").
    """
    feasible = [j for j in items if weights.get(j, math.inf) <= capacity]
    if not feasible:
        return 0.0
    # One batched pass for the singleton values, one per greedy round for
    # the density scan: with a kernel-backed utility each round is a
    # vectorized marginal pass; the naive fallback evaluates (and
    # counts) one oracle call per still-loadable candidate, exactly as
    # the original per-item loop did.
    evaluator = evaluator_for(utility)
    singles = evaluator.union_values(feasible)
    best_single = float(singles.max())

    chosen: set = set()
    load = 0.0
    value = evaluator.current_value

    if getattr(evaluator, "modular", False):
        # Modular (plain additive) utility: marginals never change, so
        # the per-round argmax is equivalent to one pass over items in
        # (density desc, arrival order) — an item that does not fit now
        # never fits later (the load only grows).  Densities reuse the
        # singleton values already queried above, so the query count
        # only shrinks.
        w_arr = np.array([float(weights[j]) for j in feasible])
        gains0 = singles - value
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(
                w_arr > 0, gains0 / np.where(w_arr > 0, w_arr, 1.0),
                np.where(gains0 > 0, math.inf, 0.0),
            )
        for i in np.argsort(-density, kind="stable"):
            if not density[i] > 0.0:
                break
            if load + w_arr[i] > capacity:
                continue
            chosen.add(feasible[i])
            load += float(w_arr[i])
        value = utility.value(frozenset(chosen)) if chosen else value
        return max(best_single, value)

    # Scan in the given item order: density ties then break by arrival
    # position, not by set-iteration (hash) order, keeping the estimate
    # reproducible across processes.
    remaining = list(feasible)
    while remaining:
        w_arr = np.array([weights[j] for j in remaining])
        loadable = np.flatnonzero(load + w_arr <= capacity)
        if not len(loadable):
            break
        cand = [remaining[i] for i in loadable]
        gains = evaluator.gains(cand)
        w = w_arr[loadable]
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(
                w > 0, gains / np.where(w > 0, w, 1.0),
                np.where(gains > 0, math.inf, 0.0),
            )
        best_local = int(np.argmax(density))
        if not density[best_local] > 0.0:
            break
        best_j = cand[best_local]
        chosen.add(best_j)
        load += weights[best_j]
        value = utility.value(frozenset(chosen))
        evaluator.advance(best_j, value)
        remaining.remove(best_j)
    return max(best_single, value)
