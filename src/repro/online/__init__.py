"""The unified online arrival runtime.

Three layers turn the per-algorithm arrival loops of the secretary
stack into one subsystem:

:mod:`repro.online.arrivals`
    Pluggable *arrival processes* — a registry of seed-derived stream
    generators (``uniform`` exactly reproduces the paper's random
    permutation; ``sorted_desc``/``sorted_asc``, ``bursty``,
    ``poisson``, ``sliding_window``, and ``replay`` add adversarial,
    minibatch, timestamped, nearly-sorted, and recorded replays) — and
    *arrival sources*: lazy generator-backed views of the same streams
    with O(1) suspend state (cursor + chained content fingerprint +
    RNG state), the substrate of the O(selected) checkpoint schema.
:mod:`repro.online.policies`
    Every online algorithm as an ``observe(pos, element)`` state
    machine with JSON-serializable state, sharing the segment/threshold
    machinery in :mod:`repro.online.runtime`.
:mod:`repro.online.driver` / :mod:`repro.online.checkpoint`
    The single-pass driver (vectorized: one kernel call per revealed
    minibatch) plus the checkpoint/resume codec; together they make a
    long stream suspendable at any arrival.

:mod:`repro.online.sharding`
    The sharded runtime: a stable-hash partition of one schedule into S
    shard schedules, one policy replica per shard, and a
    feasibility-aware marginal-gain merge — with manifest checkpoints
    whose shards resume independently.  S=1 is bit-identical to the
    unsharded driver.

:mod:`repro.online.session` packages workload + policy + process (and
shard count) into the self-contained resumable unit behind ``repro
online run/resume``.

:mod:`repro.online.serving` multiplexes many such sessions through one
asyncio loop — bounded per-tenant queues for backpressure, a shared
workload/value cache across same-workload tenants, idle checkpoints to
per-tenant directories, and drain-and-checkpoint on SIGINT — behind
``repro online serve``.
"""

from repro.online.arrivals import (
    ARRIVAL_PROCESSES,
    ARRIVAL_SOURCES,
    ArrivalFingerprint,
    ArrivalSchedule,
    ArrivalSource,
    BurstySource,
    ScheduleSource,
    arrival_process_names,
    as_arrival_source,
    build_arrival_schedule,
    build_arrival_source,
    register_arrival_process,
    register_arrival_source,
    source_from_spec,
)
from repro.online.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SCHEMA_VERSION,
    SUPPORTED_CHECKPOINT_VERSIONS,
    IdleCheckpointPolicy,
    list_tenant_checkpoints,
    make_checkpoint,
    read_tenant_checkpoint,
    resume_run,
    tenant_checkpoint_path,
    write_tenant_checkpoint,
)
from repro.online.driver import OnlineRun, drive_stream, run_online
from repro.online.serving import (
    ServingLoop,
    TenantSpec,
    load_tenant_specs,
    serve,
)
from repro.online.session import (
    OnlineSession,
    ShardedSession,
    WorkloadCache,
    resume_any_session,
    start_session,
    start_sharded_session,
    workload_key,
)
from repro.online.sharding import (
    SHARDED_CHECKPOINT_FORMAT,
    ShardSource,
    ShardedRun,
    ShardView,
    make_sharded_checkpoint,
    merge_hires,
    resume_sharded_run,
    shard_of,
    shard_schedule,
)
from repro.online.policies import (
    POLICIES,
    BestSingletonPolicy,
    BottleneckPolicy,
    KnapsackSecretaryPolicy,
    MatroidSecretaryPolicy,
    OnlinePolicy,
    RobustTopKPolicy,
    SegmentedSubmodularPolicy,
    SubadditiveSegmentPolicy,
    make_policy,
    nonmonotone_half_policy,
    policy_names,
    register_policy,
)
from repro.online.results import (
    BottleneckResult,
    RobustResult,
    SecretaryResult,
    SegmentTrace,
)
from repro.online.runtime import observation_lengths, segment_bounds

__all__ = [
    "ARRIVAL_PROCESSES",
    "ARRIVAL_SOURCES",
    "ArrivalFingerprint",
    "ArrivalSchedule",
    "ArrivalSource",
    "BestSingletonPolicy",
    "BurstySource",
    "BottleneckPolicy",
    "BottleneckResult",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "IdleCheckpointPolicy",
    "KnapsackSecretaryPolicy",
    "MatroidSecretaryPolicy",
    "OnlinePolicy",
    "OnlineRun",
    "OnlineSession",
    "POLICIES",
    "RobustResult",
    "RobustTopKPolicy",
    "SHARDED_CHECKPOINT_FORMAT",
    "SUPPORTED_CHECKPOINT_VERSIONS",
    "ScheduleSource",
    "SecretaryResult",
    "SegmentTrace",
    "SegmentedSubmodularPolicy",
    "ServingLoop",
    "ShardSource",
    "ShardView",
    "ShardedRun",
    "ShardedSession",
    "SubadditiveSegmentPolicy",
    "TenantSpec",
    "WorkloadCache",
    "arrival_process_names",
    "as_arrival_source",
    "build_arrival_schedule",
    "build_arrival_source",
    "drive_stream",
    "list_tenant_checkpoints",
    "load_tenant_specs",
    "make_checkpoint",
    "make_policy",
    "make_sharded_checkpoint",
    "merge_hires",
    "nonmonotone_half_policy",
    "observation_lengths",
    "policy_names",
    "read_tenant_checkpoint",
    "register_policy",
    "register_arrival_process",
    "register_arrival_source",
    "resume_any_session",
    "resume_run",
    "source_from_spec",
    "resume_sharded_run",
    "run_online",
    "segment_bounds",
    "serve",
    "shard_of",
    "shard_schedule",
    "start_session",
    "start_sharded_session",
    "tenant_checkpoint_path",
    "workload_key",
    "write_tenant_checkpoint",
]
