"""Asyncio multi-tenant serving: many concurrent sessions per process.

The ROADMAP's "millions of users = many independent streams" front end:
a :class:`ServingLoop` drives N tenant sessions (plain or sharded)
inside one event loop.  Each tenant gets one *lane* per shard — a
producer task pulls real batches from that lane's own
:class:`~repro.online.arrivals.ArrivalSource` and pushes ``(position,
batch)`` steps onto a bounded :class:`asyncio.Queue`; a consumer task
feeds them to the lane's :class:`~repro.online.driver.OnlineRun` via
:meth:`~repro.online.driver.OnlineRun.feed`.  The bounded queue is the
backpressure: a tenant whose oracle is slow blocks its own producer at
``put()`` without stalling anyone else's lane.

Determinism is inherited, not re-proven: producers pull the *same*
batches in the *same* order the pull-based ``run()`` loop would (the
default ``batch_limit=None`` keeps minibatches whole, so vectorized
``observe_batch`` calls — and therefore oracle-call counts — are
untouched), and ``feed`` replays the exact reveal/observe/log sequence.
Hires and per-tenant oracle counts are bit-identical to running each
tenant alone (pinned by ``tests/online/test_serving.py``).

Checkpoints piggyback on the schema-v2 codec.  A tenant is *quiescent*
when no lane holds an in-flight (pulled-but-not-consumed) step — then
source cursors equal consumed positions and the synchronous
``session.checkpoint()`` snapshot is consistent (checkpoint writes
never await, so the single-threaded loop guarantees atomicity).  An
:class:`~repro.online.checkpoint.IdleCheckpointPolicy` checkpoints
quiescent-and-idle tenants mid-serve to per-tenant directories;
:meth:`ServingLoop.request_drain` (the SIGINT/SIGTERM path) stops
producers, lets consumers drain their queues, and checkpoints every
tenant — so an interrupted serve resumes exactly where each stream
stopped.

Tenants are *failure domains* (see ``docs/RELIABILITY.md``): a feed
that raises an injected (or real) oracle failure is rolled back and
retried on the fault plan's deterministic backoff schedule; transient
faults that outlast ``max_attempts``, or ``max_strikes`` permanent
faults, transition the tenant to ``quarantined`` — its producers stop,
its last durable checkpoint survives untouched, and every other tenant
keeps serving.  The same isolation covers resume: one corrupt
per-tenant checkpoint quarantines that tenant with a per-tenant error
instead of aborting the fleet.

A ``memory_budget`` turns the loop into an admission controller: at
most that many tenants hold live sessions at once, everyone else waits
parked in its per-tenant checkpoint.  Admitted tenants run a slice
(optionally capped at ``park_arrivals`` arrivals), park back to their
checkpoint, and rehydrate on a later admission — a fleet larger than
memory degrades to bounded-resident instead of OOM, and the netted
oracle-call accounting keeps parked tenants' totals bit-identical to
an unbudgeted serve.

Tenants on the same workload (same :func:`~repro.online.session.workload_key`)
share one utility and one memoising value oracle through a
:class:`~repro.online.session.WorkloadCache`; each tenant still bills
its own queries through its own counting wrapper.
"""

from __future__ import annotations

import asyncio
import signal
import time

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.oracle import CountingOracle
from repro.errors import InvalidInstanceError
from repro.online.checkpoint import (
    IdleCheckpointPolicy,
    read_tenant_checkpoint,
    write_tenant_checkpoint,
)
from repro.online.driver import OnlineRun
from repro.online.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    PermanentFault,
    install_injector,
)
from repro.engine.hashing import derive_seed
from repro.online.session import (
    OnlineSession,
    ShardedSession,
    WorkloadCache,
    reshard_session,
    resume_any_session,
    start_session,
    start_sharded_session,
)
from repro.online.sharding import partition_from_manifest

__all__ = [
    "ServingLoop",
    "TenantSpec",
    "load_tenant_specs",
    "serve",
]

#: Sentinel a producer enqueues after its final batch: "this lane's
#: stream is over (or draining); exit once the queue ahead is consumed."
_EOS = object()

#: Recipe fields a tenant spec (or its defaults block) may set.
_SPEC_FIELDS = (
    "policy",
    "family",
    "n",
    "k",
    "seed",
    "process",
    "aux",
    "n_knapsacks",
    "distribution",
    "process_params",
    "shards",
)

OnDecision = Callable[[str, int, object], None]


class TenantSpec:
    """One tenant's workload recipe plus its serving identity.

    A thin, validated bundle of the :func:`~repro.online.session.start_session`
    keyword surface (``shards > 1`` routes to the sharded starter) under
    a unique ``tenant_id`` — the name of the tenant's checkpoint
    directory under the serve root.
    """

    def __init__(
        self,
        tenant_id: str,
        *,
        policy: str = "monotone",
        family: str = "additive",
        n: int = 60,
        k: int = 4,
        seed: int = 0,
        process: str = "uniform",
        aux: int = 0,
        n_knapsacks: int = 2,
        distribution: str = "uniform",
        process_params: Optional[Mapping[str, object]] = None,
        shards: int = 1,
    ) -> None:
        """Validate and freeze one tenant's recipe fields."""
        tenant_id = str(tenant_id)
        if not tenant_id:
            raise InvalidInstanceError("tenant id must be non-empty")
        if int(shards) < 1:
            raise InvalidInstanceError(
                f"tenant {tenant_id!r}: shards must be >= 1, got {shards}"
            )
        self.tenant_id = tenant_id
        self.policy = str(policy)
        self.family = str(family)
        self.n = int(n)
        self.k = int(k)
        self.seed = int(seed)
        self.process = str(process)
        self.aux = int(aux)
        self.n_knapsacks = int(n_knapsacks)
        self.distribution = str(distribution)
        self.process_params = dict(process_params or {})
        self.shards = int(shards)

    @classmethod
    def from_mapping(
        cls,
        payload: Mapping[str, object],
        defaults: Optional[Mapping[str, object]] = None,
    ) -> "TenantSpec":
        """Build a spec from a JSON object, merged over *defaults*.

        Unknown keys are rejected (a typoed field silently reverting to
        its default would change the tenant's stream).
        """
        merged: Dict[str, object] = dict(defaults or {})
        merged.update(payload)
        tenant_id = merged.pop("id", None)
        if tenant_id is None:
            raise InvalidInstanceError("tenant spec needs an 'id' field")
        unknown = sorted(set(merged) - set(_SPEC_FIELDS))
        if unknown:
            raise InvalidInstanceError(
                f"tenant {tenant_id!r}: unknown spec fields {unknown}; "
                f"known: {sorted(_SPEC_FIELDS)}"
            )
        return cls(str(tenant_id), **merged)  # type: ignore[arg-type]

    def start(
        self,
        workload_cache: Optional[WorkloadCache] = None,
        *,
        fault_injector: Optional[FaultInjector] = None,
        fault_scope: Optional[str] = None,
        force_sharded: bool = False,
    ) -> Union[OnlineSession, ShardedSession]:
        """Start a fresh session for this tenant (sharded when asked).

        *force_sharded* starts even a one-shard tenant through the
        sharded path (an autoscaling serve needs the manifest format to
        reshard; ``--shards 1`` sharded runs are pinned bit-identical to
        the plain runtime, so results are unchanged).
        """
        kwargs = dict(
            policy=self.policy,
            family=self.family,
            n=self.n,
            k=self.k,
            seed=self.seed,
            process=self.process,
            aux=self.aux,
            n_knapsacks=self.n_knapsacks,
            distribution=self.distribution,
            process_params=self.process_params,
            workload_cache=workload_cache,
            fault_injector=fault_injector,
            fault_scope=fault_scope or self.tenant_id,
        )
        if self.shards > 1 or force_sharded:
            return start_sharded_session(shards=self.shards, **kwargs)  # type: ignore[arg-type]
        return start_session(**kwargs)  # type: ignore[arg-type]


def load_tenant_specs(payload: object) -> List[TenantSpec]:
    """Parse a serve spec document into a validated tenant list.

    Accepts either a bare JSON list of tenant objects, or an object
    with any of:

    ``defaults``
        Recipe fields merged under every tenant entry.
    ``tenants``
        Explicit tenant objects (each needs a unique ``id``).
    ``replicate``
        Bulk stanza: ``{"count": N, "id_format": "bulk-{index:04d}",
        "seed_start": S, ...recipe fields...}`` expands to *N* tenants
        with consecutive seeds — ``{index}`` and ``{seed}`` interpolate
        into the id — so a hundred-tenant serve is three lines of spec.
    """
    if isinstance(payload, list):
        payload = {"tenants": payload}
    if not isinstance(payload, Mapping):
        raise InvalidInstanceError(
            "serve spec must be a JSON object or a list of tenant objects"
        )
    defaults = payload.get("defaults") or {}
    if not isinstance(defaults, Mapping):
        raise InvalidInstanceError("'defaults' must be an object")
    specs: List[TenantSpec] = []
    tenants = payload.get("tenants") or []
    if not isinstance(tenants, list):
        raise InvalidInstanceError("'tenants' must be a list")
    for entry in tenants:
        if not isinstance(entry, Mapping):
            raise InvalidInstanceError("each tenant entry must be an object")
        specs.append(TenantSpec.from_mapping(entry, defaults))
    replicate = payload.get("replicate")
    if replicate is not None:
        if not isinstance(replicate, Mapping):
            raise InvalidInstanceError("'replicate' must be an object")
        replicate = dict(replicate)
        count = int(replicate.pop("count", 0))  # type: ignore[arg-type]
        if count < 1:
            raise InvalidInstanceError("'replicate.count' must be >= 1")
        id_format = str(replicate.pop("id_format", "tenant-{index:04d}"))
        seed_start = int(replicate.pop("seed_start", 0))  # type: ignore[arg-type]
        for index in range(count):
            seed = seed_start + index
            entry = {
                **replicate,
                "id": id_format.format(index=index, seed=seed),
                "seed": seed,
            }
            specs.append(TenantSpec.from_mapping(entry, defaults))
    if not specs:
        raise InvalidInstanceError("serve spec declares no tenants")
    seen: Dict[str, int] = {}
    for spec in specs:
        if spec.tenant_id in seen:
            raise InvalidInstanceError(
                f"duplicate tenant id {spec.tenant_id!r} in serve spec"
            )
        seen[spec.tenant_id] = 1
    return specs


class _Lane:
    """One shard's pipe: producer-pulled steps queued for one consumer."""

    def __init__(
        self, run: OnlineRun, depth: int,
        counting: Optional[CountingOracle] = None,
    ) -> None:
        self.run = run
        #: The lane's own counting oracle — what the guarded feed
        #: snapshots and rolls back so a retried batch bills exactly
        #: once (plain sessions have one lane/counter; sharded sessions
        #: one per shard, in shard order).
        self.counting = counting
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=depth)
        #: Steps pulled from the source but not yet fed to the policy.
        #: Incremented synchronously with ``take()`` (no await between),
        #: so at every loop suspension point ``cursor - consumed`` equals
        #: ``in_flight`` exactly — the quiescence invariant checkpoints
        #: rely on.
        self.in_flight = 0
        self.max_in_flight = 0

    @property
    def quiescent(self) -> bool:
        return self.in_flight == 0


class _Tenant:
    """Runtime state for one tenant: session, lanes, serving counters.

    The session is *detachable*: a memory-budgeted serve parks a tenant
    by checkpointing and dropping its session (and lanes), then
    re-attaches a resumed session on the next admission.  Reportable
    facts survive detachment in ``_stash``; cumulative quantities
    (cursor, decisions, oracle calls) need no summation because the
    checkpoint codec already carries them across hops.
    """

    def __init__(
        self,
        spec: TenantSpec,
        session: Optional[Union[OnlineSession, ShardedSession]],
        depth: int,
        *,
        resumed: bool = False,
    ) -> None:
        self.spec = spec
        self.depth = depth
        self.session: Optional[Union[OnlineSession, ShardedSession]] = None
        self.lanes: List[_Lane] = []
        self.resumed = False
        #: Lifecycle state: ``pending`` (no session yet), ``running``,
        #: or ``quarantined`` (terminal).  ``finished`` / ``drained`` /
        #: ``parked`` are derived at report time.
        self.state = "pending"
        self.error: Optional[str] = None
        self.halted = False
        self.retries = 0
        self.retry_delays: List[float] = []
        self.strikes = 0
        #: Elastic-topology state: the rebalancer sets ``rebinding`` to
        #: ask this tenant's lane tasks to wind down; the tenant's
        #: generation loop then reshards and re-attaches.  ``rebinds``
        #: counts completed topology changes; ``last_rebind_cursor``
        #: dampens the loop (no rebind without progress since the last).
        self.rebinding = False
        self.rebinds = 0
        self.last_rebind_cursor = -1
        self.parks = 0
        self.rehydrations = 0
        self.arrivals = 0
        self.batches = 0
        self.last_activity = time.perf_counter()
        self.idle_checkpoints = 0
        self.checkpoint_seconds: List[float] = []
        self.checkpoint_path: Optional[str] = None
        self.final_summary: Optional[Dict[str, object]] = None
        self._stash: Dict[str, object] = {
            "cursor": 0,
            "decisions": 0,
            "oracle_calls": 0,
            "finished": False,
            "max_in_flight": 0,
        }
        if session is not None:
            self.attach(session, resumed=resumed)

    def attach(
        self,
        session: Union[OnlineSession, ShardedSession],
        *,
        resumed: bool = False,
    ) -> None:
        """Adopt a live session: build one lane (+ counter) per shard."""
        self.session = session
        self.resumed = self.resumed or resumed
        if isinstance(session, ShardedSession):
            runs = session.run.runs
            countings: List[Optional[CountingOracle]] = list(session.countings)
        else:
            runs = [session.run]
            countings = [session.counting]
        self.lanes = [
            _Lane(run, self.depth, counting)
            for run, counting in zip(runs, countings)
        ]
        self.state = "running"

    def detach(self) -> None:
        """Release the session (park/finish), stashing reportable facts."""
        assert self.session is not None
        self._stash = {
            "cursor": self.cursor,
            "decisions": self.decisions,
            "oracle_calls": self.session.oracle_calls,
            "finished": self.session.finished,
            "max_in_flight": self.max_in_flight,
        }
        self.session = None
        self.lanes = []

    @property
    def quiescent(self) -> bool:
        """No lane holds a pulled-but-unconsumed step."""
        return all(lane.quiescent for lane in self.lanes)

    @property
    def finished(self) -> bool:
        if self.session is not None:
            return self.session.finished
        return bool(self._stash["finished"])

    @property
    def cursor(self) -> int:
        if self.session is not None:
            return sum(lane.run.cursor for lane in self.lanes)
        return int(self._stash["cursor"])  # type: ignore[arg-type]

    @property
    def decisions(self) -> int:
        if self.session is not None:
            return sum(len(lane.run.decisions) for lane in self.lanes)
        return int(self._stash["decisions"])  # type: ignore[arg-type]

    @property
    def oracle_calls(self) -> int:
        if self.session is not None:
            return self.session.oracle_calls
        return int(self._stash["oracle_calls"])  # type: ignore[arg-type]

    @property
    def max_in_flight(self) -> int:
        live = max((lane.max_in_flight for lane in self.lanes), default=0)
        return max(int(self._stash["max_in_flight"]), live)  # type: ignore[arg-type]


class ServingLoop:
    """Drive many tenant sessions concurrently in one asyncio loop.

    Parameters
    ----------
    specs:
        The tenants to serve (see :func:`load_tenant_specs`).
    checkpoint_root:
        Directory that receives one subdirectory per tenant (percent-
        encoded id).  ``None`` disables checkpointing entirely.
    queue_depth:
        Bound of each lane's arrival queue — the backpressure knob.  A
        lane never holds more than ``queue_depth + 2`` in-flight steps:
        the bounded queue, the one in the producer's hand blocked on
        ``put``, and the one the consumer has dequeued but not fed.
    batch_limit:
        Per-``take`` arrival cap passed to the sources.  The default
        ``None`` pulls whole minibatches, which is what keeps vectorized
        observe calls — and oracle-call counts — bit-identical to the
        pull path; set it only when arrival granularity matters more
        than count parity.
    idle_policy:
        :class:`~repro.online.checkpoint.IdleCheckpointPolicy` deciding
        when a quiescent tenant is worth snapshotting mid-serve.
        ``None`` checkpoints only at drain/finish.
    workload_cache:
        Shared :class:`~repro.online.session.WorkloadCache`; defaults to
        a fresh one per serve (sharing across same-workload tenants).
    pace_seconds:
        Producer sleep between pushed steps — simulates real arrival
        gaps (and gives the idle monitor something to notice).
    resume:
        Resume any tenant whose checkpoint exists under
        *checkpoint_root* instead of starting it fresh.  A corrupt
        per-tenant checkpoint quarantines that tenant (with its error
        in the summary) instead of aborting the fleet.
    on_decision:
        ``callback(tenant_id, position, element)`` streamed every hire,
        in consume order — the per-tenant decision feed.
    fault_plan:
        :class:`~repro.online.faults.FaultPlan` to execute during the
        serve (also installed process-globally so checkpoint-write kill
        sites fire).  ``None`` serves the plain, zero-overhead path.
    memory_budget:
        Maximum tenants resident (holding live sessions) at once; the
        rest wait parked in their per-tenant checkpoints.  Requires
        *checkpoint_root*; incompatible with *idle_policy* (parking
        already checkpoints on every eviction).
    park_arrivals:
        Arrivals an admitted tenant may consume per slice before it is
        parked and the next tenant admitted (``None`` = run to
        completion once admitted).  Requires *memory_budget*.
    autoscale:
        ``(min, max)`` lane bounds enabling the elastic-topology serve:
        a load-aware rebalancer watches each tenant's per-lane remaining
        work and, when a lane runs dry while siblings still hold
        unconsumed suffix (or the topology violates the bounds),
        suspends the tenant at a quiescent point, re-shards its manifest
        under a fresh epoch salt (stealing unconsumed suffix from hot
        lanes), and re-binds the lanes mid-serve.  Every tenant starts
        through the sharded path so its manifest can reshard
        (``shards 1`` sharded runs are pinned bit-identical to plain).
        ``None`` — the default — leaves the static serve byte-unchanged.
        Incompatible with *memory_budget* (parked tenants have no lanes
        to watch).
    """

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        *,
        checkpoint_root: Optional[str] = None,
        queue_depth: int = 8,
        batch_limit: Optional[int] = None,
        idle_policy: Optional[IdleCheckpointPolicy] = None,
        workload_cache: Optional[WorkloadCache] = None,
        pace_seconds: float = 0.0,
        resume: bool = False,
        on_decision: Optional[OnDecision] = None,
        fault_plan: Optional[FaultPlan] = None,
        memory_budget: Optional[int] = None,
        park_arrivals: Optional[int] = None,
        autoscale: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Validate knobs and stage the serve (no sessions built yet)."""
        if not specs:
            raise InvalidInstanceError("nothing to serve: no tenant specs")
        if int(queue_depth) < 1:
            raise InvalidInstanceError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if batch_limit is not None and int(batch_limit) < 1:
            raise InvalidInstanceError(
                f"batch_limit must be >= 1 (or None), got {batch_limit}"
            )
        if memory_budget is not None:
            if int(memory_budget) < 1:
                raise InvalidInstanceError(
                    f"memory_budget must be >= 1, got {memory_budget}"
                )
            if checkpoint_root is None:
                raise InvalidInstanceError(
                    "memory_budget needs checkpoint_root: parked tenants "
                    "live in their per-tenant checkpoints"
                )
            if idle_policy is not None:
                raise InvalidInstanceError(
                    "memory_budget and idle_policy are mutually exclusive "
                    "(parking already checkpoints on every eviction)"
                )
        if park_arrivals is not None:
            if memory_budget is None:
                raise InvalidInstanceError("park_arrivals needs memory_budget")
            if int(park_arrivals) < 1:
                raise InvalidInstanceError(
                    f"park_arrivals must be >= 1, got {park_arrivals}"
                )
        if autoscale is not None:
            try:
                lo, hi = (int(autoscale[0]), int(autoscale[1]))
            except (TypeError, ValueError, IndexError) as exc:
                raise InvalidInstanceError(
                    f"autoscale must be a (min, max) lane pair, got "
                    f"{autoscale!r}"
                ) from exc
            if lo < 1 or hi < lo:
                raise InvalidInstanceError(
                    f"autoscale bounds need 1 <= min <= max, got {lo}:{hi}"
                )
            if memory_budget is not None:
                raise InvalidInstanceError(
                    "autoscale and memory_budget are mutually exclusive "
                    "(parked tenants have no lanes to rebalance)"
                )
            autoscale = (lo, hi)
        self.specs = list(specs)
        self.checkpoint_root = checkpoint_root
        self.queue_depth = int(queue_depth)
        self.batch_limit = None if batch_limit is None else int(batch_limit)
        self.idle_policy = idle_policy
        self.workload_cache = (
            WorkloadCache() if workload_cache is None else workload_cache
        )
        self.pace_seconds = float(pace_seconds)
        self.resume = bool(resume)
        self.on_decision = on_decision
        self.fault_plan = fault_plan
        self.fault_injector = (
            None if fault_plan is None else FaultInjector(fault_plan)
        )
        self.memory_budget = (
            None if memory_budget is None else int(memory_budget)
        )
        self.park_arrivals = (
            None if park_arrivals is None else int(park_arrivals)
        )
        self.autoscale = autoscale
        self._tenants: List[_Tenant] = []
        self._draining = False
        self._active_consumers = 0
        self._elastic_live = 0
        self._wall_seconds = 0.0
        self._resident = 0
        self._max_resident = 0

    # -- lifecycle -------------------------------------------------------

    def request_drain(self) -> None:
        """Stop pulling new arrivals; finish in-flight work, checkpoint.

        Safe to call from a signal handler registered on the running
        loop: producers observe the flag before their next ``take`` and
        close their lanes, consumers drain what was already queued, and
        the finalize step snapshots every tenant.
        """
        self._draining = True

    def serve(self) -> Dict[str, object]:
        """Run the serve to completion (or drain) and return the report."""
        return asyncio.run(self.serve_async())

    async def serve_async(
        self, *, install_signals: bool = False
    ) -> Dict[str, object]:
        """Async entry point: build tenants, run all lanes, finalize.

        With ``install_signals=True`` the loop's SIGINT *and* SIGTERM
        handlers become :meth:`request_drain` for the duration of the
        serve — Ctrl-C and an orchestrator's shutdown signal both mean
        "drain and checkpoint", not "drop state on the floor".
        """
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        installed: List[object] = []
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_drain)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # platforms without signal support serve without it
        previous_injector = None
        if self.fault_injector is not None:
            # Global install lets the checkpoint-write fault sites fire;
            # the previous injector is restored so faulted scopes nest.
            previous_injector = install_injector(self.fault_injector)
        try:
            if self.memory_budget is not None:
                await self._serve_budgeted()
            elif self.autoscale is not None:
                await self._serve_elastic()
            else:
                await self._serve_static()
            self._finalize()
        finally:
            if self.fault_injector is not None:
                install_injector(previous_injector)
            for sig in installed:
                loop.remove_signal_handler(sig)  # type: ignore[arg-type]
        self._wall_seconds = time.perf_counter() - started
        return self.report()

    async def _serve_static(self) -> None:
        """The plain serve: every tenant resident for the whole run."""
        self._tenants = [self._start_tenant(spec) for spec in self.specs]
        self._resident = sum(
            1 for t in self._tenants if t.session is not None
        )
        self._max_resident = self._resident
        tasks = []
        for tenant in self._tenants:
            for lane in tenant.lanes:
                tasks.append(
                    asyncio.ensure_future(self._produce(tenant, lane))
                )
                tasks.append(
                    asyncio.ensure_future(self._consume(tenant, lane))
                )
                self._active_consumers += 1
        if self.idle_policy is not None and self.checkpoint_root is not None:
            tasks.append(asyncio.ensure_future(self._monitor()))
        await asyncio.gather(*tasks)

    async def _serve_elastic(self) -> None:
        """The autoscaling serve: static residency, dynamic lane topology.

        Each tenant runs a *generation loop*: one produce/consume task
        pair per lane, regenerated every time the rebalancer re-binds
        the topology.  A separate rebalancer task watches per-lane
        remaining work and flags tenants for rebind at their next
        quiescent point.
        """
        self._tenants = [self._start_tenant(spec) for spec in self.specs]
        self._resident = sum(
            1 for t in self._tenants if t.session is not None
        )
        self._max_resident = self._resident
        self._elastic_live = sum(
            1 for t in self._tenants if t.session is not None
        )
        tasks = [
            asyncio.ensure_future(self._tenant_elastic(tenant))
            for tenant in self._tenants
            if tenant.session is not None
        ]
        tasks.append(asyncio.ensure_future(self._rebalancer()))
        if self.idle_policy is not None and self.checkpoint_root is not None:
            tasks.append(asyncio.ensure_future(self._monitor()))
        await asyncio.gather(*tasks)

    async def _tenant_elastic(self, tenant: _Tenant) -> None:
        """One tenant's generation loop: run lanes, rebind, repeat."""
        try:
            while True:
                lane_tasks = []
                for lane in tenant.lanes:
                    lane_tasks.append(
                        asyncio.ensure_future(self._produce(tenant, lane))
                    )
                    lane_tasks.append(
                        asyncio.ensure_future(self._consume(tenant, lane))
                    )
                    self._active_consumers += 1
                await asyncio.gather(*lane_tasks)
                if (
                    self._draining
                    or tenant.halted
                    or tenant.finished
                    or not tenant.rebinding
                ):
                    return
                tenant.rebinding = False
                # All lane tasks have exited, so the tenant is quiescent
                # and its synchronous checkpoint is consistent.
                target = self._rebind_target(tenant)
                if target is not None:
                    self._rebind(tenant, target)
        finally:
            self._elastic_live -= 1

    def _rebind_target(self, tenant: _Tenant) -> Optional[int]:
        """Lane count to reshard *tenant* to, or ``None`` to leave it be.

        The load rule: target ``max(min_lanes, min(remaining, max_lanes))``
        — enough lanes that every one has work, never outside the
        autoscale bounds.  A rebind is worth it when the active topology
        violates the bounds, or when some lane has run dry while another
        still holds at least a batch of unconsumed suffix (the work-
        stealing trigger).  Progress damping: never rebind twice at the
        same cursor, so a stream that cannot advance cannot thrash.
        """
        session = tenant.session
        if not isinstance(session, ShardedSession):
            return None
        if tenant.halted or session.finished:
            return None
        if tenant.cursor <= tenant.last_rebind_cursor:
            return None
        assert self.autoscale is not None
        lo, hi = self.autoscale
        remaining = [
            0 if run.policy.done else max(0, run.n - run.cursor)
            for run in session.run.runs
        ]
        total = sum(remaining)
        if total < 2:
            return None  # nothing left worth moving
        busy = sum(1 for r in remaining if r > 0)
        partition = session.run.partition
        active = (
            partition.num_shards if partition is not None
            else len(session.run.runs)
        )
        target = max(lo, min(total, hi))
        if active < lo or active > hi:
            return target
        if busy < target and max(remaining) >= 2:
            return target  # idle lane(s) while a hot lane holds suffix
        return None

    def _rebind(self, tenant: _Tenant, target: int) -> None:
        """Re-shard a quiescent tenant to *target* lanes and re-attach.

        Checkpoint → :func:`~repro.online.session.reshard_session` under
        a fresh rebind-derived epoch salt (same-width reshards must
        still move suffix, and the salt keeps each rebind's assignment
        deterministic from the manifest) → resume → attach.  Failures
        quarantine the tenant; its pre-rebind state is still live in the
        session object and its last durable checkpoint is untouched.
        """
        session = tenant.session
        assert session is not None
        try:
            manifest = session.checkpoint()
            salt = derive_seed(
                int(partition_from_manifest(manifest).salt),
                "rebalance", tenant.rebinds + 1,
            )
            resharded = reshard_session(
                manifest, int(target), salt=salt,
                workload_cache=self.workload_cache,
            )
            replacement = resume_any_session(
                resharded,
                workload_cache=self.workload_cache,
                fault_injector=self.fault_injector,
                fault_scope=tenant.spec.tenant_id,
            )
        except InvalidInstanceError as exc:
            self._quarantine(tenant, f"rebind failed: {exc}")
            return
        tenant.attach(replacement)
        tenant.rebinds += 1
        tenant.last_rebind_cursor = tenant.cursor

    async def _rebalancer(self) -> None:
        """Flag tenants whose lane topology is worth re-binding.

        Runs alongside the generation loops: a flagged tenant's
        producers stop at their next check, its consumers drain, and the
        generation loop re-shards at the quiescent point.  The tick is
        deliberately small relative to the producer pace so a lane going
        idle is noticed within a few arrivals.
        """
        tick = max(self.pace_seconds / 2.0, 0.002)
        while self._elastic_live > 0:
            await asyncio.sleep(tick)
            if self._draining:
                continue
            for tenant in self._tenants:
                if tenant.rebinding or tenant.session is None:
                    continue
                if self._rebind_target(tenant) is not None:
                    tenant.rebinding = True

    async def _serve_budgeted(self) -> None:
        """The admission-controlled serve: bounded resident sessions.

        One lifecycle task per tenant competes for ``memory_budget``
        admission slots; everything else about a slice (lanes, guarded
        feeds, checkpointing) reuses the static machinery.
        """
        self._tenants = [
            _Tenant(spec, None, self.queue_depth) for spec in self.specs
        ]
        self._admission = asyncio.Semaphore(self.memory_budget)
        await asyncio.gather(
            *(
                asyncio.ensure_future(self._tenant_lifecycle(tenant))
                for tenant in self._tenants
            )
        )

    async def _tenant_lifecycle(self, tenant: _Tenant) -> None:
        """Admit → hydrate → run a slice → park/finish, until terminal."""
        while True:
            async with self._admission:
                if self._draining and tenant.parks > 0:
                    return  # already durably parked; drain leaves it be
                if not self._hydrate(tenant):
                    return  # quarantined at hydrate (corrupt checkpoint)
                self._resident += 1
                self._max_resident = max(self._max_resident, self._resident)
                try:
                    await self._run_slice(tenant)
                finally:
                    self._resident -= 1
                if tenant.state == "quarantined":
                    # Keep the session attached for reporting; its last
                    # durable checkpoint stays untouched on disk.
                    return
                finished = tenant.finished
                if finished:
                    # Summarise (sharded merge bills here) *before* the
                    # stash snapshots oracle_calls.
                    tenant.final_summary = tenant.session.summary()  # type: ignore[union-attr]
                self._write_checkpoint(tenant)
                tenant.detach()
                if finished or self._draining:
                    return
                tenant.parks += 1
            # Yield outside the slot so waiting tenants admit fairly.
            await asyncio.sleep(0)

    async def _run_slice(self, tenant: _Tenant) -> None:
        """Run one admitted tenant's lanes until slice end or stream end."""
        tasks = []
        for lane in tenant.lanes:
            tasks.append(
                asyncio.ensure_future(
                    self._produce(tenant, lane, quota=self.park_arrivals)
                )
            )
            tasks.append(asyncio.ensure_future(self._consume(tenant, lane)))
            self._active_consumers += 1
        await asyncio.gather(*tasks)

    def _start_tenant(self, spec: TenantSpec) -> _Tenant:
        """Start (or, under ``resume``, restore) one tenant's session."""
        tenant = _Tenant(spec, None, self.queue_depth)
        self._hydrate(tenant)
        return tenant

    def _hydrate(self, tenant: _Tenant) -> bool:
        """Attach a live session (fresh, resumed, or rehydrated).

        Returns ``False`` — after quarantining the tenant — when its
        checkpoint is corrupt or unresumable; the rest of the fleet is
        unaffected (the satellite bugfix: one bad file used to abort
        the whole serve).
        """
        spec = tenant.spec
        want_resume = self.checkpoint_root is not None and (
            self.resume or tenant.parks > 0
        )
        if want_resume:
            try:
                payload = read_tenant_checkpoint(
                    self.checkpoint_root, spec.tenant_id
                )
            except InvalidInstanceError as exc:
                self._quarantine(tenant, f"unreadable checkpoint: {exc}")
                return False
            if payload is not None:
                try:
                    session = resume_any_session(
                        payload,
                        workload_cache=self.workload_cache,
                        fault_injector=self.fault_injector,
                        fault_scope=spec.tenant_id,
                    )
                except InvalidInstanceError as exc:
                    self._quarantine(
                        tenant, f"checkpoint resume failed: {exc}"
                    )
                    return False
                tenant.attach(session, resumed=tenant.parks == 0)
                if tenant.parks > 0:
                    tenant.rehydrations += 1
                return True
        tenant.attach(
            spec.start(
                self.workload_cache,
                fault_injector=self.fault_injector,
                fault_scope=spec.tenant_id,
                force_sharded=self.autoscale is not None,
            )
        )
        return True

    def _quarantine(self, tenant: _Tenant, error: str) -> None:
        """Isolate *tenant*: stop its lanes, record the error, move on.

        Its last durable checkpoint (if any) is left untouched — the
        finalize pass skips quarantined tenants — so an operator can
        inspect or resume it after fixing the cause.
        """
        tenant.state = "quarantined"
        tenant.error = str(error)
        tenant.halted = True

    # -- tasks -----------------------------------------------------------

    async def _produce(
        self, tenant: _Tenant, lane: _Lane, quota: Optional[int] = None
    ) -> None:
        """Pull batches from *lane*'s source and queue them, until done.

        ``take`` and the ``in_flight`` increment run without an
        intervening await, so the quiescence invariant (cursor ==
        consumed + in_flight at every suspension point) holds.  Stops on
        source exhaustion, policy completion, drain, tenant halt
        (quarantine), or an exhausted slice *quota* (memory-budget
        parking).
        """
        run = lane.run
        pulled = 0
        try:
            while (
                not self._draining
                and not tenant.halted
                and not tenant.rebinding
                and not run.policy.done
            ):
                if quota is not None and pulled >= quota:
                    break
                step = run.source.take(self.batch_limit)
                if step is None:
                    break
                lane.in_flight += 1
                lane.max_in_flight = max(lane.max_in_flight, lane.in_flight)
                pos0, batch, _stamps = step
                pulled += len(batch)
                await lane.queue.put((pos0, batch))
                if self.pace_seconds > 0.0:
                    await asyncio.sleep(self.pace_seconds)
                else:
                    # Cooperative yield: a full put() may not suspend.
                    await asyncio.sleep(0)
        finally:
            await lane.queue.put(_EOS)

    async def _before_feed(self, tenant: _Tenant, lane: _Lane) -> None:
        """Seam between dequeue and feed — the default does nothing.

        Subclasses (and the backpressure tests) override this to stall a
        tenant's consumer the way a slow oracle would: while it waits,
        that tenant's producer can run at most ``queue_depth + 1`` steps
        ahead before its ``put`` blocks, and every other tenant keeps
        streaming.
        """
        return None

    async def _consume(self, tenant: _Tenant, lane: _Lane) -> None:
        """Feed queued steps to *lane*'s run, streaming decisions out.

        A quarantined (halted) tenant's consumer keeps dequeuing — and
        discarding — until EOS, so its producer is never wedged on a
        full queue and the rest of the fleet drains normally.
        """
        run = lane.run
        while True:
            item = await lane.queue.get()
            if item is _EOS:
                break
            if tenant.halted:
                lane.in_flight -= 1
                continue
            await self._before_feed(tenant, lane)
            pos0, batch = item
            logged = len(run.decisions)
            if self.fault_injector is None:
                run.feed(pos0, batch)
                fed = True
            else:
                fed = await self._feed_guarded(tenant, lane, pos0, batch)
            lane.in_flight -= 1
            if not fed:
                continue
            tenant.arrivals += len(batch)
            tenant.batches += 1
            tenant.last_activity = time.perf_counter()
            if self.on_decision is not None:
                for position, element in run.decisions[logged:]:
                    self.on_decision(tenant.spec.tenant_id, position, element)
            await asyncio.sleep(0)  # fairness: one step per loop pass
        self._active_consumers -= 1

    async def _feed_guarded(
        self, tenant: _Tenant, lane: _Lane, pos0: int, batch: Sequence
    ) -> bool:
        """Feed one batch transactionally under the fault plan.

        Each attempt brackets :meth:`OnlineRun.feed` with a snapshot of
        the mutable run state plus the lane's counting-oracle tally; an
        :class:`InjectedFault` rolls both back, so the eventual
        successful attempt bills exactly the unfaulted run's queries.
        Transient faults retry on the plan's deterministic backoff
        schedule up to ``max_attempts`` total attempts; each permanent
        fault is a strike, and ``max_strikes`` of them — or an
        exhausted retry budget — quarantine the tenant.  Returns whether
        the batch was actually consumed.
        """
        run = lane.run
        injector = self.fault_injector
        assert injector is not None
        retry = injector.plan.retry
        scope = tenant.spec.tenant_id
        attempt = 0
        while True:
            snap = run.snapshot()
            calls_before = (
                None if lane.counting is None else lane.counting.calls
            )
            try:
                delay = injector.hit("serve.feed", scope)
                if delay > 0.0:
                    await asyncio.sleep(delay)
                run.feed(pos0, batch)
                return True
            except InjectedFault as exc:
                # Rollback order matters: load_state may itself bill
                # restore queries, so the counter resets last.
                run.rollback(snap)
                if calls_before is not None:
                    lane.counting.calls = calls_before
                if isinstance(exc, PermanentFault):
                    tenant.strikes += 1
                    if tenant.strikes >= retry.max_strikes:
                        self._quarantine(
                            tenant,
                            f"quarantined after {tenant.strikes} permanent "
                            f"fault strikes: {exc}",
                        )
                        return False
                attempt += 1
                if attempt >= retry.max_attempts:
                    self._quarantine(
                        tenant,
                        f"fault persisted through {attempt} feed attempts: "
                        f"{exc}",
                    )
                    return False
                backoff = retry.delay(injector.plan.seed, scope, attempt)
                tenant.retries += 1
                tenant.retry_delays.append(backoff)
                await asyncio.sleep(backoff)

    async def _monitor(self) -> None:
        """Checkpoint idle tenants while the serve is running.

        A tenant qualifies when it is live (not quarantined or parked),
        unfinished, quiescent (no in-flight step, so its snapshot is
        consistent), and its :class:`IdleCheckpointPolicy` says the idle
        time and progress since the last snapshot are worth the write.
        """
        policy = self.idle_policy
        assert policy is not None
        tick = max(policy.idle_seconds / 2.0, 0.005)
        while self._active_consumers > 0:
            await asyncio.sleep(tick)
            now = time.perf_counter()
            for tenant in self._tenants:
                if tenant.session is None or tenant.halted:
                    continue
                if tenant.finished or not tenant.quiescent:
                    continue
                idle_for = now - tenant.last_activity
                if policy.due(tenant.spec.tenant_id, tenant.cursor, idle_for):
                    self._write_checkpoint(tenant)
                    tenant.idle_checkpoints += 1
                    policy.note_checkpoint(tenant.spec.tenant_id, tenant.cursor)

    # -- checkpointing ---------------------------------------------------

    def _write_checkpoint(self, tenant: _Tenant) -> None:
        """Atomically snapshot *tenant* to its directory (synchronous)."""
        assert self.checkpoint_root is not None
        assert tenant.session is not None
        t0 = time.perf_counter()
        tenant.checkpoint_path = write_tenant_checkpoint(
            tenant.session.checkpoint(),
            self.checkpoint_root,
            tenant.spec.tenant_id,
        )
        tenant.checkpoint_seconds.append(time.perf_counter() - t0)

    def _finalize(self) -> None:
        """Snapshot every live tenant once all lanes have drained.

        All producers and consumers have exited, so every live tenant is
        quiescent; the snapshot is exact whether the tenant finished or
        was drained mid-stream — either way its checkpoint resumes.
        Quarantined tenants are skipped: their last *durable* checkpoint
        is the recovery point, and overwriting it with post-fault state
        would destroy it.  Parked tenants already checkpointed at
        eviction.
        """
        if self.checkpoint_root is None:
            return
        for tenant in self._tenants:
            if tenant.session is None or tenant.state == "quarantined":
                continue
            self._write_checkpoint(tenant)

    # -- reporting -------------------------------------------------------

    def tenant_summary(self, tenant_id: str) -> Dict[str, object]:
        """One tenant's serving stats (plus its result when finished)."""
        for tenant in self._tenants:
            if tenant.spec.tenant_id == tenant_id:
                return self._tenant_report(tenant)
        raise InvalidInstanceError(f"unknown tenant {tenant_id!r}")

    def _tenant_state(self, tenant: _Tenant) -> str:
        """The tenant's terminal state label for reports."""
        if tenant.state == "quarantined":
            return "quarantined"
        if tenant.finished:
            return "finished"
        if tenant.session is None and tenant.parks > 0:
            return "parked"
        if self._draining:
            return "drained"
        return tenant.state

    def _tenant_report(self, tenant: _Tenant) -> Dict[str, object]:
        # Finish first: a sharded tenant's merge stage runs (and bills
        # its merge_calls) inside result(), so the summary must be
        # computed before oracle_calls is read.  Detached (parked or
        # budget-finished) tenants report their stashed summary.
        if tenant.session is not None and tenant.finished:
            summary = tenant.session.summary()
        else:
            summary = tenant.final_summary
        out: Dict[str, object] = {
            "policy": tenant.spec.policy,
            "family": tenant.spec.family,
            "process": tenant.spec.process,
            "shards": tenant.spec.shards,
            "n": tenant.spec.n,
            "cursor": tenant.cursor,
            "arrivals": tenant.arrivals,
            "batches": tenant.batches,
            "decisions": tenant.decisions,
            "finished": tenant.finished,
            "resumed": tenant.resumed,
            "state": self._tenant_state(tenant),
            "oracle_calls": tenant.oracle_calls,
            "max_in_flight": tenant.max_in_flight,
            "idle_checkpoints": tenant.idle_checkpoints,
            "checkpoint_path": tenant.checkpoint_path,
        }
        if tenant.error is not None:
            out["error"] = tenant.error
        if self.fault_injector is not None:
            out["retries"] = tenant.retries
            out["strikes"] = tenant.strikes
            out["retry_delays"] = list(tenant.retry_delays)
        if self.memory_budget is not None:
            out["parks"] = tenant.parks
            out["rehydrations"] = tenant.rehydrations
        if self.autoscale is not None:
            out["rebinds"] = tenant.rebinds
            out["lanes"] = len(tenant.lanes)
        if summary is not None:
            for key in ("selected", "n_chosen", "value", "strategy"):
                if key in summary:
                    out[key] = summary[key]
        return out

    def report(self) -> Dict[str, object]:
        """The whole serve's JSON-friendly report (per tenant + totals)."""
        tenants = {
            t.spec.tenant_id: self._tenant_report(t) for t in self._tenants
        }
        arrivals = sum(t.arrivals for t in self._tenants)
        latencies = [
            s for t in self._tenants for s in t.checkpoint_seconds
        ]
        totals: Dict[str, object] = {
            "tenants": len(self._tenants),
            "finished": sum(1 for t in self._tenants if t.finished),
            "resumed": sum(1 for t in self._tenants if t.resumed),
            "quarantined": sum(
                1 for t in self._tenants if t.state == "quarantined"
            ),
            "arrivals": arrivals,
            "decisions": sum(t.decisions for t in self._tenants),
            "oracle_calls": sum(t.oracle_calls for t in self._tenants),
            "idle_checkpoints": sum(
                t.idle_checkpoints for t in self._tenants
            ),
            "max_in_flight": max(
                (t.max_in_flight for t in self._tenants), default=0
            ),
            "drained": self._draining,
            "wall_seconds": self._wall_seconds,
            "arrivals_per_second": (
                arrivals / self._wall_seconds
                if self._wall_seconds > 0 else None
            ),
        }
        if self.fault_injector is not None:
            totals["retries"] = sum(t.retries for t in self._tenants)
            totals["strikes"] = sum(t.strikes for t in self._tenants)
        if self.memory_budget is not None:
            totals["memory_budget"] = self.memory_budget
            totals["max_resident"] = self._max_resident
            totals["parks"] = sum(t.parks for t in self._tenants)
            totals["rehydrations"] = sum(
                t.rehydrations for t in self._tenants
            )
        if self.autoscale is not None:
            totals["autoscale"] = list(self.autoscale)
            totals["rebinds"] = sum(t.rebinds for t in self._tenants)
        report: Dict[str, object] = {
            "tenants": tenants,
            "totals": totals,
            "workload_cache": self.workload_cache.stats(),
        }
        if self.fault_injector is not None:
            report["faults"] = self.fault_injector.stats()
        if latencies:
            report["checkpoint_latency"] = {
                "count": len(latencies),
                "mean_seconds": sum(latencies) / len(latencies),
                "max_seconds": max(latencies),
            }
        return report


def serve(
    specs: Sequence[TenantSpec], **kwargs: object
) -> Tuple[ServingLoop, Dict[str, object]]:
    """One-shot convenience: build a :class:`ServingLoop`, run it.

    Returns ``(loop, report)`` so callers can poke tenants afterwards;
    keyword arguments forward to :class:`ServingLoop`.
    """
    loop = ServingLoop(specs, **kwargs)  # type: ignore[arg-type]
    return loop, loop.serve()
