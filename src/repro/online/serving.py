"""Asyncio multi-tenant serving: many concurrent sessions per process.

The ROADMAP's "millions of users = many independent streams" front end:
a :class:`ServingLoop` drives N tenant sessions (plain or sharded)
inside one event loop.  Each tenant gets one *lane* per shard — a
producer task pulls real batches from that lane's own
:class:`~repro.online.arrivals.ArrivalSource` and pushes ``(position,
batch)`` steps onto a bounded :class:`asyncio.Queue`; a consumer task
feeds them to the lane's :class:`~repro.online.driver.OnlineRun` via
:meth:`~repro.online.driver.OnlineRun.feed`.  The bounded queue is the
backpressure: a tenant whose oracle is slow blocks its own producer at
``put()`` without stalling anyone else's lane.

Determinism is inherited, not re-proven: producers pull the *same*
batches in the *same* order the pull-based ``run()`` loop would (the
default ``batch_limit=None`` keeps minibatches whole, so vectorized
``observe_batch`` calls — and therefore oracle-call counts — are
untouched), and ``feed`` replays the exact reveal/observe/log sequence.
Hires and per-tenant oracle counts are bit-identical to running each
tenant alone (pinned by ``tests/online/test_serving.py``).

Checkpoints piggyback on the schema-v2 codec.  A tenant is *quiescent*
when no lane holds an in-flight (pulled-but-not-consumed) step — then
source cursors equal consumed positions and the synchronous
``session.checkpoint()`` snapshot is consistent (checkpoint writes
never await, so the single-threaded loop guarantees atomicity).  An
:class:`~repro.online.checkpoint.IdleCheckpointPolicy` checkpoints
quiescent-and-idle tenants mid-serve to per-tenant directories;
:meth:`ServingLoop.request_drain` (the SIGINT path) stops producers,
lets consumers drain their queues, and checkpoints every tenant — so an
interrupted serve resumes exactly where each stream stopped.

Tenants on the same workload (same :func:`~repro.online.session.workload_key`)
share one utility and one memoising value oracle through a
:class:`~repro.online.session.WorkloadCache`; each tenant still bills
its own queries through its own counting wrapper.
"""

from __future__ import annotations

import asyncio
import signal
import time

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import InvalidInstanceError
from repro.online.checkpoint import (
    IdleCheckpointPolicy,
    read_tenant_checkpoint,
    write_tenant_checkpoint,
)
from repro.online.driver import OnlineRun
from repro.online.session import (
    OnlineSession,
    ShardedSession,
    WorkloadCache,
    resume_any_session,
    start_session,
    start_sharded_session,
)

__all__ = [
    "ServingLoop",
    "TenantSpec",
    "load_tenant_specs",
    "serve",
]

#: Sentinel a producer enqueues after its final batch: "this lane's
#: stream is over (or draining); exit once the queue ahead is consumed."
_EOS = object()

#: Recipe fields a tenant spec (or its defaults block) may set.
_SPEC_FIELDS = (
    "policy",
    "family",
    "n",
    "k",
    "seed",
    "process",
    "aux",
    "n_knapsacks",
    "distribution",
    "process_params",
    "shards",
)

OnDecision = Callable[[str, int, object], None]


class TenantSpec:
    """One tenant's workload recipe plus its serving identity.

    A thin, validated bundle of the :func:`~repro.online.session.start_session`
    keyword surface (``shards > 1`` routes to the sharded starter) under
    a unique ``tenant_id`` — the name of the tenant's checkpoint
    directory under the serve root.
    """

    def __init__(
        self,
        tenant_id: str,
        *,
        policy: str = "monotone",
        family: str = "additive",
        n: int = 60,
        k: int = 4,
        seed: int = 0,
        process: str = "uniform",
        aux: int = 0,
        n_knapsacks: int = 2,
        distribution: str = "uniform",
        process_params: Optional[Mapping[str, object]] = None,
        shards: int = 1,
    ) -> None:
        """Validate and freeze one tenant's recipe fields."""
        tenant_id = str(tenant_id)
        if not tenant_id:
            raise InvalidInstanceError("tenant id must be non-empty")
        if int(shards) < 1:
            raise InvalidInstanceError(
                f"tenant {tenant_id!r}: shards must be >= 1, got {shards}"
            )
        self.tenant_id = tenant_id
        self.policy = str(policy)
        self.family = str(family)
        self.n = int(n)
        self.k = int(k)
        self.seed = int(seed)
        self.process = str(process)
        self.aux = int(aux)
        self.n_knapsacks = int(n_knapsacks)
        self.distribution = str(distribution)
        self.process_params = dict(process_params or {})
        self.shards = int(shards)

    @classmethod
    def from_mapping(
        cls,
        payload: Mapping[str, object],
        defaults: Optional[Mapping[str, object]] = None,
    ) -> "TenantSpec":
        """Build a spec from a JSON object, merged over *defaults*.

        Unknown keys are rejected (a typoed field silently reverting to
        its default would change the tenant's stream).
        """
        merged: Dict[str, object] = dict(defaults or {})
        merged.update(payload)
        tenant_id = merged.pop("id", None)
        if tenant_id is None:
            raise InvalidInstanceError("tenant spec needs an 'id' field")
        unknown = sorted(set(merged) - set(_SPEC_FIELDS))
        if unknown:
            raise InvalidInstanceError(
                f"tenant {tenant_id!r}: unknown spec fields {unknown}; "
                f"known: {sorted(_SPEC_FIELDS)}"
            )
        return cls(str(tenant_id), **merged)  # type: ignore[arg-type]

    def start(
        self, workload_cache: Optional[WorkloadCache] = None
    ) -> Union[OnlineSession, ShardedSession]:
        """Start a fresh session for this tenant (sharded when asked)."""
        kwargs = dict(
            policy=self.policy,
            family=self.family,
            n=self.n,
            k=self.k,
            seed=self.seed,
            process=self.process,
            aux=self.aux,
            n_knapsacks=self.n_knapsacks,
            distribution=self.distribution,
            process_params=self.process_params,
            workload_cache=workload_cache,
        )
        if self.shards > 1:
            return start_sharded_session(shards=self.shards, **kwargs)  # type: ignore[arg-type]
        return start_session(**kwargs)  # type: ignore[arg-type]


def load_tenant_specs(payload: object) -> List[TenantSpec]:
    """Parse a serve spec document into a validated tenant list.

    Accepts either a bare JSON list of tenant objects, or an object
    with any of:

    ``defaults``
        Recipe fields merged under every tenant entry.
    ``tenants``
        Explicit tenant objects (each needs a unique ``id``).
    ``replicate``
        Bulk stanza: ``{"count": N, "id_format": "bulk-{index:04d}",
        "seed_start": S, ...recipe fields...}`` expands to *N* tenants
        with consecutive seeds — ``{index}`` and ``{seed}`` interpolate
        into the id — so a hundred-tenant serve is three lines of spec.
    """
    if isinstance(payload, list):
        payload = {"tenants": payload}
    if not isinstance(payload, Mapping):
        raise InvalidInstanceError(
            "serve spec must be a JSON object or a list of tenant objects"
        )
    defaults = payload.get("defaults") or {}
    if not isinstance(defaults, Mapping):
        raise InvalidInstanceError("'defaults' must be an object")
    specs: List[TenantSpec] = []
    tenants = payload.get("tenants") or []
    if not isinstance(tenants, list):
        raise InvalidInstanceError("'tenants' must be a list")
    for entry in tenants:
        if not isinstance(entry, Mapping):
            raise InvalidInstanceError("each tenant entry must be an object")
        specs.append(TenantSpec.from_mapping(entry, defaults))
    replicate = payload.get("replicate")
    if replicate is not None:
        if not isinstance(replicate, Mapping):
            raise InvalidInstanceError("'replicate' must be an object")
        replicate = dict(replicate)
        count = int(replicate.pop("count", 0))  # type: ignore[arg-type]
        if count < 1:
            raise InvalidInstanceError("'replicate.count' must be >= 1")
        id_format = str(replicate.pop("id_format", "tenant-{index:04d}"))
        seed_start = int(replicate.pop("seed_start", 0))  # type: ignore[arg-type]
        for index in range(count):
            seed = seed_start + index
            entry = {
                **replicate,
                "id": id_format.format(index=index, seed=seed),
                "seed": seed,
            }
            specs.append(TenantSpec.from_mapping(entry, defaults))
    if not specs:
        raise InvalidInstanceError("serve spec declares no tenants")
    seen: Dict[str, int] = {}
    for spec in specs:
        if spec.tenant_id in seen:
            raise InvalidInstanceError(
                f"duplicate tenant id {spec.tenant_id!r} in serve spec"
            )
        seen[spec.tenant_id] = 1
    return specs


class _Lane:
    """One shard's pipe: producer-pulled steps queued for one consumer."""

    def __init__(self, run: OnlineRun, depth: int) -> None:
        self.run = run
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=depth)
        #: Steps pulled from the source but not yet fed to the policy.
        #: Incremented synchronously with ``take()`` (no await between),
        #: so at every loop suspension point ``cursor - consumed`` equals
        #: ``in_flight`` exactly — the quiescence invariant checkpoints
        #: rely on.
        self.in_flight = 0
        self.max_in_flight = 0

    @property
    def quiescent(self) -> bool:
        return self.in_flight == 0


class _Tenant:
    """Runtime state for one tenant: session, lanes, serving counters."""

    def __init__(
        self,
        spec: TenantSpec,
        session: Union[OnlineSession, ShardedSession],
        depth: int,
        *,
        resumed: bool = False,
    ) -> None:
        self.spec = spec
        self.session = session
        self.resumed = resumed
        runs = (
            session.run.runs
            if isinstance(session, ShardedSession)
            else [session.run]
        )
        self.lanes = [_Lane(run, depth) for run in runs]
        self.arrivals = 0
        self.batches = 0
        self.last_activity = time.perf_counter()
        self.idle_checkpoints = 0
        self.checkpoint_seconds: List[float] = []
        self.checkpoint_path: Optional[str] = None

    @property
    def quiescent(self) -> bool:
        """No lane holds a pulled-but-unconsumed step."""
        return all(lane.quiescent for lane in self.lanes)

    @property
    def finished(self) -> bool:
        return self.session.finished

    @property
    def cursor(self) -> int:
        return sum(lane.run.cursor for lane in self.lanes)

    @property
    def decisions(self) -> int:
        return sum(len(lane.run.decisions) for lane in self.lanes)

    @property
    def max_in_flight(self) -> int:
        return max(lane.max_in_flight for lane in self.lanes)


class ServingLoop:
    """Drive many tenant sessions concurrently in one asyncio loop.

    Parameters
    ----------
    specs:
        The tenants to serve (see :func:`load_tenant_specs`).
    checkpoint_root:
        Directory that receives one subdirectory per tenant (percent-
        encoded id).  ``None`` disables checkpointing entirely.
    queue_depth:
        Bound of each lane's arrival queue — the backpressure knob.  A
        lane never holds more than ``queue_depth + 2`` in-flight steps:
        the bounded queue, the one in the producer's hand blocked on
        ``put``, and the one the consumer has dequeued but not fed.
    batch_limit:
        Per-``take`` arrival cap passed to the sources.  The default
        ``None`` pulls whole minibatches, which is what keeps vectorized
        observe calls — and oracle-call counts — bit-identical to the
        pull path; set it only when arrival granularity matters more
        than count parity.
    idle_policy:
        :class:`~repro.online.checkpoint.IdleCheckpointPolicy` deciding
        when a quiescent tenant is worth snapshotting mid-serve.
        ``None`` checkpoints only at drain/finish.
    workload_cache:
        Shared :class:`~repro.online.session.WorkloadCache`; defaults to
        a fresh one per serve (sharing across same-workload tenants).
    pace_seconds:
        Producer sleep between pushed steps — simulates real arrival
        gaps (and gives the idle monitor something to notice).
    resume:
        Resume any tenant whose checkpoint exists under
        *checkpoint_root* instead of starting it fresh.
    on_decision:
        ``callback(tenant_id, position, element)`` streamed every hire,
        in consume order — the per-tenant decision feed.
    """

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        *,
        checkpoint_root: Optional[str] = None,
        queue_depth: int = 8,
        batch_limit: Optional[int] = None,
        idle_policy: Optional[IdleCheckpointPolicy] = None,
        workload_cache: Optional[WorkloadCache] = None,
        pace_seconds: float = 0.0,
        resume: bool = False,
        on_decision: Optional[OnDecision] = None,
    ) -> None:
        """Validate knobs and stage the serve (no sessions built yet)."""
        if not specs:
            raise InvalidInstanceError("nothing to serve: no tenant specs")
        if int(queue_depth) < 1:
            raise InvalidInstanceError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if batch_limit is not None and int(batch_limit) < 1:
            raise InvalidInstanceError(
                f"batch_limit must be >= 1 (or None), got {batch_limit}"
            )
        self.specs = list(specs)
        self.checkpoint_root = checkpoint_root
        self.queue_depth = int(queue_depth)
        self.batch_limit = None if batch_limit is None else int(batch_limit)
        self.idle_policy = idle_policy
        self.workload_cache = (
            WorkloadCache() if workload_cache is None else workload_cache
        )
        self.pace_seconds = float(pace_seconds)
        self.resume = bool(resume)
        self.on_decision = on_decision
        self._tenants: List[_Tenant] = []
        self._draining = False
        self._active_consumers = 0
        self._wall_seconds = 0.0

    # -- lifecycle -------------------------------------------------------

    def request_drain(self) -> None:
        """Stop pulling new arrivals; finish in-flight work, checkpoint.

        Safe to call from a signal handler registered on the running
        loop: producers observe the flag before their next ``take`` and
        close their lanes, consumers drain what was already queued, and
        the finalize step snapshots every tenant.
        """
        self._draining = True

    def serve(self) -> Dict[str, object]:
        """Run the serve to completion (or drain) and return the report."""
        return asyncio.run(self.serve_async())

    async def serve_async(
        self, *, install_sigint: bool = False
    ) -> Dict[str, object]:
        """Async entry point: build tenants, run all lanes, finalize.

        With ``install_sigint=True`` the loop's SIGINT handler becomes
        :meth:`request_drain` for the duration of the serve — Ctrl-C
        means "drain and checkpoint", not "drop state on the floor".
        """
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        sigint_installed = False
        if install_sigint:
            try:
                loop.add_signal_handler(signal.SIGINT, self.request_drain)
                sigint_installed = True
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal support serve without it
        try:
            self._tenants = [self._start_tenant(spec) for spec in self.specs]
            tasks = []
            for tenant in self._tenants:
                for lane in tenant.lanes:
                    tasks.append(
                        asyncio.ensure_future(self._produce(tenant, lane))
                    )
                    tasks.append(
                        asyncio.ensure_future(self._consume(tenant, lane))
                    )
                    self._active_consumers += 1
            if self.idle_policy is not None and self.checkpoint_root is not None:
                tasks.append(asyncio.ensure_future(self._monitor()))
            await asyncio.gather(*tasks)
            self._finalize()
        finally:
            if sigint_installed:
                loop.remove_signal_handler(signal.SIGINT)
        self._wall_seconds = time.perf_counter() - started
        return self.report()

    def _start_tenant(self, spec: TenantSpec) -> _Tenant:
        """Start (or, under ``resume``, restore) one tenant's session."""
        if self.resume and self.checkpoint_root is not None:
            payload = read_tenant_checkpoint(self.checkpoint_root, spec.tenant_id)
            if payload is not None:
                session = resume_any_session(
                    payload, workload_cache=self.workload_cache
                )
                return _Tenant(spec, session, self.queue_depth, resumed=True)
        return _Tenant(
            spec, spec.start(self.workload_cache), self.queue_depth
        )

    # -- tasks -----------------------------------------------------------

    async def _produce(self, tenant: _Tenant, lane: _Lane) -> None:
        """Pull batches from *lane*'s source and queue them, until done.

        ``take`` and the ``in_flight`` increment run without an
        intervening await, so the quiescence invariant (cursor ==
        consumed + in_flight at every suspension point) holds.  Stops on
        source exhaustion, policy completion, or drain.
        """
        run = lane.run
        try:
            while not self._draining and not run.policy.done:
                step = run.source.take(self.batch_limit)
                if step is None:
                    break
                lane.in_flight += 1
                lane.max_in_flight = max(lane.max_in_flight, lane.in_flight)
                pos0, batch, _stamps = step
                await lane.queue.put((pos0, batch))
                if self.pace_seconds > 0.0:
                    await asyncio.sleep(self.pace_seconds)
                else:
                    # Cooperative yield: a full put() may not suspend.
                    await asyncio.sleep(0)
        finally:
            await lane.queue.put(_EOS)

    async def _before_feed(self, tenant: _Tenant, lane: _Lane) -> None:
        """Seam between dequeue and feed — the default does nothing.

        Subclasses (and the backpressure tests) override this to stall a
        tenant's consumer the way a slow oracle would: while it waits,
        that tenant's producer can run at most ``queue_depth + 1`` steps
        ahead before its ``put`` blocks, and every other tenant keeps
        streaming.
        """
        return None

    async def _consume(self, tenant: _Tenant, lane: _Lane) -> None:
        """Feed queued steps to *lane*'s run, streaming decisions out."""
        run = lane.run
        while True:
            item = await lane.queue.get()
            if item is _EOS:
                break
            await self._before_feed(tenant, lane)
            pos0, batch = item
            logged = len(run.decisions)
            run.feed(pos0, batch)
            lane.in_flight -= 1
            tenant.arrivals += len(batch)
            tenant.batches += 1
            tenant.last_activity = time.perf_counter()
            if self.on_decision is not None:
                for position, element in run.decisions[logged:]:
                    self.on_decision(tenant.spec.tenant_id, position, element)
            await asyncio.sleep(0)  # fairness: one step per loop pass
        self._active_consumers -= 1

    async def _monitor(self) -> None:
        """Checkpoint idle tenants while the serve is running.

        A tenant qualifies when it is unfinished, quiescent (no in-flight
        step, so its snapshot is consistent), and its
        :class:`IdleCheckpointPolicy` says the idle time and progress
        since the last snapshot are worth the write.
        """
        policy = self.idle_policy
        assert policy is not None
        tick = max(policy.idle_seconds / 2.0, 0.005)
        while self._active_consumers > 0:
            await asyncio.sleep(tick)
            now = time.perf_counter()
            for tenant in self._tenants:
                if tenant.finished or not tenant.quiescent:
                    continue
                idle_for = now - tenant.last_activity
                if policy.due(tenant.spec.tenant_id, tenant.cursor, idle_for):
                    self._write_checkpoint(tenant)
                    tenant.idle_checkpoints += 1
                    policy.note_checkpoint(tenant.spec.tenant_id, tenant.cursor)

    # -- checkpointing ---------------------------------------------------

    def _write_checkpoint(self, tenant: _Tenant) -> None:
        """Atomically snapshot *tenant* to its directory (synchronous)."""
        assert self.checkpoint_root is not None
        t0 = time.perf_counter()
        tenant.checkpoint_path = write_tenant_checkpoint(
            tenant.session.checkpoint(),
            self.checkpoint_root,
            tenant.spec.tenant_id,
        )
        tenant.checkpoint_seconds.append(time.perf_counter() - t0)

    def _finalize(self) -> None:
        """Snapshot every tenant once all lanes have drained.

        All producers and consumers have exited, so every tenant is
        quiescent; the snapshot is exact whether the tenant finished or
        was drained mid-stream — either way its checkpoint resumes.
        """
        if self.checkpoint_root is None:
            return
        for tenant in self._tenants:
            self._write_checkpoint(tenant)

    # -- reporting -------------------------------------------------------

    def tenant_summary(self, tenant_id: str) -> Dict[str, object]:
        """One tenant's serving stats (plus its result when finished)."""
        for tenant in self._tenants:
            if tenant.spec.tenant_id == tenant_id:
                return self._tenant_report(tenant)
        raise InvalidInstanceError(f"unknown tenant {tenant_id!r}")

    def _tenant_report(self, tenant: _Tenant) -> Dict[str, object]:
        # Finish first: a sharded tenant's merge stage runs (and bills
        # its merge_calls) inside result(), so the summary must be
        # computed before oracle_calls is read.
        summary = tenant.session.summary() if tenant.finished else None
        out: Dict[str, object] = {
            "policy": tenant.spec.policy,
            "family": tenant.spec.family,
            "process": tenant.spec.process,
            "shards": tenant.spec.shards,
            "n": tenant.spec.n,
            "cursor": tenant.cursor,
            "arrivals": tenant.arrivals,
            "batches": tenant.batches,
            "decisions": tenant.decisions,
            "finished": tenant.finished,
            "resumed": tenant.resumed,
            "oracle_calls": tenant.session.oracle_calls,
            "max_in_flight": tenant.max_in_flight,
            "idle_checkpoints": tenant.idle_checkpoints,
            "checkpoint_path": tenant.checkpoint_path,
        }
        if summary is not None:
            for key in ("selected", "n_chosen", "value", "strategy"):
                if key in summary:
                    out[key] = summary[key]
        return out

    def report(self) -> Dict[str, object]:
        """The whole serve's JSON-friendly report (per tenant + totals)."""
        tenants = {
            t.spec.tenant_id: self._tenant_report(t) for t in self._tenants
        }
        arrivals = sum(t.arrivals for t in self._tenants)
        latencies = [
            s for t in self._tenants for s in t.checkpoint_seconds
        ]
        report: Dict[str, object] = {
            "tenants": tenants,
            "totals": {
                "tenants": len(self._tenants),
                "finished": sum(1 for t in self._tenants if t.finished),
                "resumed": sum(1 for t in self._tenants if t.resumed),
                "arrivals": arrivals,
                "decisions": sum(t.decisions for t in self._tenants),
                "oracle_calls": sum(
                    t.session.oracle_calls for t in self._tenants
                ),
                "idle_checkpoints": sum(
                    t.idle_checkpoints for t in self._tenants
                ),
                "max_in_flight": max(
                    (t.max_in_flight for t in self._tenants), default=0
                ),
                "drained": self._draining,
                "wall_seconds": self._wall_seconds,
                "arrivals_per_second": (
                    arrivals / self._wall_seconds
                    if self._wall_seconds > 0 else None
                ),
            },
            "workload_cache": self.workload_cache.stats(),
        }
        if latencies:
            report["checkpoint_latency"] = {
                "count": len(latencies),
                "mean_seconds": sum(latencies) / len(latencies),
                "max_seconds": max(latencies),
            }
        return report


def serve(
    specs: Sequence[TenantSpec], **kwargs: object
) -> Tuple[ServingLoop, Dict[str, object]]:
    """One-shot convenience: build a :class:`ServingLoop`, run it.

    Returns ``(loop, report)`` so callers can poke tenants afterwards;
    keyword arguments forward to :class:`ServingLoop`.
    """
    loop = ServingLoop(specs, **kwargs)  # type: ignore[arg-type]
    return loop, loop.serve()
