"""Command-line interface.

Seven subcommands mirroring the library's main entry points::

    python -m repro solve INSTANCE.json [--method M] [--render]
    python -m repro prize INSTANCE.json --target Z [--epsilon E] [--exact]
    python -m repro demo  [--seed S]                # random instance, solved
    python -m repro check INSTANCE.json             # validate + stats only
    python -m repro sweep --task secretary --families additive ...
    python -m repro bench --profile quick           # perf-regression gate
    python -m repro online run --policy monotone --process bursty ...
    python -m repro online resume CHECKPOINT.json
    python -m repro online reshard MANIFEST.json --shards 4
    python -m repro online serve TENANTS.json --checkpoint-dir DIR

All output is JSON on stdout (render/diagnostics on stderr), so the CLI
composes with jq-style pipelines.  ``sweep`` drives the batched
experiment engine (:mod:`repro.engine`): a parameter grid over one
task's workload families, solver methods, and seeded trials, optionally
across ``multiprocessing`` workers and a disk-backed result cache; the
aggregate table prints on stderr and the full record set on stdout.
``bench`` runs the curated multi-task suite of a profile, writes a
machine-readable ``BENCH_<profile>.json``, and compares it against the
committed baseline under ``benchmarks/baselines/`` — exiting 1 on any
regression beyond tolerance (the CI perf gate).  ``online`` serves the
unified arrival runtime (:mod:`repro.online`): ``run`` starts a policy
on a seeded workload under any registered arrival process — optionally
sharded across ``--shards`` policy replicas (merged under the task's
feasibility constraint, spawn-pool parallel with ``--workers``) —
optionally stopping after ``--max-arrivals`` and writing a
self-contained JSON checkpoint (atomically: temp file + rename);
``resume`` picks such a checkpoint (plain or sharded manifest) up
mid-stream — in a fresh process — and continues where the suspended
run stopped.  ``reshard`` rewrites a suspended sharded manifest from S
to S' lanes without losing a single consumed arrival or hire: consumed
prefixes stay pinned to their lanes, only the unconsumed suffix is
re-partitioned under a new partition-map epoch (so an S → S' → S round
trip is bit-identical to never resharding).  ``serve`` multiplexes
many tenant sessions through one
asyncio loop (:mod:`repro.online.serving`): a JSON spec file declares
the tenants, decisions stream concurrently, idle tenants checkpoint to
per-tenant directories, and SIGINT drains-and-checkpoints instead of
dropping state.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.render import render_schedule
from repro.errors import ReproError
from repro.io import (
    instance_to_dict,
    load_instance,
    schedule_to_dict,
)
from repro.scheduling.prize_collecting import (
    prize_collecting_exact_value,
    prize_collecting_schedule,
)
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import random_multi_interval_instance

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-minimizing scheduling via submodular maximization "
        "(Zadimoghaddam, SPAA 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="schedule all jobs (Theorem 2.2.1)")
    solve.add_argument("instance", help="instance JSON file")
    solve.add_argument(
        "--method", choices=["incremental", "lazy", "plain"], default="incremental"
    )
    solve.add_argument("--render", action="store_true", help="ASCII chart on stderr")

    prize = sub.add_parser("prize", help="prize-collecting (Theorems 2.3.1/2.3.3)")
    prize.add_argument("instance", help="instance JSON file")
    prize.add_argument("--target", type=float, required=True, help="value threshold Z")
    prize.add_argument("--epsilon", type=float, default=None,
                       help="bicriteria slack (omit with --exact)")
    prize.add_argument("--exact", action="store_true",
                       help="reach the threshold exactly (Theorem 2.3.3)")
    prize.add_argument("--render", action="store_true")

    demo = sub.add_parser("demo", help="generate and solve a random instance")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--jobs", type=int, default=10)
    demo.add_argument("--processors", type=int, default=3)
    demo.add_argument("--horizon", type=int, default=20)

    check = sub.add_parser("check", help="validate an instance file")
    check.add_argument("instance", help="instance JSON file")

    sweep = sub.add_parser(
        "sweep", help="batched parameter sweep via the experiment engine"
    )
    sweep.add_argument(
        "--task", default="schedule_all",
        help="task adapter to sweep (schedule_all, prize_collecting, "
             "secretary, knapsack_secretary)",
    )
    sweep.add_argument(
        "--families", default="multi",
        help="comma-separated workload families (e.g. multi,bursty_arrivals)",
    )
    sweep.add_argument(
        "--grid", default="20x3x40",
        help="comma-separated NxPxH cells (e.g. 15x3x24,30x4x40); the "
             "triple's meaning is task-defined",
    )
    sweep.add_argument(
        "--methods", default="incremental",
        help="comma-separated solver methods for the task",
    )
    sweep.add_argument("--trials", type=int, default=3, help="instances per cell")
    sweep.add_argument("--seed", type=int, default=20100612, help="master seed")
    sweep.add_argument(
        "--workers", type=int, default=0,
        help="multiprocessing workers (0/1 = inline)",
    )
    sweep.add_argument(
        "--cache-dir", default=None, help="disk-backed result cache directory"
    )
    sweep.add_argument(
        "--records", action="store_true",
        help="include per-run records in the JSON output (aggregate only otherwise)",
    )
    sweep.add_argument(
        "--verbose", action="store_true",
        help="print one progress line per finished cell on stderr "
             "(long grids are otherwise silent until the final table)",
    )

    bench = sub.add_parser(
        "bench", help="curated multi-task suite + perf-regression gate"
    )
    bench.add_argument(
        "--profile", default="quick",
        help="suite profile (smoke, quick, full)",
    )
    bench.add_argument(
        "--workers", type=int, default=0,
        help="multiprocessing workers (0/1 = inline; inline gives the "
             "least-noisy timings)",
    )
    bench.add_argument(
        "--output", default=None,
        help="where to write the measured report (default BENCH_<profile>.json)",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="baseline report to compare against "
             "(default benchmarks/baselines/BENCH_<profile>.json)",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured report to the baseline path and skip the gate",
    )

    online = sub.add_parser(
        "online", help="run/resume a policy on the unified arrival runtime"
    )
    online_sub = online.add_subparsers(dest="online_command", required=True)

    online_run = online_sub.add_parser(
        "run", help="start a (suspendable) online run from a workload recipe"
    )
    online_run.add_argument(
        "--policy", default="monotone",
        help="online policy (monotone, nonmonotone, classical, robust, "
             "bottleneck, knapsack, subadditive)",
    )
    online_run.add_argument(
        "--family", default="additive",
        help="workload family (additive, coverage, facility, cut)",
    )
    online_run.add_argument("--n", type=int, default=60, help="stream length")
    online_run.add_argument(
        "--k", type=int, default=4,
        help="hire budget (classical always hires one; knapsack's budget "
             "is the capacity, not a count — both ignore this flag)",
    )
    online_run.add_argument("--seed", type=int, default=0, help="session seed")
    online_run.add_argument(
        "--aux", type=int, default=0,
        help="family-specific auxiliary size (coverage universe / facility "
             "clients; 0 = family default)",
    )
    online_run.add_argument(
        "--n-knapsacks", type=int, default=2,
        help="knapsack count for --policy knapsack (reduced to one "
             "via Lemma 3.4.1)",
    )
    online_run.add_argument(
        "--distribution", default="uniform",
        help="additive value distribution (uniform, lognormal)",
    )
    online_run.add_argument(
        "--process", default="uniform",
        help="arrival process (see repro.online.arrival_process_names())",
    )
    online_run.add_argument(
        "--process-params", default=None,
        help='JSON object of process parameters (e.g. \'{"mean_batch": 6}\')',
    )
    online_run.add_argument(
        "--shards", type=int, default=1,
        help="shard the stream across this many policy replicas "
             "(1 = the plain unsharded runtime)",
    )
    online_run.add_argument(
        "--max-arrivals", type=int, default=None,
        help="suspend after this many arrivals (default: run to completion)",
    )
    online_run.add_argument(
        "--workers", type=int, default=0,
        help="run unfinished shards to completion in a spawn pool of this "
             "many processes (0/1 = inline; sharded runs only, incompatible "
             "with --max-arrivals)",
    )
    online_run.add_argument(
        "--checkpoint", default=None,
        help="where to write the checkpoint when suspended "
             "(default online_checkpoint.json; ignored for finished runs)",
    )

    online_resume = online_sub.add_parser(
        "resume", help="continue a suspended run from its checkpoint file"
    )
    online_resume.add_argument("checkpoint_file", help="checkpoint JSON file")
    online_resume.add_argument(
        "--max-arrivals", type=int, default=None,
        help="suspend again after this many further arrivals",
    )
    online_resume.add_argument(
        "--workers", type=int, default=0,
        help="run unfinished shards to completion in a spawn pool of this "
             "many processes (0/1 = inline; sharded checkpoints only, "
             "incompatible with --max-arrivals)",
    )
    online_resume.add_argument(
        "--checkpoint", default=None,
        help="where to write the next checkpoint when still suspended "
             "(default: overwrite the input file)",
    )

    online_reshard = online_sub.add_parser(
        "reshard",
        help="re-partition a suspended sharded manifest to a new shard "
             "count (consumed prefixes and hires stay where they are; "
             "only the unconsumed suffix moves, under a new epoch)",
    )
    online_reshard.add_argument(
        "checkpoint_file", help="sharded manifest JSON file"
    )
    online_reshard.add_argument(
        "--shards", type=int, required=True,
        help="new shard count S' (>= 1; S' == S is the identity)",
    )
    online_reshard.add_argument(
        "--salt", type=int, default=None,
        help="partition salt for the new epoch (default: keep the "
             "current salt, which makes S -> S' -> S a bit-identical "
             "round trip)",
    )
    online_reshard.add_argument(
        "--output", default=None,
        help="where to write the resharded manifest "
             "(default: overwrite the input file, atomically)",
    )

    online_inspect = online_sub.add_parser(
        "inspect",
        help="describe a checkpoint file without resuming it "
             "(schema version, process, cursor, hires, shard manifest, "
             "partition epochs)",
    )
    online_inspect.add_argument("checkpoint_file", help="checkpoint JSON file")

    online_serve = online_sub.add_parser(
        "serve",
        help="drive many concurrent tenant sessions from a JSON spec file "
             "(asyncio multiplexer; SIGINT/SIGTERM drain and checkpoint)",
    )
    online_serve.add_argument(
        "spec_file",
        help="tenant spec JSON: a list of tenant objects, or "
             '{"defaults": {...}, "tenants": [...], "replicate": {...}}',
    )
    online_serve.add_argument(
        "--checkpoint-dir", default=None,
        help="root directory for per-tenant checkpoints (one subdirectory "
             "per tenant id; omit to disable checkpointing)",
    )
    online_serve.add_argument(
        "--queue-depth", type=int, default=8,
        help="bound of each tenant lane's arrival queue (backpressure knob)",
    )
    online_serve.add_argument(
        "--batch-limit", type=int, default=None,
        help="max arrivals per queued step (default: whole minibatches, "
             "which keeps oracle-call counts identical to plain runs)",
    )
    online_serve.add_argument(
        "--idle-seconds", type=float, default=None,
        help="checkpoint a quiescent tenant after this much idle time "
             "(default: checkpoint only at drain/finish)",
    )
    online_serve.add_argument(
        "--min-progress", type=int, default=1,
        help="idle checkpoints also need this many new arrivals since "
             "the tenant's last snapshot",
    )
    online_serve.add_argument(
        "--pace-seconds", type=float, default=0.0,
        help="sleep between pushed steps per tenant (simulates real "
             "arrival gaps; gives the idle checkpointer work)",
    )
    online_serve.add_argument(
        "--resume", action="store_true",
        help="resume tenants whose checkpoints exist under "
             "--checkpoint-dir instead of starting them fresh (a corrupt "
             "per-tenant checkpoint quarantines that tenant, not the fleet)",
    )
    online_serve.add_argument(
        "--output", default=None,
        help="also write the serving report JSON to this file (atomically)",
    )
    online_serve.add_argument(
        "--fault-plan", default=None,
        help="fault-plan JSON file (repro-fault-plan/1): deterministic "
             "injected oracle/feed/checkpoint faults, latency, kill points",
    )
    online_serve.add_argument(
        "--memory-budget", type=int, default=None,
        help="max tenants resident at once; the rest wait parked in their "
             "per-tenant checkpoints (needs --checkpoint-dir)",
    )
    online_serve.add_argument(
        "--park-arrivals", type=int, default=None,
        help="arrivals an admitted tenant may consume per slice before it "
             "is parked for the next tenant (needs --memory-budget)",
    )
    online_serve.add_argument(
        "--autoscale", default=None, metavar="MIN:MAX",
        help="elastic shard topology: keep each tenant's lane count "
             "inside MIN:MAX and steal unconsumed work from hot lanes "
             "onto idle ones mid-serve (incompatible with "
             "--memory-budget)",
    )
    return parser


def _emit(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _cmd_solve(args) -> int:
    instance = load_instance(args.instance)
    result = schedule_all_jobs(instance, method=args.method)
    if args.render:
        print(render_schedule(result.schedule, instance), file=sys.stderr)
    _emit(
        {
            "cost": result.cost,
            "bound_factor": result.approximation_bound(),
            "method": result.method,
            "oracle_work": result.oracle_work,
            "schedule": schedule_to_dict(result.schedule),
        }
    )
    return 0


def _cmd_prize(args) -> int:
    instance = load_instance(args.instance)
    if args.exact:
        result = prize_collecting_exact_value(instance, args.target)
    else:
        epsilon = 0.25 if args.epsilon is None else args.epsilon
        result = prize_collecting_schedule(instance, args.target, epsilon)
    if args.render:
        print(render_schedule(result.schedule, instance), file=sys.stderr)
    _emit(
        {
            "value": result.value,
            "target": result.target_value,
            "epsilon": result.epsilon,
            "cost": result.cost,
            "schedule": schedule_to_dict(result.schedule),
        }
    )
    return 0


def _cmd_demo(args) -> int:
    instance = random_multi_interval_instance(
        args.jobs, args.processors, args.horizon, rng=args.seed
    )
    result = schedule_all_jobs(instance)
    print(render_schedule(result.schedule, instance), file=sys.stderr)
    _emit(
        {
            "instance": instance_to_dict(instance),
            "cost": result.cost,
            "schedule": schedule_to_dict(result.schedule),
        }
    )
    return 0


def _cmd_check(args) -> int:
    instance = load_instance(args.instance)  # load validates
    _emit(
        {
            "ok": True,
            "n_jobs": instance.n_jobs,
            "processors": len(instance.processors),
            "horizon": instance.horizon,
            "total_value": instance.total_value(),
            "usable_slots": len(instance.all_slots()),
            "candidate_intervals": len(instance.candidates()),
        }
    )
    return 0


def _parse_grid(text: str):
    cells = []
    for chunk in text.split(","):
        parts = chunk.strip().lower().split("x")
        if len(parts) != 3 or not all(p.isdigit() for p in parts):
            raise ReproError(
                f"bad grid cell {chunk!r}: expected JOBSxPROCSxHORIZON (e.g. 30x4x40)"
            )
        cells.append(tuple(int(x) for x in parts))
    return tuple(cells)


def _cmd_sweep(args) -> int:
    from repro.engine import ResultCache, SweepSpec, run_sweep

    sweep = SweepSpec(
        task=args.task,
        families=tuple(f.strip() for f in args.families.split(",") if f.strip()),
        grid=_parse_grid(args.grid),
        methods=tuple(m.strip() for m in args.methods.split(",") if m.strip()),
        trials=args.trials,
        master_seed=args.seed,
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    result = run_sweep(
        sweep, workers=args.workers, cache=cache, verbose=args.verbose
    )
    print(result.to_table(title="repro sweep"), file=sys.stderr)
    payload = result.to_dict()
    if not args.records:
        del payload["records"]
    from repro.engine import get_task

    # Only meaningful when the task's methods realise the same
    # objective (for e.g. secretary sweeps, different methods are
    # different algorithms with different benchmarks, not engines).
    if get_task(args.task).methods_interchangeable:
        payload["methods_agree"] = result.methods_agree()
    if cache is not None:
        # Count from the records, not the parent cache's counters — with
        # --workers the lookups happen in worker-process caches.
        hits = sum(1 for r in result.records if r.cache_hit)
        payload["cache"] = {"hits": hits, "misses": len(result.records) - hits}
    _emit(payload)
    return 0


def _cmd_bench(args) -> int:
    from repro.engine.baseline import (
        compare_reports,
        default_baseline_path,
        has_failures,
        load_report,
        regression_table,
        run_bench,
        write_report,
    )

    # No result cache here on purpose: cached cells would replay
    # pre-change metrics and defeat the regression gate.
    report = run_bench(args.profile, workers=args.workers)
    output_path = args.output or f"BENCH_{args.profile}.json"
    baseline_path = args.baseline or default_baseline_path(args.profile)

    write_report(report, output_path)
    print(f"bench report written to {output_path}", file=sys.stderr)

    if args.update_baseline:
        write_report(report, baseline_path)
        print(f"baseline updated at {baseline_path}", file=sys.stderr)
        _emit({"profile": args.profile, "output": output_path,
               "baseline": baseline_path, "updated": True,
               "cells": len(report["cells"])})
        return 0

    try:
        baseline = load_report(baseline_path)
    except FileNotFoundError:
        print(
            f"error: no baseline at {baseline_path}; generate one with "
            f"repro bench --profile {args.profile} --update-baseline",
            file=sys.stderr,
        )
        return 2
    findings = compare_reports(report, baseline)
    table = regression_table(findings)
    if table:
        print(table, file=sys.stderr)
    failed = has_failures(findings)
    _emit({
        "profile": args.profile,
        "output": output_path,
        "baseline": baseline_path,
        "cells": len(report["cells"]),
        "findings": [f.to_dict() for f in findings],
        "passed": not failed,
    })
    if failed:
        print("bench gate: FAIL (regressions above tolerance)", file=sys.stderr)
        return 1
    print("bench gate: ok", file=sys.stderr)
    return 0


def _finish_online(session, args) -> int:
    """Shared tail of ``online run``/``online resume``.

    Emits the session summary; a still-suspended run additionally writes
    its checkpoint (atomically: temp file + rename, so a crash mid-write
    can never truncate the checkpoint a resume depends on) and reports
    where.
    """
    from repro.io import dump_json_atomic

    payload = session.summary()
    if not session.finished:
        default = getattr(args, "checkpoint_file", None) or "online_checkpoint.json"
        path = args.checkpoint or default
        dump_json_atomic(session.checkpoint(), path)
        payload["checkpoint"] = path
        print(
            f"suspended at arrival {session.run.cursor}/{session.run.n}; "
            f"checkpoint written to {path}",
            file=sys.stderr,
        )
    _emit(payload)
    return 0


def _load_checkpoint_file(path: str) -> dict:
    """Read a checkpoint file, turning corruption into a usage error.

    A crashed writer (pre-atomic-write checkpoints), disk-full
    truncation, or a hand-edit leaves invalid JSON; surface that as a
    clean exit-2 error naming the file instead of a raw
    ``json.JSONDecodeError`` traceback.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"checkpoint file {path} is corrupt or truncated "
                f"(not valid JSON: {exc})"
            ) from exc
    if not isinstance(payload, dict):
        raise ReproError(f"checkpoint file {path} is not a JSON object")
    return payload


def _render_params(params: object) -> dict:
    """Deterministic rendering of source/process params for inspection.

    Scalars print verbatim; container values (a replay's embedded
    payload, say) print as a stable size summary instead of pages of
    JSON.  Keys come out sorted, so documented inspect output is
    byte-stable no matter how the params dict was assembled.
    """
    if not isinstance(params, dict):
        return {}
    out: dict = {}
    for key in sorted(params, key=str):
        value = params[key]
        if isinstance(value, dict):
            out[str(key)] = f"<object: {len(value)} keys>"
        elif isinstance(value, (list, tuple)):
            out[str(key)] = f"<list: {len(value)} items>"
        else:
            out[str(key)] = value
    return out


def _describe_shard_checkpoint(ck: dict) -> dict:
    """Summary of one ordinary (per-shard or unsharded) checkpoint payload."""
    version = int(ck.get("schema_version", 1))
    entry: dict = {
        "schema_version": version,
        "cursor": ck.get("cursor"),
        "policy": (ck.get("policy") or {}).get("name"),
    }
    if version >= 2:
        source = ck.get("source") or {}
        entry["process"] = source.get("process")
        entry["seed"] = source.get("seed")
        entry["params"] = _render_params(source.get("params"))
        shard = source.get("shard")
        if shard:
            partition = shard.get("partition") if isinstance(shard, dict) else None
            if isinstance(partition, dict):
                # A resharded lane: summarise the epoch history instead
                # of dumping the full per-epoch cursor lists.
                epochs = partition.get("epochs") or []
                entry["shard"] = {
                    "index": shard.get("index"),
                    "partition_epoch": max(0, len(epochs) - 1),
                    "num_shards": (epochs[-1] or {}).get("num_shards")
                    if epochs else None,
                    "salt": (epochs[-1] or {}).get("salt")
                    if epochs else None,
                }
            else:
                entry["shard"] = shard
        entry["hired"] = len(ck.get("decisions") or [])
        entry["frontier"] = len(ck.get("frontier") or [])
        state = source.get("state") or {}
        fp = state.get("fingerprint") or {}
        entry["fingerprint"] = fp.get("chain")
        entry["embedded_schedule"] = "schedule" in source
    else:
        schedule = ck.get("schedule") or {}
        entry["process"] = schedule.get("process")
        entry["seed"] = schedule.get("seed")
        entry["params"] = _render_params(schedule.get("params"))
        order = schedule.get("order")
        entry["n"] = None if order is None else len(order)
        # v1 recorded no decision log; the hire count lives (if anywhere)
        # inside policy state, whose layout is policy-specific.
        state = (ck.get("policy") or {}).get("state") or {}
        selected = state.get("selected")
        entry["hired"] = len(selected) if isinstance(selected, list) else None
    return entry


def _cmd_online_inspect(args) -> int:
    """``online inspect``: describe a checkpoint without resuming it.

    Read-only — no utility rebuild, no oracle, no policy construction —
    so it works even when the workload recipe's family is unknown to
    this release.  Corrupt files exit 2 through the shared loader.
    """
    from repro.online.checkpoint import CHECKPOINT_FORMAT
    from repro.online.sharding import SHARDED_CHECKPOINT_FORMAT

    payload = _load_checkpoint_file(args.checkpoint_file)
    fmt = payload.get("format")
    if fmt not in (CHECKPOINT_FORMAT, SHARDED_CHECKPOINT_FORMAT):
        raise ReproError(
            f"checkpoint file {args.checkpoint_file} has unknown format "
            f"{fmt!r} (expected {CHECKPOINT_FORMAT} or "
            f"{SHARDED_CHECKPOINT_FORMAT})"
        )
    out: dict = {
        "file": args.checkpoint_file,
        "format": fmt,
        "schema_version": int(payload.get("schema_version", 1)),
    }
    recipe = payload.get("instance")
    if isinstance(recipe, dict):
        out["recipe"] = {
            key: recipe.get(key)
            for key in ("policy", "family", "n", "k", "seed", "process",
                        "shards")
            if key in recipe
        }
    if fmt == SHARDED_CHECKPOINT_FORMAT:
        shards = payload.get("shards") or []
        out["num_shards"] = payload.get("num_shards")
        out["salt"] = payload.get("salt")
        partition = payload.get("partition")
        if isinstance(partition, dict):
            # v3 manifests carry the partition-map epoch history; show
            # one compact line per epoch (epoch 0 has no consumed list).
            epochs = partition.get("epochs") or []
            out["partition"] = {
                "epoch": max(0, len(epochs) - 1),
                "history": [
                    {
                        "num_shards": (ep or {}).get("num_shards"),
                        "salt": (ep or {}).get("salt"),
                        "consumed": list((ep or {}).get("consumed") or [])
                        or None,
                    }
                    for ep in epochs
                ],
            }
        out["shards"] = [
            _describe_shard_checkpoint(ck) for ck in shards
            if isinstance(ck, dict)
        ]
        out["cursor"] = sum(
            int(s["cursor"]) for s in out["shards"]
            if isinstance(s.get("cursor"), int)
        )
        out["hired"] = sum(
            s["hired"] for s in out["shards"]
            if isinstance(s.get("hired"), int)
        ) if all(
            isinstance(s.get("hired"), int) for s in out["shards"]
        ) else None
    else:
        out.update(_describe_shard_checkpoint(payload))
    _emit(out)
    return 0


def _cmd_online_reshard(args) -> int:
    """``online reshard``: rewrite a sharded manifest from S to S' lanes.

    The transform is offline — no policy is advanced, no oracle call is
    made for carried lanes — and atomic: the output manifest lands via
    temp-file + rename, so an interrupted reshard leaves the input
    usable.  Fresh lanes (growing S) are seeded exactly as
    ``start_sharded_session`` would have seeded them.
    """
    from repro.io import dump_json_atomic
    from repro.online.session import reshard_session
    from repro.online.sharding import partition_from_manifest

    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    payload = _load_checkpoint_file(args.checkpoint_file)
    out = reshard_session(payload, args.shards, salt=args.salt)
    path = args.output or args.checkpoint_file
    dump_json_atomic(out, path)
    partition = partition_from_manifest(out)
    print(
        f"resharded {args.checkpoint_file} to {args.shards} shard(s) "
        f"(partition epoch {partition.epoch}); written to {path}",
        file=sys.stderr,
    )
    _emit({
        "file": path,
        "num_shards": out.get("num_shards"),
        "schema_version": out.get("schema_version"),
        "partition_epoch": partition.epoch,
        "cursors": [
            (ck.get("cursor") if isinstance(ck, dict) else None)
            for ck in (out.get("shards") or [])
        ],
    })
    return 0


def _parse_autoscale(text: str):
    """Parse ``--autoscale MIN:MAX`` into an ``(int, int)`` pair."""
    parts = text.split(":")
    if len(parts) != 2 or not all(p.strip().isdigit() for p in parts):
        raise ReproError(
            f"--autoscale expects MIN:MAX (e.g. 2:8), got {text!r}"
        )
    lo, hi = (int(p) for p in parts)
    if lo < 1 or lo > hi:
        raise ReproError(
            f"--autoscale needs 1 <= MIN <= MAX, got {lo}:{hi}"
        )
    return lo, hi


def _cmd_online_serve(args) -> int:
    """``online serve``: multiplex many tenant sessions in one process.

    Loads the tenant spec file, runs the asyncio serving loop with
    SIGINT and SIGTERM mapped to drain-and-checkpoint, and emits the
    serving report (per-tenant stats + totals + cache effectiveness).
    Exit 0 covers both a completed serve and a clean drain — the
    report's ``totals.drained`` flag says which happened; exit 3 means
    the serve ran but one or more tenants ended quarantined (their
    per-tenant ``error`` fields say why).
    """
    import asyncio
    import time

    from repro.online.checkpoint import IdleCheckpointPolicy
    from repro.online.faults import load_fault_plan
    from repro.online.serving import ServingLoop, load_tenant_specs

    with open(args.spec_file, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"spec file {args.spec_file} is not valid JSON: {exc}"
            ) from exc
    specs = load_tenant_specs(payload)
    idle_policy = None
    if args.idle_seconds is not None:
        if args.checkpoint_dir is None:
            raise ReproError("--idle-seconds needs --checkpoint-dir")
        idle_policy = IdleCheckpointPolicy(
            idle_seconds=args.idle_seconds, min_progress=args.min_progress
        )
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = load_fault_plan(args.fault_plan)
    autoscale = None
    if args.autoscale is not None:
        autoscale = _parse_autoscale(args.autoscale)
    loop = ServingLoop(
        specs,
        checkpoint_root=args.checkpoint_dir,
        queue_depth=args.queue_depth,
        batch_limit=args.batch_limit,
        idle_policy=idle_policy,
        pace_seconds=args.pace_seconds,
        resume=args.resume,
        fault_plan=fault_plan,
        memory_budget=args.memory_budget,
        park_arrivals=args.park_arrivals,
        autoscale=autoscale,
    )
    report = asyncio.run(loop.serve_async(install_signals=True))
    totals = report["totals"]
    quarantined = int(totals.get("quarantined", 0))
    print(
        f"served {totals['tenants']} tenants: {totals['arrivals']} arrivals, "
        f"{totals['decisions']} hires"
        + (" (drained early)" if totals["drained"] else "")
        + (f" ({quarantined} quarantined)" if quarantined else ""),
        file=sys.stderr,
    )
    if args.output:
        from repro.io import dump_json_atomic

        if loop.fault_injector is not None:
            # The report write is itself a registered fault site, so the
            # kill-point audit can prove a crash here loses no tenant state.
            delay = loop.fault_injector.hit("report.write", "serve")
            if delay > 0.0:
                time.sleep(delay)
        dump_json_atomic(report, args.output)
        print(f"serving report written to {args.output}", file=sys.stderr)
    _emit(report)
    return 3 if quarantined else 0


def _cmd_online(args) -> int:
    from repro.online.session import (
        ShardedSession,
        resume_any_session,
        start_session,
        start_sharded_session,
    )

    if args.online_command == "inspect":
        return _cmd_online_inspect(args)
    if args.online_command == "serve":
        return _cmd_online_serve(args)
    if args.online_command == "reshard":
        return _cmd_online_reshard(args)
    # run/resume share tail flags; reject nonsense values up front with
    # the flag's name (a negative --workers used to fall through to the
    # inline path silently, a negative --max-arrivals ran the full
    # stream).
    if args.workers < 0:
        raise ReproError(f"--workers must be >= 0, got {args.workers}")
    if args.max_arrivals is not None and args.max_arrivals < 0:
        raise ReproError(
            f"--max-arrivals must be >= 0, got {args.max_arrivals}"
        )
    if args.online_command == "run":
        params = None
        if args.process_params:
            try:
                params = json.loads(args.process_params)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"--process-params is not valid JSON: {exc}"
                ) from exc
            if not isinstance(params, dict):
                raise ReproError("--process-params must be a JSON object")
        if args.shards < 1:
            raise ReproError(f"--shards must be >= 1, got {args.shards}")
        kwargs = dict(
            policy=args.policy,
            family=args.family,
            n=args.n,
            k=args.k,
            seed=args.seed,
            process=args.process,
            aux=args.aux,
            n_knapsacks=args.n_knapsacks,
            distribution=args.distribution,
            process_params=params,
        )
        if args.shards > 1:
            session = start_sharded_session(shards=args.shards, **kwargs)
        else:
            session = start_session(**kwargs)
    else:
        session = resume_any_session(_load_checkpoint_file(args.checkpoint_file))
    if args.workers > 1:
        if not isinstance(session, ShardedSession):
            raise ReproError("--workers applies to sharded runs only")
        if args.max_arrivals is not None:
            raise ReproError(
                "--workers runs shards to completion; drop --max-arrivals "
                "or run inline"
            )
        session.advance_parallel(args.workers)
    else:
        session.advance(args.max_arrivals)
    return _finish_online(session, args)


_COMMANDS = {
    "solve": _cmd_solve,
    "prize": _cmd_prize,
    "demo": _cmd_demo,
    "check": _cmd_check,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "online": _cmd_online,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
