"""JSON serialization for instances and schedules.

A downstream user needs to get problems *into* the library and results
*out of* it without writing Python constructors by hand; this module
defines a stable, versioned JSON interchange format used by the CLI
(:mod:`repro.cli`) and usable from any language.

Format (version 1)::

    {
      "format": "repro-instance/1",
      "processors": ["cpu0", "cpu1"],
      "horizon": 12,
      "cost_model": {"kind": "affine", "restart_cost": 3.0, "rate": 1.0},
      "jobs": [
        {"id": "compile", "value": 5.0,
         "slots": [["cpu0", 0], ["cpu0", 1], ["cpu1", 5]]}
      ],
      "candidate_intervals": [["cpu0", 0, 3]]          // optional
    }

Cost-model kinds: ``affine``, ``per_processor``, ``time_of_use``,
``superlinear``, ``table`` (plus ``unavailable`` wrapping any of them).
Processor ids are strings in the interchange format (JSON keys must
be); loading preserves them as given.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict

from repro.errors import InvalidInstanceError
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import (
    AffineCost,
    CostModel,
    PerProcessorRateCost,
    SuperlinearCost,
    TableCost,
    TimeOfUseCost,
    UnavailabilityCost,
)
from repro.scheduling.schedule import Schedule

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "dump_instance",
    "dump_json_atomic",
    "load_instance",
]

_INSTANCE_FORMAT = "repro-instance/1"
_SCHEDULE_FORMAT = "repro-schedule/1"


# -- cost models -------------------------------------------------------


def _cost_model_to_dict(model: CostModel) -> Dict[str, Any]:
    if isinstance(model, UnavailabilityCost):
        return {
            "kind": "unavailable",
            "base": _cost_model_to_dict(model.base),
            "blocked": sorted([[str(p), int(t)] for p, t in model.blocked]),
        }
    if isinstance(model, AffineCost):
        return {"kind": "affine", "restart_cost": model.restart_cost, "rate": model.rate}
    if isinstance(model, PerProcessorRateCost):
        return {
            "kind": "per_processor",
            "rates": {str(p): r for p, r in model.rates.items()},
            "restart_costs": {str(p): c for p, c in model.restart_costs.items()},
        }
    if isinstance(model, TimeOfUseCost):
        return {
            "kind": "time_of_use",
            "prices": [float(x) for x in model.prices],
            "restart_cost": model.restart_cost,
            "per_processor_prices": {
                str(p): [float(x) for x in arr] for p, arr in model._per_proc.items()
            },
        }
    if isinstance(model, SuperlinearCost):
        return {
            "kind": "superlinear",
            "restart_cost": model.restart_cost,
            "exponent": model.exponent,
            "scale": model.scale,
        }
    if isinstance(model, TableCost):
        return {
            "kind": "table",
            "default": None if model.default == float("inf") else model.default,
            "entries": sorted(
                [[str(iv.processor), iv.start, iv.end, c] for iv, c in model.table.items()],
            ),
        }
    raise InvalidInstanceError(
        f"cost model {type(model).__name__} has no JSON representation"
    )


def _cost_model_from_dict(data: Dict[str, Any]) -> CostModel:
    kind = data.get("kind")
    if kind == "affine":
        return AffineCost(data["restart_cost"], data.get("rate", 1.0))
    if kind == "per_processor":
        return PerProcessorRateCost(data["rates"], data["restart_costs"])
    if kind == "time_of_use":
        return TimeOfUseCost(
            data["prices"],
            data.get("restart_cost", 0.0),
            data.get("per_processor_prices") or None,
        )
    if kind == "superlinear":
        return SuperlinearCost(data["restart_cost"], data["exponent"], data.get("scale", 1.0))
    if kind == "table":
        default = data.get("default")
        return TableCost(
            {
                AwakeInterval(p, s, e): float(c)
                for p, s, e, c in data.get("entries", [])
            },
            default=float("inf") if default is None else float(default),
        )
    if kind == "unavailable":
        return UnavailabilityCost(
            _cost_model_from_dict(data["base"]),
            [(p, int(t)) for p, t in data.get("blocked", [])],
        )
    raise InvalidInstanceError(f"unknown cost model kind {kind!r}")


# -- instances ----------------------------------------------------------


def instance_to_dict(instance: ScheduleInstance) -> Dict[str, Any]:
    """Serialise an instance (processor/job ids stringified)."""
    out: Dict[str, Any] = {
        "format": _INSTANCE_FORMAT,
        "processors": [str(p) for p in instance.processors],
        "horizon": instance.horizon,
        "cost_model": _cost_model_to_dict(instance.cost_model),
        "jobs": [
            {
                "id": str(job.id),
                "value": job.value,
                "slots": sorted([[str(p), int(t)] for p, t in job.slots]),
            }
            for job in instance.jobs
        ],
    }
    if instance._candidates is not None:
        out["candidate_intervals"] = sorted(
            [[str(iv.processor), iv.start, iv.end] for iv in instance._candidates]
        )
    return out


def instance_from_dict(data: Dict[str, Any]) -> ScheduleInstance:
    if data.get("format") != _INSTANCE_FORMAT:
        raise InvalidInstanceError(
            f"expected format {_INSTANCE_FORMAT!r}, got {data.get('format')!r}"
        )
    jobs = [
        Job(
            id=j["id"],
            slots=frozenset((p, int(t)) for p, t in j["slots"]),
            value=float(j.get("value", 1.0)),
        )
        for j in data.get("jobs", [])
    ]
    candidates = None
    if "candidate_intervals" in data:
        candidates = [AwakeInterval(p, int(s), int(e)) for p, s, e in data["candidate_intervals"]]
    return ScheduleInstance(
        processors=list(data["processors"]),
        jobs=jobs,
        horizon=int(data["horizon"]),
        cost_model=_cost_model_from_dict(data["cost_model"]),
        candidate_intervals=candidates,
    )


# -- schedules ----------------------------------------------------------


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    return {
        "format": _SCHEDULE_FORMAT,
        "intervals": sorted(
            [[str(iv.processor), iv.start, iv.end] for iv in schedule.intervals]
        ),
        "assignment": {
            str(j): [str(p), int(t)] for j, (p, t) in schedule.assignment.items()
        },
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    if data.get("format") != _SCHEDULE_FORMAT:
        raise InvalidInstanceError(
            f"expected format {_SCHEDULE_FORMAT!r}, got {data.get('format')!r}"
        )
    return Schedule(
        intervals=[AwakeInterval(p, int(s), int(e)) for p, s, e in data.get("intervals", [])],
        assignment={j: (p, int(t)) for j, (p, t) in data.get("assignment", {}).items()},
    )


# -- file helpers --------------------------------------------------------


def dump_instance(instance: ScheduleInstance, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(instance_to_dict(instance), fh, indent=2, sort_keys=True)


def load_instance(path: str) -> ScheduleInstance:
    with open(path, "r", encoding="utf-8") as fh:
        return instance_from_dict(json.load(fh))


def dump_json_atomic(payload: Any, path: str, *, mid_write_hook=None) -> None:
    """Write *payload* as JSON to *path* crash-safely.

    The payload is serialised to a temp file in the target directory
    (same filesystem, so the final ``os.replace`` is atomic), then
    renamed into place — a process killed mid-write can only ever leave
    a stray temp file behind, never a truncated *path*.  Checkpoints
    ride on this: the file a resume reads is always either the previous
    complete payload or the new complete payload.

    *mid_write_hook* (when given) runs after the temp file is fully
    written but before the atomic rename — the torn-write window.  The
    fault-injection layer uses it to hard-kill a process exactly there
    and prove the guarantee above empirically.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; restore the umask-governed mode a
        # plain open() would have given, so replacing a checkpoint does
        # not silently strip group/other read access.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if mid_write_hook is not None:
            mid_write_hook()
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
