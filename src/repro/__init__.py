"""repro — Scheduling to Minimize Power Consumption using Submodular Functions.

A from-scratch reproduction of Zadimoghaddam (SPAA 2010 / MIT thesis):

* :mod:`repro.core` — submodular maximization with budget constraints
  (Lemma 2.1.2's bicriteria greedy and its lazy variant);
* :mod:`repro.matching` — the bipartite-matching substrate and the
  submodular matching utilities of Lemmas 2.2.2 / 2.3.2;
* :mod:`repro.scheduling` — multi-interval multi-processor power
  minimization (Theorem 2.2.1), the prize-collecting variants
  (Theorems 2.3.1 / 2.3.3), exact references, baselines, and the
  Set-Cover hardness reduction (Appendix .1);
* :mod:`repro.matroids` — independence-oracle matroids (§3.3);
* :mod:`repro.secretary` — the submodular secretary algorithms
  (Theorems 3.1.1–3.1.4) and the subadditive hardness construction;
* :mod:`repro.online` — the unified online arrival runtime (pluggable
  arrival processes, step-based policies, checkpoint/resume drivers);
* :mod:`repro.workloads` — synthetic instance/stream generators;
* :mod:`repro.engine` — the batched experiment engine (parameter
  sweeps, instance-hash result caching, multiprocessing workers);
* :mod:`repro.analysis` — optimum certification and ratio statistics.

Quickstart::

    from repro import Job, ScheduleInstance, AffineCost, schedule_all_jobs

    jobs = [Job("a", {("cpu0", 0), ("cpu0", 5)}), Job("b", {("cpu0", 1)})]
    inst = ScheduleInstance(["cpu0"], jobs, horizon=8, cost_model=AffineCost(2.0))
    result = schedule_all_jobs(inst)
    print(result.schedule.summary(inst))
"""

from repro.errors import (
    BudgetError,
    InfeasibleError,
    InvalidInstanceError,
    NotSubmodularError,
    OracleError,
    ReproError,
)
from repro.core import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    BudgetedInstance,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    GreedyResult,
    LambdaSetFunction,
    SetFunction,
    TruncatedFunction,
    WeightedCoverageFunction,
    budgeted_greedy,
    check_monotone,
    check_submodular,
    lazy_budgeted_greedy,
)
from repro.scheduling import (
    AffineCost,
    AwakeInterval,
    Job,
    Schedule,
    ScheduleInstance,
    SuperlinearCost,
    TableCost,
    TimeOfUseCost,
    UnavailabilityCost,
    optimal_schedule_bruteforce,
    prize_collecting_exact_value,
    prize_collecting_schedule,
    schedule_all_jobs,
)
from repro.secretary import (
    SecretaryStream,
    monotone_submodular_secretary,
    nonmonotone_submodular_secretary,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleError",
    "OracleError",
    "BudgetError",
    "NotSubmodularError",
    # core
    "SetFunction",
    "LambdaSetFunction",
    "TruncatedFunction",
    "AdditiveFunction",
    "BudgetAdditiveFunction",
    "CoverageFunction",
    "WeightedCoverageFunction",
    "CutFunction",
    "FacilityLocationFunction",
    "BudgetedInstance",
    "budgeted_greedy",
    "lazy_budgeted_greedy",
    "GreedyResult",
    "check_monotone",
    "check_submodular",
    # scheduling
    "Job",
    "ScheduleInstance",
    "Schedule",
    "AwakeInterval",
    "AffineCost",
    "TimeOfUseCost",
    "SuperlinearCost",
    "UnavailabilityCost",
    "TableCost",
    "schedule_all_jobs",
    "prize_collecting_schedule",
    "prize_collecting_exact_value",
    "optimal_schedule_bruteforce",
    # secretary
    "SecretaryStream",
    "monotone_submodular_secretary",
    "nonmonotone_submodular_secretary",
]
