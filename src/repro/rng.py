"""Deterministic random-number plumbing.

All stochastic code in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`as_generator`.  Experiments pass explicit seeds so every table in
EXPERIMENTS.md is reproducible bit-for-bit, which is the reproducibility
discipline the HPC guides call for.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["as_generator", "spawn", "random_permutation"]

T = TypeVar("T")

RngLike = "int | np.random.Generator | None"


def as_generator(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields an OS-entropy generator (interactive use); an ``int``
    yields a deterministic PCG64 stream; a ``Generator`` passes through
    unchanged so callers can thread one stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators.

    Used by multi-trial experiment loops so trials are independent yet
    reproducible regardless of execution order (the same pattern one
    would use to give each MPI rank / worker its own stream).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def random_permutation(items: Sequence[T] | Iterable[T], rng: np.random.Generator) -> list[T]:
    """Return *items* in a uniformly random order (non-destructive)."""
    pool = list(items)
    order = rng.permutation(len(pool))
    return [pool[i] for i in order]
