"""Section 3.5 — the subadditive secretary problem.

Two halves of Theorem 3.1.4:

* **Hardness** (Theorem 3.5.1): :class:`HiddenSetFunction` is the
  adversarial monotone subadditive function built around a hidden random
  set ``S*``: queries report ``max(1, ceil(|S ∩ S*| / r))``, so every
  query that does not intersect the hidden set substantially returns the
  same value 1 and leaks nothing.  Any algorithm with few oracle calls
  is stuck at value ~1 while ``OPT >= k/r`` — the Omega(sqrt(n)) gap.
  The function is "almost submodular" (Proposition 3.5.3:
  ``f(A) + f(B) >= f(A u B) + f(A n B) - 2``), which the tests verify.

* **Algorithm** (Section 3.5.2): an O(sqrt(n))-competitive rule that
  combines the k-competitive best-singleton strategy
  (:class:`repro.online.policies.BestSingletonPolicy`) with the
  (n/k)-competitive random-segment strategy
  (:class:`repro.online.policies.SubadditiveSegmentPolicy`) — partition
  the stream into ``ceil(n/k)`` segments of size at most k and hire one
  uniformly random segment wholesale; subadditivity guarantees some
  segment carries a ``k/n`` fraction of OPT.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Hashable, Iterable

from repro.core.submodular import SetFunction
from repro.errors import BudgetError
from repro.online.driver import drive_stream
from repro.online.policies import BestSingletonPolicy, SubadditiveSegmentPolicy
from repro.online.results import SecretaryResult
from repro.rng import as_generator
from repro.secretary.stream import SecretaryStream

__all__ = ["HiddenSetFunction", "subadditive_secretary"]


class HiddenSetFunction(SetFunction):
    """The hard monotone subadditive function of Theorem 3.5.1.

    Parameters
    ----------
    ground:
        The universe ``U`` (size n).
    expected_hidden:
        The expected hidden-set size ``k``; each element joins ``S*``
        independently with probability ``k/n``.
    r:
        The information-hiding granularity; the theorem uses
        ``r = lambda * m * k / n`` with ``lambda ~ sqrt(n)`` and query
        caps m — callers pick it per experiment.
    rng:
        Seed/generator for sampling ``S*``.
    """

    def __init__(self, ground: Iterable[Hashable], expected_hidden: int, r: float, rng=None):
        self._ground = frozenset(ground)
        if not self._ground:
            raise BudgetError("ground set must be non-empty")
        if r <= 0:
            raise BudgetError(f"r must be positive, got {r}")
        n = len(self._ground)
        k = int(expected_hidden)
        if not (0 < k <= n):
            raise BudgetError(f"expected hidden size must be in 1..{n}, got {k}")
        gen = as_generator(rng)
        mask = gen.random(n) < (k / n)
        ordered = sorted(self._ground, key=repr)
        self.hidden: FrozenSet[Hashable] = frozenset(
            e for e, m in zip(ordered, mask) if m
        ) or frozenset({ordered[int(gen.integers(n))]})
        self.r = float(r)
        self.query_count = 0

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def intersection_size(self, subset: FrozenSet[Hashable]) -> int:
        return len(frozenset(subset) & self.hidden)

    def value(self, subset: FrozenSet[Hashable]) -> float:
        self.query_count += 1
        g = self.intersection_size(subset)
        return float(max(1, math.ceil(g / self.r)))

    def optimum(self) -> float:
        """f(S*) — what the adversary knows the best set is worth."""
        return float(max(1, math.ceil(len(self.hidden) / self.r)))


def subadditive_secretary(
    stream: SecretaryStream,
    k: int,
    *,
    rng=None,
) -> SecretaryResult:
    """The O(sqrt(n))-competitive algorithm for subadditive utilities.

    Randomises between the two complementary strategies:

    * best-singleton (classical rule) — k-competitive,
    * random segment of size <= k hired wholesale — (n/k)-competitive.

    At ``k = sqrt(n)`` both are O(sqrt(n)), matching the lower bound.
    """
    if k <= 0:
        raise BudgetError(f"k must be positive, got {k}")
    gen = as_generator(rng)
    n = stream.n

    if gen.random() < 0.5:
        # Strategy A: single best item via the classical rule.
        return drive_stream(stream, BestSingletonPolicy())

    # Strategy B: hire one uniformly random size-<=k segment wholesale.
    n_segments = max(1, math.ceil(n / k))
    target = int(gen.integers(n_segments))
    return drive_stream(stream, SubadditiveSegmentPolicy(k, target))
