"""Algorithm 3 — the submodular matroid secretary problem (Theorem 3.1.2).

Maximize a submodular function online subject to independence in ``l``
given matroids, O(l log^2 r)-competitive where ``r`` is the largest rank.

Structure of the algorithm (Section 3.3):

* only the *first half* of the stream is used for hiring, which keeps —
  in expectation — a large fraction of some near-optimal solution
  available for augmentation at every point;
* the analysis works against a refined optimum ``S*`` whose size is
  unknown, so the algorithm guesses ``k = |S*|`` uniformly from the
  log-scale pool ``{1, 2, 4, ..., 2^ceil(log2 r)}`` (the log r guess
  pool is one of the two log factors in the ratio);
* when the guess is small (``k = O(log r)``) hiring the single best
  item of the first half suffices; otherwise Algorithm 1 runs on the
  first half with every hire additionally required to keep the selection
  independent in all matroids.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Hashable, List, Optional, Sequence

from repro.errors import BudgetError
from repro.matroids.base import Matroid
from repro.rng import as_generator
from repro.secretary.classical import dynkin_threshold
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import (
    SecretaryResult,
    segmented_submodular_pick,
)

__all__ = ["matroid_submodular_secretary"]


def _independent_in_all(matroids: Sequence[Matroid], subset) -> bool:
    return all(m.is_independent(subset) for m in matroids)


def _best_singleton_first_half(stream: SecretaryStream, matroids: Sequence[Matroid]) -> SecretaryResult:
    """Classical secretary over the first half, restricted to non-loops."""
    half = stream.n // 2
    window = dynkin_threshold(half)
    best_seen = -math.inf
    picked: Optional[Hashable] = None
    for pos, a in enumerate(stream):
        if pos >= half:
            break
        if not _independent_in_all(matroids, frozenset({a})):
            continue  # loops can never be hired
        score = stream.oracle.value(frozenset({a}))
        if pos < window:
            best_seen = max(best_seen, score)
        elif picked is None and score >= best_seen and score > -math.inf:
            picked = a
            break
    selected = frozenset({picked}) if picked is not None else frozenset()
    return SecretaryResult(selected=selected, traces=[], strategy="best-singleton")


def matroid_submodular_secretary(
    stream: SecretaryStream,
    matroids: Sequence[Matroid],
    *,
    rng=None,
    k_estimate: Optional[int] = None,
) -> SecretaryResult:
    """Algorithm 3 over *stream* subject to all of *matroids*.

    Parameters
    ----------
    matroids:
        One or more independence systems over (a superset of) the
        stream's ground set; hires must stay independent in all of them.
    k_estimate:
        Override the random guess of ``|S*|`` (the benchmarks sweep it
        to expose the guess pool's effect; ``None`` = paper behaviour).
    """
    if not matroids:
        raise BudgetError("need at least one matroid; use Algorithm 1 for none")
    gen = as_generator(rng)
    r = max(1, max(m.rank() for m in matroids))
    log_r = max(1, math.ceil(math.log2(r))) if r > 1 else 1

    if k_estimate is not None:
        k = int(k_estimate)
        if k <= 0:
            raise BudgetError(f"k_estimate must be positive, got {k_estimate}")
    else:
        pool: List[int] = [2**i for i in range(log_r + 1)]
        k = int(pool[int(gen.integers(len(pool)))])

    if k <= max(1, log_r):
        # Small guess: the best single item is an O(log r) approximation
        # of f(S*) already; hire it with the classical rule.
        return _best_singleton_first_half(stream, matroids)

    half = stream.n // 2

    def can_take(current: FrozenSet[Hashable], a: Hashable) -> bool:
        return _independent_in_all(matroids, frozenset(current) | {a})

    result = segmented_submodular_pick(
        iter(stream), half, stream.oracle, k, can_take=can_take
    )
    return SecretaryResult(
        selected=result.selected, traces=result.traces, strategy=f"segments-k={k}"
    )
