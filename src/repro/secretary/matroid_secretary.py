"""Algorithm 3 — the submodular matroid secretary problem (Theorem 3.1.2).

Maximize a submodular function online subject to independence in ``l``
given matroids, O(l log^2 r)-competitive where ``r`` is the largest rank.

Structure of the algorithm (Section 3.3):

* only the *first half* of the stream is used for hiring, which keeps —
  in expectation — a large fraction of some near-optimal solution
  available for augmentation at every point;
* the analysis works against a refined optimum ``S*`` whose size is
  unknown, so the algorithm guesses ``k = |S*|`` uniformly from the
  log-scale pool ``{1, 2, 4, ..., 2^ceil(log2 r)}`` (the log r guess
  pool is one of the two log factors in the ratio);
* when the guess is small (``k = O(log r)``) hiring the single best
  item of the first half suffices; otherwise Algorithm 1 runs on the
  first half with every hire additionally required to keep the selection
  independent in all matroids.

The guess dispatch and both branches live in
:class:`repro.online.policies.MatroidSecretaryPolicy`; this wrapper
draws the guess and drives the policy over the stream.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import BudgetError
from repro.matroids.base import Matroid
from repro.online.driver import drive_stream
from repro.online.policies import MatroidSecretaryPolicy
from repro.online.results import SecretaryResult
from repro.rng import as_generator
from repro.secretary.stream import SecretaryStream

__all__ = ["matroid_submodular_secretary"]


def matroid_submodular_secretary(
    stream: SecretaryStream,
    matroids: Sequence[Matroid],
    *,
    rng=None,
    k_estimate: Optional[int] = None,
) -> SecretaryResult:
    """Algorithm 3 over *stream* subject to all of *matroids*.

    Parameters
    ----------
    matroids:
        One or more independence systems over (a superset of) the
        stream's ground set; hires must stay independent in all of them.
    k_estimate:
        Override the random guess of ``|S*|`` (the benchmarks sweep it
        to expose the guess pool's effect; ``None`` = paper behaviour).
    """
    if not matroids:
        raise BudgetError("need at least one matroid; use Algorithm 1 for none")
    gen = as_generator(rng)
    r = max(1, max(m.rank() for m in matroids))
    log_r = max(1, math.ceil(math.log2(r))) if r > 1 else 1

    if k_estimate is not None:
        k = int(k_estimate)
        if k <= 0:
            raise BudgetError(f"k_estimate must be positive, got {k_estimate}")
    else:
        pool: List[int] = [2**i for i in range(log_r + 1)]
        k = int(pool[int(gen.integers(len(pool)))])

    return drive_stream(stream, MatroidSecretaryPolicy(matroids, k))
