"""The classical secretary stopping rule (Dynkin 1963).

Observe the first ``t - 1`` applicants without hiring, then hire the
first whose quality beats everything seen so far.  With ``t ~ n/e`` the
best applicant is hired with probability approaching ``1/e`` — the
constant that powers every per-segment step of Algorithm 1.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Iterable, Optional, Sequence, Tuple

__all__ = ["dynkin_threshold", "classical_secretary", "best_among_stream"]


def dynkin_threshold(n: int) -> int:
    """The optimal observation-window length for *n* applicants.

    Returns the number of applicants to *observe only*.  We use the
    asymptotically optimal ``floor(n / e)`` (the paper's segments use
    ``l / e`` directly); for n = 0 or 1 the window is empty.
    """
    if n <= 1:
        return 0
    return int(math.floor(n / math.e))


def classical_secretary(
    arrivals: Sequence[Tuple[Hashable, float]],
    observe: Optional[int] = None,
) -> Optional[Hashable]:
    """Run the stopping rule over ``(element, score)`` arrivals.

    Parameters
    ----------
    arrivals:
        Already-ordered arrival sequence with each element's score as
        revealed at its interview.
    observe:
        Observation-window length; defaults to :func:`dynkin_threshold`.

    Returns the hired element, or ``None`` when the rule never fires
    (every post-window score is dominated by the window's best).
    """
    n = len(arrivals)
    if n == 0:
        return None
    window = dynkin_threshold(n) if observe is None else max(0, min(observe, n))
    best_seen = -math.inf
    for element, score in arrivals[:window]:
        best_seen = max(best_seen, score)
    for element, score in arrivals[window:]:
        if score > best_seen:
            return element
    return None


def best_among_stream(
    elements: Iterable[Hashable],
    score: Callable[[Hashable], float],
    n_hint: Optional[int] = None,
) -> Optional[Hashable]:
    """Streaming form: consumes an iterable, scoring on arrival.

    *n_hint* is the number of arrivals (the secretary model's known n);
    when omitted the iterable is materialised first — only acceptable
    for offline experimentation.
    """
    if n_hint is None:
        pool = [(e, score(e)) for e in elements]
        return classical_secretary(pool)
    window = dynkin_threshold(n_hint)
    best_seen = -math.inf
    for i, e in enumerate(elements):
        s = score(e)
        if i < window:
            best_seen = max(best_seen, s)
        elif s > best_seen:
            return e
    return None
