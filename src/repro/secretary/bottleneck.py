"""Section 3.6 — the bottleneck (min-value) secretary rule.

Objective: hire exactly k secretaries; the group's efficiency is the
*minimum* individual efficiency (not submodular — the tests exhibit a
violating witness for :class:`repro.core.functions.MinValueFunction`).

The paper's simple O(k)-competitive rule: interview the first ``1/k``
fraction without hiring; let ``a`` be the best efficiency observed; hire
the first k secretaries whose efficiency surpasses ``a``.  Theorem 3.6.1
shows this hires exactly the k best with probability at least
``1/e^{2k}`` (E11 measures that success probability directly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Mapping

from repro.errors import BudgetError
from repro.secretary.stream import SecretaryStream

__all__ = ["BottleneckResult", "bottleneck_secretary"]


@dataclass
class BottleneckResult:
    """Hired set plus whether it is exactly the top-k set."""

    selected: FrozenSet[Hashable]
    threshold: float
    hired_top_k: bool
    min_value: float


def bottleneck_secretary(
    stream: SecretaryStream,
    values: Mapping[Hashable, float],
    k: int,
) -> BottleneckResult:
    """Run the Section 3.6 rule; values are revealed at interview time.

    The efficiency of element ``a`` is ``values[a]`` (the stream's
    utility is not consulted — the bottleneck objective is determined by
    individual efficiencies, and the rule itself only compares scalars).
    """
    if k <= 0:
        raise BudgetError(f"k must be positive, got {k}")
    n = stream.n
    window = max(0, n // k) if k > 1 else max(0, int(math.floor(n / math.e)))
    # For k = 1 this degenerates to the classical rule; for k >= 2 the
    # paper's "first 1/k fraction" observation window applies.
    if k > 1:
        window = max(1, n // k) if n >= k else 0

    threshold = -math.inf
    selected: List[Hashable] = []
    for pos, a in enumerate(stream):
        v = float(values[a])
        if pos < window:
            threshold = max(threshold, v)
        elif len(selected) < k and v > threshold:
            selected.append(a)

    chosen = frozenset(selected)
    top_k = set(sorted(values, key=lambda e: (-values[e], repr(e)))[:k])
    hired_top_k = len(chosen) == k and chosen == frozenset(top_k)
    min_value = min((values[a] for a in chosen), default=0.0)
    return BottleneckResult(
        selected=chosen,
        threshold=threshold,
        hired_top_k=hired_top_k,
        min_value=min_value if len(chosen) == k else 0.0,
    )
