"""Section 3.6 — the bottleneck (min-value) secretary rule.

Objective: hire exactly k secretaries; the group's efficiency is the
*minimum* individual efficiency (not submodular — the tests exhibit a
violating witness for :class:`repro.core.functions.MinValueFunction`).

The paper's simple O(k)-competitive rule
(:class:`repro.online.policies.BottleneckPolicy`): interview the first
``1/k`` fraction without hiring; let ``a`` be the best efficiency
observed; hire the first k secretaries whose efficiency surpasses
``a``.  Theorem 3.6.1 shows this hires exactly the k best with
probability at least ``1/e^{2k}`` (E11 measures that success
probability directly).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.online.driver import drive_stream
from repro.online.policies import BottleneckPolicy
from repro.online.results import BottleneckResult
from repro.secretary.stream import SecretaryStream

__all__ = ["BottleneckResult", "bottleneck_secretary"]


def bottleneck_secretary(
    stream: SecretaryStream,
    values: Mapping[Hashable, float],
    k: int,
) -> BottleneckResult:
    """Run the Section 3.6 rule; values are revealed at interview time.

    The efficiency of element ``a`` is ``values[a]`` (the stream's
    utility is not consulted — the bottleneck objective is determined by
    individual efficiencies, and the rule itself only compares scalars).
    """
    return drive_stream(stream, BottleneckPolicy(values, k))
