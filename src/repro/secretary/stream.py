"""Random-arrival streams and the arrival-restricted value oracle.

Section 3.2.1: "the oracle answers the query regarding the efficiency of
a set S' only if all the secretaries in S' have already arrived and been
interviewed."  :class:`ArrivalOracle` enforces exactly that contract —
querying an unseen element raises :class:`repro.errors.OracleError` —
so any online algorithm written against it provably never peeks at the
future.  The offline benchmark code uses the *unrestricted* base
function to compute optima.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.kernels import IncrementalEvaluator
from repro.core.submodular import SetFunction
from repro.errors import OracleError
from repro.rng import as_generator, random_permutation

__all__ = ["SecretaryStream", "ArrivalOracle"]


class _ArrivalEvaluator(IncrementalEvaluator):
    """Kernel evaluator view that enforces the no-peeking contract.

    Every batched query is checked against the owning oracle's arrived
    set before it reaches the kernel, so online algorithms written
    against the incremental API keep the Section 3.2.1 guarantee: a
    query about a not-yet-interviewed secretary raises
    :class:`~repro.errors.OracleError` exactly as a ``value`` call
    would.
    """

    fast = True

    def __init__(self, inner: IncrementalEvaluator, owner: "ArrivalOracle"):
        self._inner = inner
        self._owner = owner
        self.fn = owner
        self.modular = inner.modular

    def _check(self, elements: Iterable[Hashable]) -> None:
        hidden = [e for e in elements if e not in self._owner._arrived]
        if hidden:
            raise OracleError(
                f"oracle queried about elements that have not arrived: "
                f"{sorted(map(repr, hidden))[:5]}"
            )

    @property
    def selection(self) -> FrozenSet[Hashable]:
        return self._inner.selection

    @property
    def current_value(self) -> float:
        return self._inner.current_value

    def reset(self, selection: Iterable[Hashable] = ()) -> None:
        selection = list(selection)
        self._check(selection)
        self._inner.reset(selection)

    def add(self, element: Hashable) -> float:
        self._check([element])
        return self._inner.add(element)

    def add_set(self, items: Iterable[Hashable]) -> float:
        items = list(items)
        self._check(items)
        return self._inner.add_set(items)

    def advance(self, element: Hashable, new_value: float) -> None:
        self._check([element])
        self._inner.advance(element, new_value)

    def gains(self, candidates: Sequence[Hashable]) -> np.ndarray:
        self._check(candidates)
        return self._inner.gains(candidates)

    def gain1(self, element: Hashable) -> float:
        self._check([element])
        return self._inner.gain1(element)

    def union_value1(self, element: Hashable) -> float:
        self._check([element])
        return self._inner.union_value1(element)

    def union_values(self, candidates: Sequence[Hashable]) -> np.ndarray:
        self._check(candidates)
        return self._inner.union_values(candidates)

    def set_gains(self, candidate_sets) -> np.ndarray:
        for a in candidate_sets:
            self._check(a)
        return self._inner.set_gains(candidate_sets)


class ArrivalOracle(SetFunction):
    """Value oracle restricted to already-arrived elements."""

    def __init__(self, base: SetFunction):
        self.base = base
        self._arrived: set = set()

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self.base.ground_set

    @property
    def arrived(self) -> FrozenSet[Hashable]:
        return frozenset(self._arrived)

    def reveal(self, element: Hashable) -> None:
        """Mark *element* as interviewed (called by the stream only)."""
        self._arrived.add(element)

    def value(self, subset: FrozenSet[Hashable]) -> float:
        subset = frozenset(subset)
        hidden = subset - self._arrived
        if hidden:
            raise OracleError(
                f"oracle queried about elements that have not arrived: "
                f"{sorted(map(repr, hidden))[:5]}"
            )
        return self.base.value(subset)

    def fast_evaluator(self, backend=None):
        # A kernel below gets the arrival-checked view; otherwise
        # ``None`` so the generic fallback routes through self.value,
        # which enforces the arrival restriction (and any wrapped
        # counting) per query.  ``backend`` passes through to the base.
        backend = self.resolve_backend_arg(backend)
        inner = getattr(self.base, "fast_evaluator", lambda backend=None: None)(backend)
        if inner is not None:
            return _ArrivalEvaluator(inner, self)
        return None


class SecretaryStream:
    """A uniformly random arrival order over a utility's ground set.

    Iterate to receive elements one by one; each arrival is revealed to
    the associated :class:`ArrivalOracle` before being handed to the
    algorithm.  The stream also records the arrival order so analyses
    can condition on it.
    """

    def __init__(self, utility: SetFunction, rng=None, order: Sequence[Hashable] | None = None):
        self.utility = utility
        gen = as_generator(rng)
        if order is not None:
            order = list(order)
            if frozenset(order) != utility.ground_set:
                raise OracleError("explicit order must enumerate the ground set exactly")
            self.order: List[Hashable] = order
        else:
            self.order = random_permutation(sorted(utility.ground_set, key=repr), gen)
        self.oracle = ArrivalOracle(utility)
        self._position = 0

    def __len__(self) -> int:
        return len(self.order)

    @property
    def n(self) -> int:
        return len(self.order)

    def __iter__(self) -> Iterator[Hashable]:
        while self._position < len(self.order):
            element = self.order[self._position]
            self._position += 1
            self.oracle.reveal(element)
            yield element

    def arrivals(self) -> Iterator[tuple[int, Hashable]]:
        """Enumerate arrivals as (0-based index, element) pairs."""
        for i, element in enumerate(self):
            yield i, element

    def peek_remaining_count(self) -> int:
        """How many elements have not arrived yet (n is public knowledge)."""
        return len(self.order) - self._position
