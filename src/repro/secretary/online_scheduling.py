"""The online scheduling problem that motivates Chapter 3.

From the introduction of the online setting: "Assume that you have a set
of tasks to do, and the processors arrive one by one.  You want to pick
a number of processors (according to your budget) to do the tasks ...
We can see the processors as some secretaries."

This module is the bridge between the two halves of the paper: the
utility of a set of processors is the **matching function of Section
2.2** — the number (or value) of jobs schedulable on the awake slots
those processors contribute — which Lemmas 2.2.2/2.3.2 prove
submodular, so Algorithm 1 applies verbatim and Theorem 3.1.1's
1/(7e)-competitiveness carries over.

:class:`ProcessorMarket` packages the instance: each candidate
processor arrives with its own awake window(s); hiring it makes those
slots available.  :func:`online_processor_selection` runs the monotone
submodular secretary algorithm over processor arrivals and returns both
the hired processors and the schedule they support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Sequence, Tuple

from repro.core.submodular import SetFunction
from repro.errors import InvalidInstanceError
from repro.matching.graph import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.weighted import max_weight_matching, weighted_matching_value
from repro.online.arrivals import ArrivalSchedule, build_arrival_schedule
from repro.online.driver import OnlineRun
from repro.online.policies import SegmentedSubmodularPolicy
from repro.online.results import SecretaryResult
from repro.rng import as_generator
from repro.scheduling.instance import Job
from repro.scheduling.intervals import AwakeInterval

__all__ = ["ProcessorMarket", "ProcessorUtility", "online_processor_selection"]


@dataclass(frozen=True)
class ProcessorMarket:
    """Candidate processors, each offering awake intervals, plus the jobs.

    Parameters
    ----------
    offers:
        Mapping from processor id to the awake interval(s) hiring it
        provides.  Each interval's ``processor`` field must equal the
        offer's key (one physical machine per candidate).
    jobs:
        Unit jobs with (processor, time) valid sets, referring to the
        candidate processors.
    """

    offers: Mapping[Hashable, Tuple[AwakeInterval, ...]]
    jobs: Tuple[Job, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "offers", {k: tuple(v) for k, v in self.offers.items()}
        )
        object.__setattr__(self, "jobs", tuple(self.jobs))
        for proc, intervals in self.offers.items():
            for iv in intervals:
                if iv.processor != proc:
                    raise InvalidInstanceError(
                        f"offer {proc!r} contains interval on {iv.processor!r}"
                    )
        known = set(self.offers)
        for job in self.jobs:
            for p, _ in job.slots:
                if p not in known:
                    raise InvalidInstanceError(
                        f"job {job.id!r} references unknown processor {p!r}"
                    )

    def slots_of(self, processor: Hashable) -> FrozenSet[Tuple[Hashable, int]]:
        out: set = set()
        for iv in self.offers[processor]:
            out |= iv.slots()
        return frozenset(out)

    def graph(self) -> BipartiteGraph:
        slots: set = set()
        for proc in self.offers:
            slots |= self.slots_of(proc)
        useful = slots & {s for job in self.jobs for s in job.slots}
        edges = [
            (slot, job.id) for job in self.jobs for slot in job.slots if slot in useful
        ]
        return BipartiteGraph(useful, [j.id for j in self.jobs], edges)


class ProcessorUtility(SetFunction):
    """Utility of a processor set = jobs (or job value) schedulable on it.

    The composition F(processors) = matching(slots(processors)); a
    monotone composition of a submodular function with a union of fixed
    slot sets, hence itself monotone submodular — this is exactly the
    structure Lemma 2.1.1 handles and what makes Algorithm 1 applicable.
    """

    def __init__(self, market: ProcessorMarket, weighted: bool = False):
        self.market = market
        self._graph = market.graph()
        self.weighted = weighted
        self._values = {job.id: job.value for job in market.jobs}

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return frozenset(self.market.offers)

    def value(self, subset: FrozenSet[Hashable]) -> float:
        slots: set = set()
        for proc in subset:
            slots |= self.market.slots_of(proc)
        allowed = frozenset(slots) & self._graph.left
        if self.weighted:
            return weighted_matching_value(self._graph, self._values, allowed)
        return float(len(hopcroft_karp(self._graph, allowed)))


@dataclass
class OnlineSelectionResult:
    """Hired processors + the schedule they support."""

    hired: FrozenSet[Hashable]
    scheduled_jobs: Dict[Hashable, Tuple[Hashable, int]]
    utility: float
    secretary: SecretaryResult


def online_processor_selection(
    market: ProcessorMarket,
    k: int,
    *,
    weighted: bool = False,
    rng=None,
    order: Optional[Sequence[Hashable]] = None,
    process: str = "uniform",
    process_params: Optional[dict] = None,
) -> OnlineSelectionResult:
    """Hire up to *k* processors online, maximizing schedulable jobs.

    Processors arrive in uniformly random order (or the explicit
    *order*, or any registered arrival *process* — bursty processor
    markets batch their offers); decisions are irrevocable.  By Theorem
    3.1.1 the expected number of schedulable jobs is at least a 1/(7e)
    fraction of the best k-processor choice in hindsight
    (value-weighted when ``weighted``).
    """
    utility = ProcessorUtility(market, weighted=weighted)
    if order is not None:
        order = list(order)
        if frozenset(order) != utility.ground_set:
            raise InvalidInstanceError(
                "explicit order must enumerate the processor offers exactly"
            )
        schedule = ArrivalSchedule(
            process="explicit", seed=None, order=order,
            batch_sizes=[1] * len(order),
        )
    else:
        schedule = build_arrival_schedule(
            process, utility, as_generator(rng), **dict(process_params or {})
        )
    run = OnlineRun(utility, schedule, SegmentedSubmodularPolicy(k))
    result = run.run().result()

    slots: set = set()
    for proc in result.selected:
        slots |= market.slots_of(proc)
    allowed = frozenset(slots) & utility._graph.left
    if weighted:
        matching = max_weight_matching(utility._graph, utility._values, allowed)
    else:
        matching = hopcroft_karp(utility._graph, allowed)
    assignment = {job: slot for slot, job in matching.left_to_right.items()}
    return OnlineSelectionResult(
        hired=result.selected,
        scheduled_jobs=assignment,
        utility=utility.value(result.selected),
        secretary=result,
    )
