"""Algorithms 1 and 2 — the (non-)monotone submodular secretary problem.

Algorithm 1 (monotone, Theorem 3.1.1, competitive ratio 1/(7e)):
partition the arrival stream into ``k`` equal segments and run one
classical-secretary subroutine per segment on the *marginal* value
``g_i(a) = f(T_{i-1} + a) - f(T_{i-1})``: observe the first ``l/e``
arrivals of the segment, record the best marginal seen (clamped below by
the current value — the algorithm's first `if`), then take the first
later arrival matching it.  At most one hire per segment, k hires total.

Algorithm 2 (non-monotone, 8e^2-competitive): split the stream into two
halves and run Algorithm 1 on a uniformly random half.  The analysis
(Lemma 3.2.7) needs the two halves' candidate sets to be disjoint, which
the coin flip provides.

The segment engine is written as a strict single pass over arrivals so
it composes with :class:`repro.secretary.stream.ArrivalOracle`'s
no-peeking contract: every oracle query involves only elements already
interviewed, and the test suite asserts that property by construction.
Both algorithms accept an optional feasibility predicate
``can_take(T, a)`` so the matroid and knapsack variants (Algorithm 3 /
Section 3.4) can reuse the machinery — they differ only in which hires
are permitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.core.kernels import evaluator_for
from repro.errors import BudgetError
from repro.rng import as_generator
from repro.secretary.stream import SecretaryStream

__all__ = [
    "SecretaryResult",
    "SegmentTrace",
    "segmented_submodular_pick",
    "monotone_submodular_secretary",
    "nonmonotone_submodular_secretary",
]

CanTake = Callable[[FrozenSet[Hashable], Hashable], bool]


@dataclass(frozen=True)
class SegmentTrace:
    """What happened inside one segment (for diagnostics/tests)."""

    segment: int
    start: int
    observe_until: int
    end: int
    threshold: float
    picked: Optional[Hashable]
    gain: float


@dataclass
class SecretaryResult:
    """Outcome of an online run: the hired set plus per-segment traces."""

    selected: FrozenSet[Hashable]
    traces: List[SegmentTrace] = field(default_factory=list)
    strategy: str = "segments"

    @property
    def hires(self) -> int:
        return len(self.selected)


def _segment_bounds(n: int, k: int) -> List[Tuple[int, int]]:
    """Split positions ``0..n-1`` into k near-equal contiguous segments.

    The paper pads with dummy secretaries to make ``k | n``; distributing
    the remainder across segments is the equivalent trick without
    simulating dummies (each real arrival keeps a uniform position).
    Segments may be empty when ``k > n``.
    """
    return [((j * n) // k, ((j + 1) * n) // k) for j in range(k)]


def segmented_submodular_pick(
    arrivals: Iterable[Hashable],
    n: int,
    oracle,
    k: int,
    *,
    can_take: Optional[CanTake] = None,
    monotone_clamp: bool = True,
    position_offset: int = 0,
) -> SecretaryResult:
    """Core of Algorithm 1, one strict pass over *arrivals*.

    Parameters
    ----------
    arrivals:
        The arrival iterator (elements are interviewed as they are
        consumed; with an :class:`ArrivalOracle`-backed stream, queries
        about later arrivals would raise).
    n:
        Number of arrivals the segment layout is computed for (the
        secretary model's publicly known n).
    oracle:
        Value oracle; only queried on sets of already-consumed elements.
    k:
        Maximum number of hires (= number of segments).
    can_take:
        Optional feasibility predicate (matroid/knapsack hooks).
    monotone_clamp:
        Implements ``if a_i < f(T_{i-1}): a_i := f(T_{i-1})``, which for
        non-monotone ``f`` keeps the running value non-decreasing.
    position_offset:
        Where this window starts inside a larger stream (trace labels
        only).
    """
    if k <= 0:
        raise BudgetError(f"k must be positive, got {k}")
    bounds = _segment_bounds(n, k)
    observe_len = {j: int(math.floor((e - s) / math.e)) for j, (s, e) in enumerate(bounds)}

    selected: set = set()
    traces: List[SegmentTrace] = []
    # All per-arrival queries F(T_{i-1} + a) go through an incremental
    # evaluator pinned at the hired set: for the kernel-backed families
    # each query is O(candidate) state work instead of a from-scratch
    # union evaluation, and for everything else the naive fallback
    # evaluates (and counts) exactly the oracle calls the original
    # one-query-per-arrival scan made.  The evaluator enforces the
    # Section 3.2.1 no-peeking contract when the oracle does.
    evaluator = evaluator_for(oracle)
    current_value = evaluator.current_value
    base = frozenset()

    seg = 0
    threshold = -math.inf
    picked_this_segment: Optional[Hashable] = None
    best_gain = 0.0

    def close_segment(j: int) -> None:
        s, e = bounds[j]
        traces.append(
            SegmentTrace(
                segment=j,
                start=position_offset + s,
                observe_until=position_offset + s + observe_len[j],
                end=position_offset + e,
                threshold=threshold,
                picked=picked_this_segment,
                gain=best_gain,
            )
        )

    for pos, a in enumerate(arrivals):
        if pos >= n:
            break
        # Advance past finished (possibly empty) segments.
        while seg < k and pos >= bounds[seg][1]:
            close_segment(seg)
            seg += 1
            threshold = -math.inf
            picked_this_segment = None
            best_gain = 0.0
            base = frozenset(selected)
        if seg >= k:
            break
        start, end = bounds[seg]
        in_window = pos - start < observe_len[seg]
        if in_window:
            threshold = max(threshold, evaluator.union_value1(a))
            continue
        if picked_this_segment is not None:
            continue  # one hire per segment
        effective = threshold
        if monotone_clamp and effective < current_value:
            effective = current_value
        if can_take is not None and not can_take(base, a):
            continue
        candidate = evaluator.union_value1(a)
        if candidate >= effective:
            picked_this_segment = a
            best_gain = candidate - current_value
            selected.add(a)
            evaluator.advance(a, candidate)
            current_value = candidate

    while seg < k:
        close_segment(seg)
        seg += 1
        threshold = -math.inf
        picked_this_segment = None
        best_gain = 0.0
        base = frozenset(selected)

    return SecretaryResult(selected=frozenset(selected), traces=traces)


def monotone_submodular_secretary(
    stream: SecretaryStream,
    k: int,
    *,
    can_take: Optional[CanTake] = None,
) -> SecretaryResult:
    """Algorithm 1: hire at most k, 1/(7e)-competitive for monotone f."""
    return segmented_submodular_pick(iter(stream), stream.n, stream.oracle, k, can_take=can_take)


def nonmonotone_submodular_secretary(
    stream: SecretaryStream,
    k: int,
    rng=None,
) -> SecretaryResult:
    """Algorithm 2: random-half trick, 8e^2-competitive for any submodular f.

    With probability 1/2 runs Algorithm 1 on the first half of the
    stream (ignoring the second entirely); otherwise skips the first
    half and runs on the second.
    """
    gen = as_generator(rng)
    use_first_half = bool(gen.random() < 0.5)
    half = stream.n // 2
    it = iter(stream)
    if use_first_half:
        result = segmented_submodular_pick(it, half, stream.oracle, k)
        strategy = "first-half"
    else:
        consumed = 0
        for _ in it:
            consumed += 1
            if consumed >= half:
                break
        result = segmented_submodular_pick(
            it, stream.n - half, stream.oracle, k, position_offset=half
        )
        strategy = "second-half"
    return SecretaryResult(selected=result.selected, traces=result.traces, strategy=strategy)
