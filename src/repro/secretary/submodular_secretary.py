"""Algorithms 1 and 2 — the (non-)monotone submodular secretary problem.

Algorithm 1 (monotone, Theorem 3.1.1, competitive ratio 1/(7e)):
partition the arrival stream into ``k`` equal segments and run one
classical-secretary subroutine per segment on the *marginal* value
``g_i(a) = f(T_{i-1} + a) - f(T_{i-1})``.  Algorithm 2 (non-monotone,
8e^2-competitive): split the stream into two halves and run Algorithm 1
on a uniformly random half.

The decision logic lives in
:class:`repro.online.policies.SegmentedSubmodularPolicy` — an explicit
state machine the unified runtime can drive over any arrival process,
suspend, and resume.  These wrappers keep the paper-facing API: they
configure the policy (including Algorithm 2's coin) and drive it over a
:class:`~repro.secretary.stream.SecretaryStream` one arrival at a time,
which preserves the historical oracle-query pattern bit-for-bit.
Both algorithms accept an optional feasibility predicate ``can_take(T,
a)`` so the matroid and knapsack variants (Algorithm 3 / Section 3.4)
can reuse the machinery.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.online.driver import drive_stream
from repro.online.policies import (
    CanTake,
    SegmentedSubmodularPolicy,
    nonmonotone_half_policy,
)
from repro.online.results import SecretaryResult, SegmentTrace
from repro.rng import as_generator
from repro.secretary.stream import SecretaryStream

__all__ = [
    "SecretaryResult",
    "SegmentTrace",
    "segmented_submodular_pick",
    "monotone_submodular_secretary",
    "nonmonotone_submodular_secretary",
]


def segmented_submodular_pick(
    arrivals: Iterable[Hashable],
    n: int,
    oracle,
    k: int,
    *,
    can_take: Optional[CanTake] = None,
    monotone_clamp: bool = True,
    position_offset: int = 0,
) -> SecretaryResult:
    """Core of Algorithm 1, one strict pass over *arrivals*.

    Parameters
    ----------
    arrivals:
        The arrival iterator (elements are interviewed as they are
        consumed; with an :class:`ArrivalOracle`-backed stream, queries
        about later arrivals would raise).
    n:
        Number of arrivals the segment layout is computed for (the
        secretary model's publicly known n).
    oracle:
        Value oracle; only queried on sets of already-consumed elements.
    k:
        Maximum number of hires (= number of segments).
    can_take:
        Optional feasibility predicate (matroid/knapsack hooks).
    monotone_clamp:
        Implements ``if a_i < f(T_{i-1}): a_i := f(T_{i-1})``, which for
        non-monotone ``f`` keeps the running value non-decreasing.
    position_offset:
        Where this window starts inside a larger stream (trace labels
        only).
    """
    policy = SegmentedSubmodularPolicy(
        k,
        monotone_clamp=monotone_clamp,
        window_n=n,
        position_offset=position_offset,
        can_take=can_take,
    )
    policy.bind(oracle, n)
    for pos, a in enumerate(arrivals):
        policy.observe(pos, a)
        if policy.done:
            break
    return policy.finish()


def monotone_submodular_secretary(
    stream: SecretaryStream,
    k: int,
    *,
    can_take: Optional[CanTake] = None,
) -> SecretaryResult:
    """Algorithm 1: hire at most k, 1/(7e)-competitive for monotone f."""
    return drive_stream(
        stream, SegmentedSubmodularPolicy(k, window_n=stream.n, can_take=can_take)
    )


def nonmonotone_submodular_secretary(
    stream: SecretaryStream,
    k: int,
    rng=None,
) -> SecretaryResult:
    """Algorithm 2: random-half trick, 8e^2-competitive for any submodular f.

    With probability 1/2 runs Algorithm 1 on the first half of the
    stream (ignoring the second entirely); otherwise skips the first
    half and runs on the second.
    """
    gen = as_generator(rng)
    use_first_half = bool(gen.random() < 0.5)
    policy = nonmonotone_half_policy(stream.n, k, use_first_half)
    return drive_stream(stream, policy)
