"""Naive online baselines for the secretary experiments.

None of these carries a guarantee; they bracket the paper's algorithms
from below and give the E6 table its "who wins" comparison:

* :func:`first_k_baseline` — hire the first k arrivals (no observation);
* :func:`random_k_baseline` — hire k uniformly random arrivals (decided
  upfront by position, so still a legal online rule);
* :func:`greedy_no_observation_baseline` — hire any arrival with a
  positive marginal until k hires (greedy with a zero threshold: fills
  early with mediocre candidates, the failure mode the observation
  windows exist to avoid).
"""

from __future__ import annotations


from repro.errors import BudgetError
from repro.rng import as_generator
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import SecretaryResult

__all__ = [
    "first_k_baseline",
    "random_k_baseline",
    "greedy_no_observation_baseline",
]


def _check_k(k: int) -> None:
    if k <= 0:
        raise BudgetError(f"k must be positive, got {k}")


def first_k_baseline(stream: SecretaryStream, k: int) -> SecretaryResult:
    """Hire the first k arrivals unconditionally."""
    _check_k(k)
    selected: set = set()
    for pos, a in enumerate(stream):
        if pos >= k:
            break
        selected.add(a)
    return SecretaryResult(selected=frozenset(selected), traces=[], strategy="first-k")


def random_k_baseline(stream: SecretaryStream, k: int, rng=None) -> SecretaryResult:
    """Hire k positions chosen uniformly in advance.

    Equivalent to a uniformly random k-subset of the ground set (the
    arrival order is itself uniform), so its expected value is the
    Lemma 3.2.3 random-sample benchmark ``(k/n) f(R)``-ish — a useful
    reference line.
    """
    _check_k(k)
    gen = as_generator(rng)
    n = stream.n
    take = set(int(i) for i in gen.choice(n, size=min(k, n), replace=False))
    selected: set = set()
    for pos, a in enumerate(stream):
        if pos in take:
            selected.add(a)
    return SecretaryResult(selected=frozenset(selected), traces=[], strategy="random-k")


def greedy_no_observation_baseline(stream: SecretaryStream, k: int) -> SecretaryResult:
    """Hire greedily on any positive marginal, no observation window."""
    _check_k(k)
    selected: set = set()
    value = stream.oracle.value(frozenset())
    for a in stream:
        if len(selected) >= k:
            break
        candidate = stream.oracle.value(frozenset(selected | {a}))
        if candidate > value + 1e-12:
            selected.add(a)
            value = candidate
    return SecretaryResult(
        selected=frozenset(selected), traces=[], strategy="greedy-no-obs"
    )
