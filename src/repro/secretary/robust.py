"""The oblivious "robust" top-k secretary of the conclusions (§3.6).

The paper sketches (and defers to an appendix) a simple algorithm that
hires k candidates and simultaneously approximates, for *every*
non-increasing weight vector gamma, the objective

    sum_i gamma_i * a_i      (a_1 >= a_2 >= ... the hired values, sorted)

without knowing gamma — i.e., it is a good team for "best single
member", "sum of members", and everything in between at once.

The implementation follows the natural segment strategy the thesis's
other algorithms are built from: split the stream into k near-equal
segments and run an independent classical 1/e rule *on raw values*
inside each (:class:`repro.online.policies.RobustTopKPolicy`).  Each of
the top-k elements in hindsight lands alone in its segment with
constant probability and is then hired with probability >= 1/e, so
every prefix {top-1, ..., top-j} is covered in expectation up to a
constant — which is exactly the property that makes the approximation
oblivious to gamma (a non-increasing gamma objective is a non-negative
mixture of prefix sums).
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Mapping, Sequence

from repro.errors import BudgetError
from repro.online.driver import drive_stream
from repro.online.policies import RobustTopKPolicy
from repro.online.results import RobustResult
from repro.secretary.stream import SecretaryStream

__all__ = ["RobustResult", "robust_topk_secretary", "gamma_objective"]


def gamma_objective(
    values: Mapping[Hashable, float],
    selected: FrozenSet[Hashable],
    gamma: Sequence[float],
) -> float:
    """Evaluate sum_i gamma_i * (i-th largest selected value).

    Validates that *gamma* is non-negative and non-increasing — the
    class of objectives the oblivious guarantee covers.
    """
    g = [float(x) for x in gamma]
    if any(x < 0 for x in g):
        raise BudgetError("gamma must be non-negative")
    if any(g[i] < g[i + 1] for i in range(len(g) - 1)):
        raise BudgetError("gamma must be non-increasing")
    ranked = sorted((values[e] for e in selected), reverse=True)
    return float(sum(w * v for w, v in zip(g, ranked)))


def robust_topk_secretary(
    stream: SecretaryStream,
    values: Mapping[Hashable, float],
    k: int,
) -> RobustResult:
    """Hire <= k candidates, oblivious to the eventual gamma weighting.

    One classical-secretary subroutine per segment, thresholding on the
    candidate's raw value within the segment.
    """
    return drive_stream(stream, RobustTopKPolicy(values, k))
