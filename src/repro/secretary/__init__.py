"""Online (secretary) algorithms — Chapter 3.

The online side of the paper: processors/secretaries arrive in uniformly
random order and must be irrevocably accepted or rejected.  Implements

* the classical 1/e stopping rule (Dynkin) used as a subroutine,
* Algorithm 1 — the monotone submodular secretary algorithm
  (1/(7e)-competitive, Theorem 3.1.1),
* Algorithm 2 — the non-monotone extension (8e^2-competitive),
* Algorithm 3 — the (multi-)matroid version (O(l log^2 r), Thm 3.1.2),
* the knapsack-constrained version (O(l), Theorem 3.1.3),
* the subadditive secretary problem: the O(sqrt(n)) algorithm and the
  hidden-set hard function behind the Omega(sqrt(n)) lower bound
  (Theorem 3.5.1),
* the bottleneck (min-value) rule of Section 3.6.

All of them consume a :class:`repro.secretary.stream.SecretaryStream`,
whose oracle refuses queries about not-yet-arrived elements — the
paper's marriage of the value-oracle model with online arrival.
"""

from repro.secretary.stream import ArrivalOracle, SecretaryStream
from repro.secretary.classical import classical_secretary, dynkin_threshold
from repro.secretary.submodular_secretary import (
    monotone_submodular_secretary,
    nonmonotone_submodular_secretary,
)
from repro.secretary.matroid_secretary import matroid_submodular_secretary
from repro.secretary.knapsack_secretary import (
    knapsack_submodular_secretary,
    reduce_knapsacks_to_one,
)
from repro.secretary.subadditive import (
    HiddenSetFunction,
    subadditive_secretary,
)
from repro.secretary.bottleneck import bottleneck_secretary
from repro.secretary.online_scheduling import (
    ProcessorMarket,
    ProcessorUtility,
    online_processor_selection,
)
from repro.secretary.robust import gamma_objective, robust_topk_secretary
from repro.secretary.baselines import (
    first_k_baseline,
    greedy_no_observation_baseline,
    random_k_baseline,
)

__all__ = [
    "first_k_baseline",
    "random_k_baseline",
    "greedy_no_observation_baseline",
    "ProcessorMarket",
    "ProcessorUtility",
    "online_processor_selection",
    "robust_topk_secretary",
    "gamma_objective",
    "ArrivalOracle",
    "SecretaryStream",
    "classical_secretary",
    "dynkin_threshold",
    "monotone_submodular_secretary",
    "nonmonotone_submodular_secretary",
    "matroid_submodular_secretary",
    "knapsack_submodular_secretary",
    "reduce_knapsacks_to_one",
    "HiddenSetFunction",
    "subadditive_secretary",
    "bottleneck_secretary",
]
