"""Section 3.4 — the submodular secretary problem with knapsack constraints.

Two pieces, mirroring the paper exactly:

* :func:`reduce_knapsacks_to_one` — Lemma 3.4.1's reduction: scale every
  knapsack to capacity 1 and give item ``j`` the single weight
  ``w'_j = max_i w_ij / C_i``.  Any feasible set of the reduced
  instance is feasible originally, and the reduction loses at most a
  ``4l`` factor of value, giving Theorem 3.1.3's O(l) ratio.

* :func:`knapsack_submodular_secretary` — the single-knapsack online
  rule: flip a coin; on heads try to hire the single most valuable
  feasible item (classical rule); on tails observe the first half
  without hiring, estimate OPT offline on it (density greedy + best
  singleton — a constant-factor estimate standing in for the Lee et al.
  offline subroutine the paper cites), then hire any second-half item
  whose marginal-value density beats ``OPT_hat / 6``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Sequence

from repro.core.submodular import SetFunction
from repro.errors import BudgetError, InvalidInstanceError
from repro.rng import as_generator
from repro.secretary.classical import dynkin_threshold
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import SecretaryResult

__all__ = ["reduce_knapsacks_to_one", "knapsack_submodular_secretary", "offline_knapsack_estimate"]


def reduce_knapsacks_to_one(
    weights: Mapping[Hashable, Sequence[float]],
    capacities: Sequence[float],
) -> Dict[Hashable, float]:
    """Collapse ``l`` knapsacks into one of capacity 1 (Lemma 3.4.1).

    ``weights[j][i]`` is item j's weight in knapsack i.  Returns the
    reduced per-item weight ``w'_j = max_i w_ij / C_i``.  The reduction
    is online-safe: each item's reduced weight depends only on its own
    weights, so it can be computed at arrival time.
    """
    caps = [float(c) for c in capacities]
    if not caps or any(c <= 0 for c in caps):
        raise InvalidInstanceError(f"capacities must be positive, got {caps}")
    reduced: Dict[Hashable, float] = {}
    for j, ws in weights.items():
        ws = [float(w) for w in ws]
        if len(ws) != len(caps):
            raise InvalidInstanceError(
                f"item {j!r} has {len(ws)} weights for {len(caps)} knapsacks"
            )
        if any(w < 0 for w in ws):
            raise InvalidInstanceError(f"item {j!r} has negative weight")
        reduced[j] = max(w / c for w, c in zip(ws, caps))
    return reduced


def offline_knapsack_estimate(
    utility: SetFunction,
    weights: Mapping[Hashable, float],
    items: Sequence[Hashable],
    capacity: float = 1.0,
) -> float:
    """Constant-factor offline estimate of the knapsack optimum on *items*.

    max(best feasible singleton, density-greedy value): the classical
    analysis gives value >= OPT/3 for monotone submodular utilities on a
    knapsack, which is all the online rule needs ("a constant factor
    estimation of OPT by looking at the first half").
    """
    feasible = [j for j in items if weights.get(j, math.inf) <= capacity]
    if not feasible:
        return 0.0
    best_single = max(utility.value(frozenset({j})) for j in feasible)

    chosen: set = set()
    load = 0.0
    value = utility.value(frozenset())
    # Scan in the given item order: density ties then break by arrival
    # position, not by set-iteration (hash) order, keeping the estimate
    # reproducible across processes.
    remaining = list(feasible)
    while remaining:
        best_j, best_density = None, 0.0
        for j in remaining:
            w = weights[j]
            if load + w > capacity:
                continue
            gain = utility.value(frozenset(chosen | {j})) - value
            density = gain / w if w > 0 else (math.inf if gain > 0 else 0.0)
            if density > best_density:
                best_j, best_density = j, density
        if best_j is None:
            break
        chosen.add(best_j)
        load += weights[best_j]
        value = utility.value(frozenset(chosen))
        remaining.remove(best_j)
    return max(best_single, value)


def knapsack_submodular_secretary(
    stream: SecretaryStream,
    weights: Mapping[Hashable, Sequence[float]] | Mapping[Hashable, float],
    capacities: Sequence[float] | float = 1.0,
    *,
    rng=None,
    density_divisor: float = 6.0,
) -> SecretaryResult:
    """Theorem 3.1.3's O(l)-competitive algorithm.

    Accepts multi-knapsack inputs (``weights[j]`` a vector with
    *capacities* a matching sequence) or pre-reduced single-knapsack
    inputs (``weights[j]`` a float, *capacities* a float).
    """
    gen = as_generator(rng)

    if isinstance(capacities, (int, float)):
        w1: Dict[Hashable, float] = {}
        for j, w in weights.items():  # type: ignore[union-attr]
            if isinstance(w, (int, float)):
                w1[j] = float(w) / float(capacities)
            else:
                raise InvalidInstanceError(
                    "scalar capacity requires scalar per-item weights"
                )
    else:
        w1 = reduce_knapsacks_to_one(weights, capacities)  # type: ignore[arg-type]

    missing = stream.utility.ground_set - set(w1)
    if missing:
        raise InvalidInstanceError(
            f"items without weights: {sorted(map(repr, missing))[:5]}"
        )
    if density_divisor <= 0:
        raise BudgetError("density_divisor must be positive")

    n = stream.n
    half = n // 2

    if gen.random() < 0.5:
        # Heads: chase the single best feasible item.
        window = dynkin_threshold(n)
        best_seen = -math.inf
        for pos, a in enumerate(stream):
            if w1[a] > 1.0:
                continue
            score = stream.oracle.value(frozenset({a}))
            if pos < window:
                best_seen = max(best_seen, score)
            elif score >= best_seen:
                return SecretaryResult(
                    selected=frozenset({a}), traces=[], strategy="best-singleton"
                )
        return SecretaryResult(selected=frozenset(), traces=[], strategy="best-singleton")

    # Tails: estimate OPT on the first half, density-filter the second.
    first_half = []
    it = iter(stream)
    for pos, a in enumerate(it):
        first_half.append(a)
        if pos + 1 >= half:
            break
    opt_hat = offline_knapsack_estimate(stream.oracle, w1, first_half)
    bar = opt_hat / density_divisor

    selected: set = set()
    load = 0.0
    value = stream.oracle.value(frozenset())
    for a in it:
        w = w1[a]
        if load + w > 1.0:
            continue
        gain = stream.oracle.value(frozenset(selected | {a})) - value
        if w > 0 and gain / w >= bar and gain > 0:
            selected.add(a)
            load += w
            value = stream.oracle.value(frozenset(selected))
        elif w == 0 and gain > 0:
            selected.add(a)
            value = stream.oracle.value(frozenset(selected))
    return SecretaryResult(selected=frozenset(selected), traces=[], strategy="density")
