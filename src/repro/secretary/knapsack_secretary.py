"""Section 3.4 — the submodular secretary problem with knapsack constraints.

Two pieces, mirroring the paper exactly:

* :func:`reduce_knapsacks_to_one` — Lemma 3.4.1's reduction: scale every
  knapsack to capacity 1 and give item ``j`` the single weight
  ``w'_j = max_i w_ij / C_i``.  Any feasible set of the reduced
  instance is feasible originally, and the reduction loses at most a
  ``4l`` factor of value, giving Theorem 3.1.3's O(l) ratio.

* :func:`knapsack_submodular_secretary` — the single-knapsack online
  rule: flip a coin; on heads try to hire the single most valuable
  feasible item (classical rule); on tails observe the first half
  without hiring, estimate OPT offline on it (density greedy + best
  singleton — a constant-factor estimate standing in for the Lee et al.
  offline subroutine the paper cites), then hire any second-half item
  whose marginal-value density beats ``OPT_hat / 6``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Sequence

import numpy as np

from repro.core.kernels import evaluator_for
from repro.core.submodular import SetFunction
from repro.errors import BudgetError, InvalidInstanceError
from repro.rng import as_generator
from repro.secretary.classical import dynkin_threshold
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import SecretaryResult

__all__ = ["reduce_knapsacks_to_one", "knapsack_submodular_secretary", "offline_knapsack_estimate"]


def reduce_knapsacks_to_one(
    weights: Mapping[Hashable, Sequence[float]],
    capacities: Sequence[float],
) -> Dict[Hashable, float]:
    """Collapse ``l`` knapsacks into one of capacity 1 (Lemma 3.4.1).

    ``weights[j][i]`` is item j's weight in knapsack i.  Returns the
    reduced per-item weight ``w'_j = max_i w_ij / C_i``.  The reduction
    is online-safe: each item's reduced weight depends only on its own
    weights, so it can be computed at arrival time.
    """
    caps = [float(c) for c in capacities]
    if not caps or any(c <= 0 for c in caps):
        raise InvalidInstanceError(f"capacities must be positive, got {caps}")
    items = list(weights)
    if not items:
        return {}
    try:
        # One vectorized pass for the common well-formed case; a ragged
        # weight matrix falls back to the per-item loop below for its
        # precise error report.
        matrix = np.array([weights[j] for j in items], dtype=float)
    except ValueError:
        matrix = None
    if matrix is not None and matrix.ndim == 2 and matrix.shape[1] == len(caps):
        if (matrix < 0).any():
            j = items[int(np.argmax((matrix < 0).any(axis=1)))]
            raise InvalidInstanceError(f"item {j!r} has negative weight")
        reduced_arr = (matrix / np.array(caps)).max(axis=1)
        return dict(zip(items, reduced_arr.tolist()))
    reduced: Dict[Hashable, float] = {}
    for j in items:
        ws = [float(w) for w in weights[j]]
        if len(ws) != len(caps):
            raise InvalidInstanceError(
                f"item {j!r} has {len(ws)} weights for {len(caps)} knapsacks"
            )
        if any(w < 0 for w in ws):
            raise InvalidInstanceError(f"item {j!r} has negative weight")
        reduced[j] = max(w / c for w, c in zip(ws, caps))
    return reduced


def offline_knapsack_estimate(
    utility: SetFunction,
    weights: Mapping[Hashable, float],
    items: Sequence[Hashable],
    capacity: float = 1.0,
) -> float:
    """Constant-factor offline estimate of the knapsack optimum on *items*.

    max(best feasible singleton, density-greedy value): the classical
    analysis gives value >= OPT/3 for monotone submodular utilities on a
    knapsack, which is all the online rule needs ("a constant factor
    estimation of OPT by looking at the first half").
    """
    feasible = [j for j in items if weights.get(j, math.inf) <= capacity]
    if not feasible:
        return 0.0
    # One batched pass for the singleton values, one per greedy round for
    # the density scan: with a kernel-backed utility each round is a
    # vectorized marginal pass; the naive fallback evaluates (and
    # counts) one oracle call per still-loadable candidate, exactly as
    # the original per-item loop did.
    evaluator = evaluator_for(utility)
    singles = evaluator.union_values(feasible)
    best_single = float(singles.max())

    chosen: set = set()
    load = 0.0
    value = evaluator.current_value

    if getattr(evaluator, "modular", False):
        # Modular (plain additive) utility: marginals never change, so
        # the per-round argmax is equivalent to one pass over items in
        # (density desc, arrival order) — an item that does not fit now
        # never fits later (the load only grows).  Densities reuse the
        # singleton values already queried above, so the query count
        # only shrinks.
        w_arr = np.array([float(weights[j]) for j in feasible])
        gains0 = singles - value
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(
                w_arr > 0, gains0 / np.where(w_arr > 0, w_arr, 1.0),
                np.where(gains0 > 0, math.inf, 0.0),
            )
        for i in np.argsort(-density, kind="stable"):
            if not density[i] > 0.0:
                break
            if load + w_arr[i] > capacity:
                continue
            chosen.add(feasible[i])
            load += float(w_arr[i])
        value = utility.value(frozenset(chosen)) if chosen else value
        return max(best_single, value)

    # Scan in the given item order: density ties then break by arrival
    # position, not by set-iteration (hash) order, keeping the estimate
    # reproducible across processes.
    remaining = list(feasible)
    while remaining:
        w_arr = np.array([weights[j] for j in remaining])
        loadable = np.flatnonzero(load + w_arr <= capacity)
        if not len(loadable):
            break
        cand = [remaining[i] for i in loadable]
        gains = evaluator.gains(cand)
        w = w_arr[loadable]
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(
                w > 0, gains / np.where(w > 0, w, 1.0),
                np.where(gains > 0, math.inf, 0.0),
            )
        best_local = int(np.argmax(density))
        if not density[best_local] > 0.0:
            break
        best_j = cand[best_local]
        chosen.add(best_j)
        load += weights[best_j]
        value = utility.value(frozenset(chosen))
        evaluator.advance(best_j, value)
        remaining.remove(best_j)
    return max(best_single, value)


def knapsack_submodular_secretary(
    stream: SecretaryStream,
    weights: Mapping[Hashable, Sequence[float]] | Mapping[Hashable, float],
    capacities: Sequence[float] | float = 1.0,
    *,
    rng=None,
    density_divisor: float = 6.0,
) -> SecretaryResult:
    """Theorem 3.1.3's O(l)-competitive algorithm.

    Accepts multi-knapsack inputs (``weights[j]`` a vector with
    *capacities* a matching sequence) or pre-reduced single-knapsack
    inputs (``weights[j]`` a float, *capacities* a float).
    """
    gen = as_generator(rng)

    if isinstance(capacities, (int, float)):
        w1: Dict[Hashable, float] = {}
        for j, w in weights.items():  # type: ignore[union-attr]
            if isinstance(w, (int, float)):
                w1[j] = float(w) / float(capacities)
            else:
                raise InvalidInstanceError(
                    "scalar capacity requires scalar per-item weights"
                )
    else:
        w1 = reduce_knapsacks_to_one(weights, capacities)  # type: ignore[arg-type]

    missing = stream.utility.ground_set - set(w1)
    if missing:
        raise InvalidInstanceError(
            f"items without weights: {sorted(map(repr, missing))[:5]}"
        )
    if density_divisor <= 0:
        raise BudgetError("density_divisor must be positive")

    n = stream.n
    half = n // 2

    if gen.random() < 0.5:
        # Heads: chase the single best feasible item.
        window = dynkin_threshold(n)
        best_seen = -math.inf
        for pos, a in enumerate(stream):
            if w1[a] > 1.0:
                continue
            score = stream.oracle.value(frozenset({a}))
            if pos < window:
                best_seen = max(best_seen, score)
            elif score >= best_seen:
                return SecretaryResult(
                    selected=frozenset({a}), traces=[], strategy="best-singleton"
                )
        return SecretaryResult(selected=frozenset(), traces=[], strategy="best-singleton")

    # Tails: estimate OPT on the first half, density-filter the second.
    first_half = []
    it = iter(stream)
    for pos, a in enumerate(it):
        first_half.append(a)
        if pos + 1 >= half:
            break
    opt_hat = offline_knapsack_estimate(stream.oracle, w1, first_half)
    bar = opt_hat / density_divisor

    selected: set = set()
    load = 0.0
    # Incremental marginals against the growing hired set (one counted
    # query per arrival, kernel-fast when the utility supports it).
    evaluator = evaluator_for(stream.oracle)
    value = evaluator.current_value
    for a in it:
        w = w1[a]
        if load + w > 1.0:
            continue
        gain = evaluator.gain1(a)
        if w > 0 and gain / w >= bar and gain > 0:
            selected.add(a)
            load += w
            value = stream.oracle.value(frozenset(selected))
            evaluator.advance(a, value)
        elif w == 0 and gain > 0:
            selected.add(a)
            value = stream.oracle.value(frozenset(selected))
            evaluator.advance(a, value)
    return SecretaryResult(selected=frozenset(selected), traces=[], strategy="density")
