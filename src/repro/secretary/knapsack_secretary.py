"""Section 3.4 — the submodular secretary problem with knapsack constraints.

Two pieces, mirroring the paper exactly:

* :func:`reduce_knapsacks_to_one` — Lemma 3.4.1's reduction: scale every
  knapsack to capacity 1 and give item ``j`` the single weight
  ``w'_j = max_i w_ij / C_i``.  Any feasible set of the reduced
  instance is feasible originally, and the reduction loses at most a
  ``4l`` factor of value, giving Theorem 3.1.3's O(l) ratio.

* :func:`knapsack_submodular_secretary` — Theorem 3.1.3's coin-flip
  rule, implemented as
  :class:`repro.online.policies.KnapsackSecretaryPolicy`: on heads try
  to hire the single most valuable feasible item (classical rule); on
  tails observe the first half without hiring, estimate OPT offline on
  it (:func:`offline_knapsack_estimate`, re-exported from
  :mod:`repro.online.runtime`), then hire any second-half item whose
  marginal-value density beats ``OPT_hat / 6``.  This wrapper performs
  the reduction, flips the coin, and drives the policy over the stream.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.online.driver import drive_stream
from repro.online.policies import KnapsackSecretaryPolicy
from repro.online.results import SecretaryResult
from repro.online.runtime import offline_knapsack_estimate
from repro.rng import as_generator
from repro.secretary.stream import SecretaryStream

__all__ = ["reduce_knapsacks_to_one", "knapsack_submodular_secretary", "offline_knapsack_estimate"]


def reduce_knapsacks_to_one(
    weights: Mapping[Hashable, Sequence[float]],
    capacities: Sequence[float],
) -> Dict[Hashable, float]:
    """Collapse ``l`` knapsacks into one of capacity 1 (Lemma 3.4.1).

    ``weights[j][i]`` is item j's weight in knapsack i.  Returns the
    reduced per-item weight ``w'_j = max_i w_ij / C_i``.  The reduction
    is online-safe: each item's reduced weight depends only on its own
    weights, so it can be computed at arrival time.
    """
    caps = [float(c) for c in capacities]
    if not caps or any(c <= 0 for c in caps):
        raise InvalidInstanceError(f"capacities must be positive, got {caps}")
    items = list(weights)
    if not items:
        return {}
    try:
        # One vectorized pass for the common well-formed case; a ragged
        # weight matrix falls back to the per-item loop below for its
        # precise error report.
        matrix = np.array([weights[j] for j in items], dtype=float)
    except ValueError:
        matrix = None
    if matrix is not None and matrix.ndim == 2 and matrix.shape[1] == len(caps):
        if (matrix < 0).any():
            j = items[int(np.argmax((matrix < 0).any(axis=1)))]
            raise InvalidInstanceError(f"item {j!r} has negative weight")
        reduced_arr = (matrix / np.array(caps)).max(axis=1)
        return dict(zip(items, reduced_arr.tolist()))
    reduced: Dict[Hashable, float] = {}
    for j in items:
        ws = [float(w) for w in weights[j]]
        if len(ws) != len(caps):
            raise InvalidInstanceError(
                f"item {j!r} has {len(ws)} weights for {len(caps)} knapsacks"
            )
        if any(w < 0 for w in ws):
            raise InvalidInstanceError(f"item {j!r} has negative weight")
        reduced[j] = max(w / c for w, c in zip(ws, caps))
    return reduced


def knapsack_submodular_secretary(
    stream: SecretaryStream,
    weights: Mapping[Hashable, Sequence[float]] | Mapping[Hashable, float],
    capacities: Sequence[float] | float = 1.0,
    *,
    rng=None,
    density_divisor: float = 6.0,
) -> SecretaryResult:
    """Theorem 3.1.3's O(l)-competitive algorithm.

    Accepts multi-knapsack inputs (``weights[j]`` a vector with
    *capacities* a matching sequence) or pre-reduced single-knapsack
    inputs (``weights[j]`` a float, *capacities* a float).
    """
    gen = as_generator(rng)

    if isinstance(capacities, (int, float)):
        w1: Dict[Hashable, float] = {}
        for j, w in weights.items():  # type: ignore[union-attr]
            if isinstance(w, (int, float)):
                w1[j] = float(w) / float(capacities)
            else:
                raise InvalidInstanceError(
                    "scalar capacity requires scalar per-item weights"
                )
    else:
        w1 = reduce_knapsacks_to_one(weights, capacities)  # type: ignore[arg-type]

    missing = stream.utility.ground_set - set(w1)
    if missing:
        raise InvalidInstanceError(
            f"items without weights: {sorted(map(repr, missing))[:5]}"
        )
    policy = KnapsackSecretaryPolicy(
        w1, heads=bool(gen.random() < 0.5), density_divisor=density_divisor
    )
    return drive_stream(stream, policy)
