"""Setuptools shim.

The execution environment has no `wheel` package (offline), so PEP 660
editable installs fail; this file enables the legacy develop-mode path:

    pip install -e . --no-use-pep517 --no-build-isolation

Plain `pip install -e .` works wherever `wheel` is available.
"""

from setuptools import setup

setup()
