"""Setuptools shim.

All package metadata lives in ``pyproject.toml`` (name/version,
``src/``-layout package discovery, the ``repro`` console script); this
file exists only because the execution environment has no ``wheel``
package (offline), so PEP 660 editable installs fail and the legacy
develop-mode path is the fallback:

    pip install -e . --no-use-pep517 --no-build-isolation

Plain `pip install -e .` works wherever `wheel` is available.
"""

from setuptools import setup

setup()
