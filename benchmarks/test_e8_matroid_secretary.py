"""E8 — Theorem 3.1.2: submodular matroid secretary, O(l log^2 r).

Measured: mean ratio achieved/OPT for partition and graphic matroids
across ranks, and for l in {1, 2} simultaneous matroids.  The theorem's
floor degrades as 1/(l log^2 r); the table prints it per row, and the
shape to observe is the measured mean staying above it with a sub-log^2
degradation on benign streams.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.matroids import GraphicMatroid, PartitionMatroid, UniformMatroid
from repro.rng import as_generator, spawn
from repro.secretary.matroid_secretary import matroid_submodular_secretary
from repro.secretary.stream import SecretaryStream
from repro.workloads.secretary_streams import coverage_utility

from conftest import emit

TRIALS = 40


def matroid_greedy_opt(fn, matroids):
    """Offline greedy respecting all matroids (the benchmark OPT proxy)."""
    chosen: set = set()
    value = 0.0
    while True:
        best, best_gain = None, 0.0
        for e in fn.ground_set - chosen:
            if not all(m.is_independent(chosen | {e}) for m in matroids):
                continue
            gain = fn.value(frozenset(chosen | {e})) - value
            if gain > best_gain:
                best, best_gain = e, gain
        if best is None:
            return value
        chosen.add(best)
        value = fn.value(frozenset(chosen))


def run(make_matroids, label, master, n=96):
    ratios = []
    for child in spawn(master, TRIALS):
        fn = coverage_utility(n, n // 3, rng=child)
        matroids = make_matroids(fn)
        opt = matroid_greedy_opt(fn, matroids)
        stream = SecretaryStream(fn, rng=child)
        result = matroid_submodular_secretary(stream, matroids, rng=child)
        ratios.append(fn.value(result.selected) / opt if opt > 0 else 1.0)
    r = max(m.rank() for m in make_matroids(coverage_utility(n, n // 3, rng=0)))
    log_r = max(1.0, math.log2(max(2, r)))
    l = len(make_matroids(coverage_utility(n, n // 3, rng=0)))
    floor = 1.0 / (8 * math.e * l * log_r**2)
    stats = summarize(ratios)
    return [label, r, l, stats.mean, stats.ci95_low, floor]


def test_e8_matroid_families(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []

    def partition4(fn):
        blocks = {e: hash(e) % 4 for e in fn.ground_set}
        return [PartitionMatroid(blocks, {b: 2 for b in range(4)})]

    def partition8(fn):
        blocks = {e: hash(e) % 8 for e in fn.ground_set}
        return [PartitionMatroid(blocks, {b: 2 for b in range(8)})]

    def uniform16(fn):
        return [UniformMatroid(fn.ground_set, k=16)]

    def two_matroids(fn):
        blocks = {e: hash(e) % 4 for e in fn.ground_set}
        return [
            PartitionMatroid(blocks, {b: 3 for b in range(4)}),
            UniformMatroid(fn.ground_set, k=6),
        ]

    rows.append(run(partition4, "partition r=8", master))
    rows.append(run(partition8, "partition r=16", master))
    rows.append(run(uniform16, "uniform r=16", master))
    rows.append(run(two_matroids, "partition+uniform l=2", master))

    emit(
        format_table(
            ["matroid(s)", "rank r", "l", "mean ratio", "ci95 low", "theory floor"],
            rows,
            title="E8  Theorem 3.1.2 matroid submodular secretary",
        )
    )
    for _, _, _, mean, ci_low, floor in rows:
        assert ci_low >= floor

    fn = coverage_utility(96, 32, rng=1)
    blocks = {e: hash(e) % 4 for e in fn.ground_set}
    matroids = [PartitionMatroid(blocks, {b: 2 for b in range(4)})]
    benchmark(
        lambda: matroid_submodular_secretary(
            SecretaryStream(fn, rng=2), matroids, rng=3
        )
    )


def test_e8_graphic_matroid(benchmark, master_seed):
    """Graphic-matroid instance: utility over edges, forests feasible."""
    master = as_generator(master_seed + 8)
    gen = as_generator(0)
    n_vertices = 10
    edges = {}
    i = 0
    for u in range(n_vertices):
        for v in range(u + 1, n_vertices):
            if gen.random() < 0.5:
                edges[f"s{i}"] = (u, v)
                i += 1
    matroid = GraphicMatroid(edges)
    ratios = []
    for child in spawn(master, TRIALS):
        fn = coverage_utility(len(edges), 15, rng=child)
        opt = matroid_greedy_opt(fn, [matroid])
        stream = SecretaryStream(fn, rng=child)
        result = matroid_submodular_secretary(stream, [matroid], rng=child)
        assert matroid.is_independent(result.selected)
        ratios.append(fn.value(result.selected) / opt if opt > 0 else 1.0)
    stats = summarize(ratios)
    r = matroid.rank()
    floor = 1.0 / (8 * math.e * max(1.0, math.log2(r)) ** 2)
    emit(
        format_table(
            ["rank r", "mean ratio", "ci95 low", "theory floor"],
            [[r, stats.mean, stats.ci95_low, floor]],
            title="E8b  graphic matroid secretary",
        )
    )
    assert stats.ci95_low >= floor

    fn = coverage_utility(len(edges), 15, rng=5)
    benchmark(
        lambda: matroid_submodular_secretary(SecretaryStream(fn, rng=6), [matroid], rng=7)
    )
