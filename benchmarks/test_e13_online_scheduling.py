"""E13 — the online scheduling bridge + the robust top-k rule.

Extension experiments (the paper sketches both without evaluation):

* online processor selection — Algorithm 1 applied to the Section 2.2
  matching utility (the Chapter 3 motivation made concrete); measured
  competitive ratio vs. the hindsight greedy fleet, floor 1/(7e);
* gamma-oblivious top-k — one run of the robust rule scored
  simultaneously against three different non-increasing weightings.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.functions import AdditiveFunction
from repro.rng import as_generator, spawn
from repro.scheduling.instance import Job
from repro.scheduling.intervals import AwakeInterval
from repro.secretary.online_scheduling import (
    ProcessorMarket,
    ProcessorUtility,
    online_processor_selection,
)
from repro.secretary.robust import gamma_objective, robust_topk_secretary
from repro.secretary.stream import SecretaryStream

from conftest import emit

TRIALS = 30


def build_market(rng, n_procs, n_jobs, horizon=12):
    gen = as_generator(rng)
    offers = {}
    for i in range(n_procs):
        start = int(gen.integers(horizon - 3))
        offers[f"vm{i}"] = (AwakeInterval(f"vm{i}", start, start + 2),)
    jobs = []
    for j in range(n_jobs):
        slots = set()
        for _ in range(3):
            p = f"vm{int(gen.integers(n_procs))}"
            iv = offers[p][0]
            slots.add((p, int(gen.integers(iv.start, iv.end + 1))))
        jobs.append(Job(f"job{j}", frozenset(slots)))
    return ProcessorMarket(offers=offers, jobs=tuple(jobs))


def hindsight(market, k):
    util = ProcessorUtility(market)
    chosen, value = set(), 0.0
    for _ in range(k):
        best, gain = None, 0.0
        for p in util.ground_set - chosen:
            g = util.value(frozenset(chosen | {p})) - value
            if g > gain:
                best, gain = p, g
        if best is None:
            break
        chosen.add(best)
        value = util.value(frozenset(chosen))
    return value


def test_e13_online_processor_selection(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    for n_procs, n_jobs, k in [(16, 12, 3), (24, 18, 5), (40, 30, 8)]:
        ratios = []
        for child in spawn(master, TRIALS):
            market = build_market(child, n_procs, n_jobs)
            opt = hindsight(market, k)
            result = online_processor_selection(market, k, rng=child)
            ratios.append(result.utility / opt if opt else 1.0)
        stats = summarize(ratios)
        rows.append([n_procs, n_jobs, k, stats.mean, stats.ci95_low, 1 / (7 * math.e)])
    emit(
        format_table(
            ["procs", "jobs", "k", "mean ratio", "ci95 low", "floor 1/(7e)"],
            rows,
            title="E13  online processor selection (Chapter 3 motivation)",
        )
    )
    for _, _, _, mean, ci_low, floor in rows:
        assert ci_low >= floor

    market = build_market(as_generator(0), 24, 18)
    benchmark(lambda: online_processor_selection(market, 5, rng=1))


def test_e13_robust_topk(benchmark, master_seed):
    master = as_generator(master_seed + 13)
    n, k = 60, 4
    values = {f"s{i}": float(i + 1) for i in range(n)}
    fn = AdditiveFunction(values)
    ranked = sorted(values.values(), reverse=True)
    gammas = {"max (1,0,0,0)": [1, 0, 0, 0], "sum (1,1,1,1)": [1, 1, 1, 1],
              "linear (4,3,2,1)": [4, 3, 2, 1]}
    totals = {name: 0.0 for name in gammas}
    trials = 150
    for child in spawn(master, trials):
        stream = SecretaryStream(fn, rng=child)
        result = robust_topk_secretary(stream, values, k)
        for name, g in gammas.items():
            totals[name] += gamma_objective(values, result.selected, g)
    rows = []
    for name, g in gammas.items():
        opt = sum(w * v for w, v in zip(g, ranked))
        rows.append([name, totals[name] / trials / opt])
    emit(
        format_table(
            ["gamma", "mean ratio vs. gamma-opt"],
            rows,
            title="E13b  gamma-oblivious top-k (one run, all objectives)",
        )
    )
    for _, ratio in rows:
        assert ratio >= 0.15

    stream_seed = as_generator(1)
    benchmark(
        lambda: robust_topk_secretary(SecretaryStream(fn, rng=stream_seed), values, k)
    )
