"""E12 — engineering ablation: lazy vs. plain greedy; incremental vs.
from-scratch matching oracles.

Not a paper claim — the design-choice audit DESIGN.md calls for.
Measured: oracle calls (plain vs. lazy on identical instances) and
wall-clock (incremental vs. plain solver engines), plus agreement of the
produced costs (all engines realise the same guarantee).  The solver
sweep runs through the batched experiment engine (:mod:`repro.engine`).
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.oracle import CountingOracle
from repro.engine import SweepSpec, run_sweep
from repro.rng import as_generator, spawn
from repro.scheduling.power import AffineCost
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import random_multi_interval_instance

from conftest import emit


def cover_instance(rng, n_items, n_sets):
    gen = as_generator(rng)
    covers, costs = {}, {}
    for i in range(n_sets):
        mask = gen.random(n_items) < 0.2
        covers[f"s{i}"] = {j for j in range(n_items) if mask[j]} or {0}
        costs[f"s{i}"] = float(0.5 + gen.random())
    covered = set().union(*covers.values())
    covers["s0"] = set(covers["s0"]) | (set(range(n_items)) - covered)
    return CoverageFunction(covers), covers, costs


def test_e12_lazy_oracle_savings(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    for n_items, n_sets in [(40, 30), (80, 60), (160, 120)]:
        plain_calls, lazy_calls = [], []
        for child in spawn(master, 5):
            fn, covers, costs = cover_instance(child, n_items, n_sets)
            subsets = {k: frozenset({k}) for k in covers}

            c1 = CountingOracle(fn)
            budgeted_greedy(
                BudgetedInstance(c1, subsets, costs),
                target=float(n_items), epsilon=1.0 / (n_items + 1),
            )
            plain_calls.append(c1.calls)

            c2 = CountingOracle(fn)
            lazy_budgeted_greedy(
                BudgetedInstance(c2, subsets, costs),
                target=float(n_items), epsilon=1.0 / (n_items + 1),
            )
            lazy_calls.append(c2.calls)
        p, l = summarize(plain_calls).mean, summarize(lazy_calls).mean
        rows.append([f"{n_items}x{n_sets}", p, l, p / l])
    emit(
        format_table(
            ["instance", "plain oracle calls", "lazy oracle calls", "speedup"],
            rows,
            title="E12  lazy vs. plain greedy (oracle-call counts)",
        )
    )
    for _, p, l, _ in rows:
        assert l <= p

    fn, covers, costs = cover_instance(0, 80, 60)
    subsets = {k: frozenset({k}) for k in covers}
    benchmark(
        lambda: lazy_budgeted_greedy(
            BudgetedInstance(fn, subsets, costs), target=80.0, epsilon=1.0 / 81
        )
    )


def test_e12_solver_engines(benchmark, master_seed):
    """Engine-run sweep over the three solvers; identical schedules required."""
    sweep = SweepSpec(
        families=("multi",),
        grid=((15, 3, 24), (30, 4, 40), (50, 4, 60)),
        methods=("plain", "lazy", "incremental"),
        trials=3,
        master_seed=master_seed + 1,
    )
    result = run_sweep(sweep)
    # All engines produce equally good schedules on every instance.
    assert result.methods_agree(), "engines disagree on some instance"

    rows = []
    agg = {(r["n_jobs"], r["method"]): r for r in result.aggregate()}
    for n_jobs, procs, horizon in sweep.grid:
        plain = agg[(n_jobs, "plain")]["mean_time"]
        lazy = agg[(n_jobs, "lazy")]["mean_time"]
        incr = agg[(n_jobs, "incremental")]["mean_time"]
        rows.append([f"n={n_jobs} p={procs}", plain, lazy, incr, plain / incr])
    emit(
        format_table(
            ["instance", "plain s", "lazy s", "incremental s", "incr speedup"],
            rows,
            title="E12b  solver engines (same guarantee, different work)",
        )
    )

    inst = random_multi_interval_instance(30, 4, 40, cost_model=AffineCost(2.0), rng=0)
    benchmark(lambda: schedule_all_jobs(inst, method="incremental"))
