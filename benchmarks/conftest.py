"""Shared helpers for the experiment benchmarks.

Every benchmark both (a) times a representative solve via
pytest-benchmark and (b) prints the experiment's table — the same
rows EXPERIMENTS.md records — so `pytest benchmarks/ --benchmark-only -s`
regenerates the full evaluation.
"""

from __future__ import annotations

import pytest


def emit(table: str) -> None:
    """Print an experiment table (visible with -s / captured otherwise)."""
    print("\n" + table + "\n")


@pytest.fixture(scope="session")
def master_seed() -> int:
    """One seed to rule the whole benchmark run (reproducibility)."""
    return 20100612  # SPAA 2010 nod
