"""E5 — Appendix .1: Set-Cover hardness anchor and greedy log factor.

Paper claims: (a) one-interval nonuniform-processor scheduling *is* Set
Cover (Theorem .1.2), so no o(log n) approximation exists; (b) the
framework's greedy specialises to the classical H_n-approximate greedy.
Measured: on planted instances, the greedy's cost/OPT grows like the
harmonic number's shape and never exceeds it; the scheduling reduction
reproduces the set-cover greedy cost exactly.
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.scheduling.setcover import (
    greedy_set_cover,
    harmonic_number,
    random_set_cover_instance,
    set_cover_to_scheduling,
)
from repro.scheduling.solver import schedule_all_jobs

from conftest import emit

SIZES = [20, 60, 120, 240]
TRIALS = 6


def test_e5_greedy_log_factor(benchmark, master_seed):
    rows = []
    master = as_generator(master_seed)
    for n in SIZES:
        ratios = []
        for child in spawn(master, TRIALS):
            planted = max(3, n // 12)
            sc = random_set_cover_instance(
                n, planted + 14, planted_cover_size=planted, density=0.12, rng=child
            )
            result = greedy_set_cover(sc)
            ratios.append(result.cost / planted)  # planted cover costs `planted`
        stats = summarize(ratios)
        rows.append([n, stats.mean, stats.maximum, harmonic_number(n)])
    emit(
        format_table(
            ["universe n", "mean cost/OPT", "max cost/OPT", "H_n bound"],
            rows,
            title="E5  greedy Set Cover via Lemma 2.1.2 (planted instances)",
        )
    )
    for n, _, worst, h in rows:
        assert worst <= h + 1e-9

    sc = random_set_cover_instance(120, 24, planted_cover_size=10, rng=0)
    benchmark(lambda: greedy_set_cover(sc))


def test_e5_scheduling_reduction_equivalence(benchmark, master_seed):
    """Theorem .1.2's reduction: scheduling greedy == set-cover greedy."""
    master = as_generator(master_seed + 5)
    rows = []
    for child in spawn(master, 4):
        sc = random_set_cover_instance(24, 12, planted_cover_size=4, rng=child)
        cover_cost = greedy_set_cover(sc).cost
        inst = set_cover_to_scheduling(sc)
        sched_cost = schedule_all_jobs(inst).cost
        rows.append([len(sc.universe), len(sc.subsets), cover_cost, sched_cost])
    emit(
        format_table(
            ["elements", "sets", "set-cover greedy cost", "scheduling greedy cost"],
            rows,
            title="E5b  Appendix .1 reduction: scheduling == Set Cover",
        )
    )
    for _, _, cover_cost, sched_cost in rows:
        assert abs(cover_cost - sched_cost) <= 1e-9

    sc = random_set_cover_instance(24, 12, planted_cover_size=4, rng=9)
    inst = set_cover_to_scheduling(sc)
    benchmark(lambda: schedule_all_jobs(inst))
