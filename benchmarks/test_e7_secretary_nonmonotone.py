"""E7 — Theorem 3.1.1 (non-monotone): Algorithm 2 is 8e^2-competitive.

Measured: mean ratio achieved/OPT on G(n,p) cut streams; the floor is
1/(8e^2) ~ 0.0169.  Also reports the half-split strategy mix (the coin
must be fair for the Lemma 3.2.7 argument to apply).
"""

import math

from repro.analysis.ratio import offline_optimum_cardinality
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import nonmonotone_submodular_secretary
from repro.workloads.secretary_streams import cut_utility

from conftest import emit

BOUND = 1.0 / (8 * math.e**2)
TRIALS = 60


def test_e7_competitive_ratio(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    for n, k, p in [(60, 4, 0.3), (120, 8, 0.15), (120, 4, 0.5)]:
        ratios = []
        halves = {"first-half": 0, "second-half": 0}
        for child in spawn(master, TRIALS):
            fn = cut_utility(n, edge_probability=p, rng=child)
            opt, _ = offline_optimum_cardinality(fn, k, exhaustive_budget=0)
            stream = SecretaryStream(fn, rng=child)
            result = nonmonotone_submodular_secretary(stream, k, rng=child)
            halves[result.strategy] += 1
            ratios.append(fn.value(result.selected) / opt if opt > 0 else 1.0)
        stats = summarize(ratios)
        mix = halves["first-half"] / TRIALS
        rows.append([n, k, p, stats.mean, stats.ci95_low, mix, BOUND])
    emit(
        format_table(
            ["n", "k", "edge p", "mean ratio", "ci95 low", "first-half frac", "bound 1/(8e^2)"],
            rows,
            title="E7  Theorem 3.1.1 non-monotone secretary (cut streams)",
        )
    )
    for _, _, _, mean, ci_low, mix, bound in rows:
        assert ci_low >= bound
        assert 0.2 <= mix <= 0.8  # fair-ish coin across trials

    fn = cut_utility(120, edge_probability=0.3, rng=3)
    benchmark(
        lambda: nonmonotone_submodular_secretary(SecretaryStream(fn, rng=4), 6, rng=5)
    )
