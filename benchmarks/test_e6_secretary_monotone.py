"""E6 — Theorem 3.1.1 (monotone): Algorithm 1 is 1/(7e)-competitive.

Measured: mean competitive ratio (achieved value / offline optimum) on
additive, coverage, and facility-location streams across n and k; the
proven floor 1/(7e) ~ 0.0526 is printed for comparison.  The shape to
check: every measured mean sits above the floor, typically far above.

The online runs go through the batched experiment engine's
``secretary`` task adapter (:mod:`repro.engine.tasks`), whose records
carry the achieved value in ``utility`` and the offline benchmark in
``cost`` — so the per-record competitive ratio is ``utility / cost``.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.engine import SweepSpec, run_sweep
from repro.rng import as_generator, spawn
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary
from repro.workloads.secretary_streams import additive_values, coverage_utility

from conftest import emit

BOUND = 1.0 / (7 * math.e)
TRIALS = 60


def engine_ratio_stats(family, n, k, trials, master_seed, aux=0):
    """Competitive-ratio stats for one (family, n, k) engine sweep.

    *aux* is the family-specific size (coverage universe / facility
    clients); 0 takes the adapter default.
    """
    sweep = SweepSpec(
        task="secretary",
        families=(family,),
        grid=((n, k, aux),),
        methods=("monotone",),
        trials=trials,
        master_seed=master_seed,
    )
    records = run_sweep(sweep).records
    return summarize(
        [r.utility / r.cost if r.cost > 0 else 1.0 for r in records]
    )


def test_e6_competitive_ratio(benchmark, master_seed):
    rows = []
    for n, k in [(200, 4), (200, 16), (1000, 4), (1000, 16)]:
        stats = engine_ratio_stats("additive", n, k, TRIALS, master_seed)
        rows.append(["additive", n, k, stats.mean, stats.ci95_low, BOUND])

    for n, k in [(200, 4), (400, 8)]:
        stats = engine_ratio_stats("coverage", n, k, TRIALS, master_seed)
        rows.append(["coverage", n, k, stats.mean, stats.ci95_low, BOUND])

    # aux=40 clients: the facility experiment's historical definition.
    stats = engine_ratio_stats("facility", 150, 6, TRIALS, master_seed, aux=40)
    rows.append(["facility", 150, 6, stats.mean, stats.ci95_low, BOUND])

    emit(
        format_table(
            ["stream", "n", "k", "mean ratio", "ci95 low", "bound 1/(7e)"],
            rows,
            title="E6  Theorem 3.1.1 monotone submodular secretary",
        )
    )
    for _, _, _, mean, ci_low, bound in rows:
        assert ci_low >= bound  # comfortably above the proven floor

    fn = coverage_utility(400, 130, rng=1)
    benchmark(
        lambda: monotone_submodular_secretary(SecretaryStream(fn, rng=2), 8)
    )


def test_e6_baseline_comparison(benchmark, master_seed):
    """Algorithm 1 vs. naive online baselines — the "who wins" row."""
    from repro.secretary.baselines import (
        first_k_baseline,
        greedy_no_observation_baseline,
        random_k_baseline,
    )

    master = as_generator(master_seed + 6)
    n, k = 150, 5
    sums = {"algorithm1": 0.0, "first-k": 0.0, "random-k": 0.0, "greedy-no-obs": 0.0}
    for child in spawn(master, TRIALS):
        fn, values = additive_values(n, distribution="lognormal", rng=child)
        runs = {
            "algorithm1": monotone_submodular_secretary(
                SecretaryStream(fn, rng=child), k
            ),
            "first-k": first_k_baseline(SecretaryStream(fn, rng=child), k),
            "random-k": random_k_baseline(SecretaryStream(fn, rng=child), k, rng=child),
            "greedy-no-obs": greedy_no_observation_baseline(
                SecretaryStream(fn, rng=child), k
            ),
        }
        for name, result in runs.items():
            sums[name] += fn.value(result.selected)
    rows = [[name, total / TRIALS] for name, total in sums.items()]
    emit(
        format_table(
            ["strategy", "mean value (lognormal, n=150, k=5)"],
            rows,
            title="E6b  Algorithm 1 vs. naive online baselines",
        )
    )
    assert sums["algorithm1"] >= sums["first-k"]
    assert sums["algorithm1"] >= sums["random-k"]

    fn, _ = additive_values(n, rng=0)
    benchmark(lambda: first_k_baseline(SecretaryStream(fn, rng=1), k))
