"""E6 — Theorem 3.1.1 (monotone): Algorithm 1 is 1/(7e)-competitive.

Measured: mean competitive ratio (achieved value / offline optimum) on
additive, coverage, and facility-location streams across n and k; the
proven floor 1/(7e) ~ 0.0526 is printed for comparison.  The shape to
check: every measured mean sits above the floor, typically far above.
"""

import math

from repro.analysis.ratio import offline_optimum_cardinality
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    facility_utility,
)

from conftest import emit

BOUND = 1.0 / (7 * math.e)
TRIALS = 60


def run_family(make_utility, benchmark_opt, master, n, k):
    ratios = []
    for child in spawn(master, TRIALS):
        fn = make_utility(child)
        opt = benchmark_opt(fn, child)
        stream = SecretaryStream(fn, rng=child)
        result = monotone_submodular_secretary(stream, k)
        ratios.append(fn.value(result.selected) / opt if opt > 0 else 1.0)
    return summarize(ratios)


def test_e6_competitive_ratio(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    for n, k in [(200, 4), (200, 16), (1000, 4), (1000, 16)]:
        def make_additive(child, n=n):
            fn, _ = additive_values(n, rng=child)
            return fn

        def opt_additive(fn, child, k=k):
            values = sorted((fn({e}) for e in fn.ground_set), reverse=True)
            return sum(values[:k])

        stats = run_family(make_additive, opt_additive, master, n, k)
        rows.append(["additive", n, k, stats.mean, stats.ci95_low, BOUND])

    for n, k in [(200, 4), (400, 8)]:
        def make_cov(child, n=n):
            return coverage_utility(n, n // 3, rng=child)

        def opt_cov(fn, child, k=k):
            value, _ = offline_optimum_cardinality(fn, k, exhaustive_budget=0)
            return value

        stats = run_family(make_cov, opt_cov, master, n, k)
        rows.append(["coverage", n, k, stats.mean, stats.ci95_low, BOUND])

    def make_fac(child):
        return facility_utility(150, 40, rng=child)

    def opt_fac(fn, child):
        value, _ = offline_optimum_cardinality(fn, 6, exhaustive_budget=0)
        return value

    stats = run_family(make_fac, opt_fac, master, 150, 6)
    rows.append(["facility", 150, 6, stats.mean, stats.ci95_low, BOUND])

    emit(
        format_table(
            ["stream", "n", "k", "mean ratio", "ci95 low", "bound 1/(7e)"],
            rows,
            title="E6  Theorem 3.1.1 monotone submodular secretary",
        )
    )
    for _, _, _, mean, ci_low, bound in rows:
        assert ci_low >= bound  # comfortably above the proven floor

    fn = coverage_utility(400, 130, rng=1)
    benchmark(
        lambda: monotone_submodular_secretary(SecretaryStream(fn, rng=2), 8)
    )


def test_e6_baseline_comparison(benchmark, master_seed):
    """Algorithm 1 vs. naive online baselines — the "who wins" row."""
    from repro.secretary.baselines import (
        first_k_baseline,
        greedy_no_observation_baseline,
        random_k_baseline,
    )

    master = as_generator(master_seed + 6)
    n, k = 150, 5
    sums = {"algorithm1": 0.0, "first-k": 0.0, "random-k": 0.0, "greedy-no-obs": 0.0}
    for child in spawn(master, TRIALS):
        fn, values = additive_values(n, distribution="lognormal", rng=child)
        runs = {
            "algorithm1": monotone_submodular_secretary(
                SecretaryStream(fn, rng=child), k
            ),
            "first-k": first_k_baseline(SecretaryStream(fn, rng=child), k),
            "random-k": random_k_baseline(SecretaryStream(fn, rng=child), k, rng=child),
            "greedy-no-obs": greedy_no_observation_baseline(
                SecretaryStream(fn, rng=child), k
            ),
        }
        for name, result in runs.items():
            sums[name] += fn.value(result.selected)
    rows = [[name, total / TRIALS] for name, total in sums.items()]
    emit(
        format_table(
            ["strategy", "mean value (lognormal, n=150, k=5)"],
            rows,
            title="E6b  Algorithm 1 vs. naive online baselines",
        )
    )
    assert sums["algorithm1"] >= sums["first-k"]
    assert sums["algorithm1"] >= sums["random-k"]

    fn, _ = additive_values(n, rng=0)
    benchmark(lambda: first_k_baseline(SecretaryStream(fn, rng=1), k))
