"""E2 — Theorem 2.2.1: schedule-all cost vs. certified optimum.

Paper claim: cost <= O(log n) * OPT.
Measured: cost/OPT across n and processor counts, with OPT certified by
branch and bound on small-candidate-pool instances; the proof bound
2*log2(n+1) is printed next to the measured worst case.

The greedy side runs through the batched experiment engine
(:mod:`repro.engine`); the exact reference rebuilds each record's
instance from its spec (deterministic by construction) and certifies it
locally.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.engine import SweepSpec, build_instance, run_sweep
from repro.rng import as_generator
from repro.scheduling.baselines import sequential_cheapest_interval
from repro.scheduling.exact import optimal_schedule_bruteforce
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import bursty_instance, small_certifiable_instance
from repro.scheduling.power import AffineCost

from conftest import emit

SWEEP = [
    (4, 1, 12, 10),
    (6, 2, 14, 12),
    (8, 2, 16, 14),
    (10, 3, 18, 15),
    (12, 3, 20, 16),
]
TRIALS = 8


def test_e2_ratio_vs_n(benchmark, master_seed):
    rows = []
    for n_jobs, n_procs, horizon, n_ivs in SWEEP:
        sweep = SweepSpec(
            families=("certifiable",),
            grid=((n_jobs, n_procs, horizon),),
            methods=("incremental",),
            trials=TRIALS,
            master_seed=master_seed,
            params=(("n_candidate_intervals", n_ivs),),
        )
        specs = sweep.expand()
        result = run_sweep(specs)
        ratios = []
        for spec, record in zip(specs, result.records):
            opt = optimal_schedule_bruteforce(build_instance(spec)).cost
            ratios.append(record.cost / opt)
        stats = summarize(ratios)
        bound = 2.0 * math.log2(n_jobs + 1)
        rows.append([n_jobs, n_procs, stats.mean, stats.maximum, bound])
    emit(
        format_table(
            ["n jobs", "procs", "mean cost/OPT", "max cost/OPT", "bound 2*log2(n+1)"],
            rows,
            title="E2  Theorem 2.2.1 schedule-all approximation ratio",
        )
    )
    for _, _, _, worst, bound in rows:
        assert worst <= bound + 1e-9

    inst = small_certifiable_instance(10, 3, 18, 15, rng=as_generator(master_seed))
    benchmark(lambda: schedule_all_jobs(inst))


def test_e2_baseline_gap(benchmark, master_seed):
    """Greedy vs. the always-on and per-job baselines on the same pool."""
    sweep = SweepSpec(
        families=("bursty",),
        grid=((6, 3, 40), (12, 3, 40), (18, 3, 40)),
        methods=("incremental",),
        trials=TRIALS,
        master_seed=master_seed + 2,
    )
    specs = sweep.expand()
    result = run_sweep(specs)
    by_n = {}
    for spec, record in zip(specs, result.records):
        inst = build_instance(spec)
        seq = sequential_cheapest_interval(inst).cost(inst)
        greedy_list, seq_list = by_n.setdefault(record.n_jobs, ([], []))
        greedy_list.append(record.cost)
        seq_list.append(seq)
    rows = [
        [n, summarize(greedy).mean, summarize(seq).mean]
        for n, (greedy, seq) in sorted(by_n.items())
    ]
    emit(
        format_table(
            ["n jobs", "greedy cost", "per-job baseline cost"],
            rows,
            title="E2b  interval sharing: greedy vs. myopic baseline (bursty)",
        )
    )
    for _, greedy_mean, seq_mean in rows:
        assert greedy_mean <= seq_mean + 1e-9

    inst = bursty_instance(12, 3, 40, cost_model=AffineCost(4.0), rng=0)
    benchmark(lambda: schedule_all_jobs(inst))
