"""E2 — Theorem 2.2.1: schedule-all cost vs. certified optimum.

Paper claim: cost <= O(log n) * OPT.
Measured: cost/OPT across n and processor counts, with OPT certified by
branch and bound on small-candidate-pool instances; the proof bound
2*log2(n+1) is printed next to the measured worst case.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.scheduling.exact import optimal_schedule_bruteforce
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import small_certifiable_instance

from conftest import emit

SWEEP = [
    (4, 1, 12, 10),
    (6, 2, 14, 12),
    (8, 2, 16, 14),
    (10, 3, 18, 15),
    (12, 3, 20, 16),
]
TRIALS = 8


def test_e2_ratio_vs_n(benchmark, master_seed):
    rows = []
    master = as_generator(master_seed)
    for n_jobs, n_procs, horizon, n_ivs in SWEEP:
        ratios = []
        for child in spawn(master, TRIALS):
            inst = small_certifiable_instance(
                n_jobs, n_procs, horizon, n_ivs, rng=child
            )
            opt = optimal_schedule_bruteforce(inst).cost
            got = schedule_all_jobs(inst).cost
            ratios.append(got / opt)
        stats = summarize(ratios)
        bound = 2.0 * math.log2(n_jobs + 1)
        rows.append([n_jobs, n_procs, stats.mean, stats.maximum, bound])
    emit(
        format_table(
            ["n jobs", "procs", "mean cost/OPT", "max cost/OPT", "bound 2*log2(n+1)"],
            rows,
            title="E2  Theorem 2.2.1 schedule-all approximation ratio",
        )
    )
    for _, _, _, worst, bound in rows:
        assert worst <= bound + 1e-9

    inst = small_certifiable_instance(10, 3, 18, 15, rng=as_generator(master_seed))
    benchmark(lambda: schedule_all_jobs(inst))


def test_e2_baseline_gap(benchmark, master_seed):
    """Greedy vs. the always-on and per-job baselines on the same pool."""
    from repro.scheduling.baselines import sequential_cheapest_interval
    from repro.workloads.jobs import bursty_instance
    from repro.scheduling.power import AffineCost

    master = as_generator(master_seed + 2)
    rows = []
    for n_jobs in (6, 12, 18):
        greedy_costs, seq_costs = [], []
        for child in spawn(master, TRIALS):
            inst = bursty_instance(
                n_jobs, 3, 40, n_bursts=3, burst_width=4,
                cost_model=AffineCost(4.0), rng=child,
            )
            greedy_costs.append(schedule_all_jobs(inst).cost)
            seq_costs.append(sequential_cheapest_interval(inst).cost(inst))
        rows.append(
            [n_jobs, summarize(greedy_costs).mean, summarize(seq_costs).mean]
        )
    emit(
        format_table(
            ["n jobs", "greedy cost", "per-job baseline cost"],
            rows,
            title="E2b  interval sharing: greedy vs. myopic baseline (bursty)",
        )
    )
    for _, greedy_mean, seq_mean in rows:
        assert greedy_mean <= seq_mean + 1e-9

    inst = bursty_instance(12, 3, 40, cost_model=AffineCost(4.0), rng=0)
    benchmark(lambda: schedule_all_jobs(inst))
