"""E11 — Theorem 3.6.1: the bottleneck rule hires the k best with
probability >= 1/e^{2k}.

Measured: success probability across k in {1, 2, 3} on well-separated
efficiency streams, against the theorem's floor; for k = 1 the rule is
the classical secretary and the measured rate should sit near 1/e.
"""

import math

from repro.analysis.tables import format_table
from repro.core.functions import AdditiveFunction
from repro.rng import as_generator, spawn
from repro.secretary.bottleneck import bottleneck_secretary
from repro.secretary.stream import SecretaryStream

from conftest import emit

TRIALS = 1500


def test_e11_success_probability(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    n = 30
    values = {f"s{i}": float(2**i % 9973 + i * 1000) for i in range(n)}
    fn = AdditiveFunction(values)
    for k in (1, 2, 3):
        hits = 0
        for child in spawn(master, TRIALS):
            stream = SecretaryStream(fn, rng=child)
            result = bottleneck_secretary(stream, values, k)
            hits += result.hired_top_k
        rate = hits / TRIALS
        floor = math.exp(-2 * k)
        rows.append([k, rate, floor, 1 / math.e if k == 1 else ""])
    emit(
        format_table(
            ["k", "measured P[top-k hired]", "floor 1/e^{2k}", "classical ref"],
            rows,
            title="E11  Theorem 3.6.1 bottleneck secretary",
        )
    )
    for k, rate, floor, _ in rows:
        assert rate >= floor
    # k = 1 should track the classical 1/e closely.
    assert abs(rows[0][1] - 1 / math.e) < 0.06

    stream_factory = lambda: SecretaryStream(fn, rng=0)
    benchmark(lambda: bottleneck_secretary(stream_factory(), values, 2))
