"""E9 — Theorem 3.1.3: knapsack-constrained secretary, O(l)-competitive.

Measured: mean ratio achieved/OPT for l in {1, 2, 4} knapsacks with
heterogeneous weights, OPT estimated by the offline density greedy on
the full (hindsight) stream.  Shape: degradation roughly linear in l,
always above the 1/(48 l) style floor the paper's constants give.
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.secretary.knapsack_secretary import (
    knapsack_submodular_secretary,
    offline_knapsack_estimate,
    reduce_knapsacks_to_one,
)
from repro.secretary.stream import SecretaryStream
from repro.workloads.secretary_streams import additive_values

from conftest import emit

TRIALS = 60
N = 80


def make_weights(fn, l, gen):
    # Sorted iteration: the RNG draws must land on the same elements in
    # every process, not in (hash-randomised) set order.
    return {
        e: [float(0.05 + 0.45 * gen.random()) for _ in range(l)]
        for e in sorted(fn.ground_set, key=repr)
    }


def test_e9_knapsack_sweep(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    for l in (1, 2, 4):
        ratios = []
        for child in spawn(master, TRIALS):
            fn, _ = additive_values(N, rng=child)
            weights = make_weights(fn, l, child)
            caps = [1.0] * l
            # Hindsight benchmark on the reduced single knapsack.
            reduced = reduce_knapsacks_to_one(weights, caps)
            opt = offline_knapsack_estimate(
                fn, reduced, sorted(fn.ground_set), capacity=1.0
            )
            stream = SecretaryStream(fn, rng=child)
            result = knapsack_submodular_secretary(stream, weights, caps, rng=child)
            # Feasibility invariant is part of the claim.
            for i in range(l):
                assert sum(weights[e][i] for e in result.selected) <= caps[i] + 1e-9
            ratios.append(fn.value(result.selected) / opt if opt > 0 else 1.0)
        stats = summarize(ratios)
        floor = 1.0 / (48.0 * l)
        rows.append([l, stats.mean, stats.ci95_low, floor])
    emit(
        format_table(
            ["knapsacks l", "mean ratio", "ci95 low", "theory floor ~1/(48l)"],
            rows,
            title="E9  Theorem 3.1.3 knapsack submodular secretary",
        )
    )
    for _, mean, ci_low, floor in rows:
        assert ci_low >= floor
    # Shape: more constraints should not help.
    assert rows[0][1] >= rows[-1][1] - 0.15

    fn, _ = additive_values(N, rng=1)
    gen = as_generator(2)
    weights = make_weights(fn, 2, gen)
    benchmark(
        lambda: knapsack_submodular_secretary(
            SecretaryStream(fn, rng=3), weights, [1.0, 1.0], rng=4
        )
    )
