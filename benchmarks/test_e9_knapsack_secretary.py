"""E9 — Theorem 3.1.3: knapsack-constrained secretary, O(l)-competitive.

Measured: mean ratio achieved/OPT for l in {1, 2, 4} knapsacks with
heterogeneous weights, OPT estimated by the offline density greedy on
the full (hindsight) stream.  Shape: degradation roughly linear in l,
always above the 1/(48 l) style floor the paper's constants give.

Runs go through the batched experiment engine's ``knapsack_secretary``
task adapter (:mod:`repro.engine.tasks`): each record carries the hired
value in ``utility``, the hindsight benchmark in ``cost``, and the
adapter itself asserts per-knapsack feasibility (a violation raises
instead of producing a data point).
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.engine import SweepSpec, run_sweep
from repro.rng import as_generator
from repro.secretary.knapsack_secretary import knapsack_submodular_secretary
from repro.secretary.stream import SecretaryStream
from repro.workloads.secretary_streams import additive_values, knapsack_weights

from conftest import emit

TRIALS = 60
N = 80


def test_e9_knapsack_sweep(benchmark, master_seed):
    rows = []
    for n_knapsacks in (1, 2, 4):
        sweep = SweepSpec(
            task="knapsack_secretary",
            families=("additive",),
            grid=((N, n_knapsacks, 0),),
            methods=("online",),
            trials=TRIALS,
            master_seed=master_seed,
        )
        records = run_sweep(sweep).records
        ratios = [r.utility / r.cost if r.cost > 0 else 1.0 for r in records]
        stats = summarize(ratios)
        value_mean = summarize([r.utility for r in records]).mean
        floor = 1.0 / (48.0 * n_knapsacks)
        rows.append([n_knapsacks, stats.mean, stats.ci95_low, value_mean, floor])
    emit(
        format_table(
            ["knapsacks l", "mean ratio", "ci95 low", "mean value",
             "theory floor ~1/(48l)"],
            rows,
            title="E9  Theorem 3.1.3 knapsack submodular secretary",
        )
    )
    for _, mean, ci_low, _, floor in rows:
        assert ci_low >= floor
    # Shape: adding constraints cannot increase the achievable hired
    # value.  (The *ratio* is not monotone in l — the hindsight OPT of
    # the reduced instance shrinks faster than the online value does.)
    values = [value_mean for _, _, _, value_mean, _ in rows]
    for smaller_l, larger_l in zip(values, values[1:]):
        assert larger_l <= smaller_l + 0.1

    fn, _ = additive_values(N, rng=1)
    weights = knapsack_weights(fn.ground_set, 2, rng=as_generator(2))
    benchmark(
        lambda: knapsack_submodular_secretary(
            SecretaryStream(fn, rng=3), weights, [1.0, 1.0], rng=4
        )
    )
