"""Reshard smoke: the S -> S' manifest transform, timed and verified.

Two groups of cells:

**Transform cells** (always run).  For each stream size, a sharded
session is suspended at n//2, hopped 2 -> 4 -> 2 through
:func:`repro.online.session.reshard_session` (salt kept, no progress
at the intermediate width), and resumed to completion; the resumed
hires must equal an uninterrupted sharded run's.  Each cell records
the manifest byte size and the wall time of one reshard hop — the
transform is O(n) replay of the partition epochs plus O(selected)
state carry, so hop time must stay a small fraction of the run time.

**Steal cell** (``--steal``).  A fleet of sharded tenants is prepared
with *skewed* lanes — one shard drained, the other untouched — and
checkpointed.  The same fleet is then resumed through a paced
:class:`~repro.online.serving.ServingLoop` twice: once statically and
once with ``autoscale=(2, 2)``, where the load-aware rebalancer
re-partitions each tenant's unconsumed suffix across both lanes
mid-serve.  The cell gates on at least one rebind firing and on the
autoscaled serve beating the static serve's wall time — work-stealing
must pay for itself on exactly the skew it exists for.

Usage::

    PYTHONPATH=src python benchmarks/reshard_smoke.py
    PYTHONPATH=src python benchmarks/reshard_smoke.py --steal \
        --output BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time

from repro.online.checkpoint import write_tenant_checkpoint
from repro.online.session import (
    reshard_session,
    resume_sharded_session,
    start_sharded_session,
)

SEED = 20100612
TRANSFORM_NS = (64, 256, 1024)
SHARDS = 2


def run_transform_cell(n: int) -> dict:
    """One 2 -> 4 -> 2 round-trip cell at stream size ``n``."""
    kwargs = dict(policy="monotone", family="additive", n=n, k=4,
                  seed=SEED, process="bursty", shards=SHARDS)
    t0 = time.perf_counter()
    straight = start_sharded_session(**kwargs).advance()
    run_seconds = time.perf_counter() - t0
    selected = sorted(map(str, straight.summary()["selected"]))

    suspended = start_sharded_session(**kwargs).advance(n // 2)
    checkpoint = json.loads(json.dumps(suspended.checkpoint(),
                                       allow_nan=False))
    manifest_bytes = len(json.dumps(checkpoint, sort_keys=True))

    t0 = time.perf_counter()
    grown = reshard_session(checkpoint, 2 * SHARDS)
    hop_seconds = time.perf_counter() - t0
    hopped = reshard_session(grown, SHARDS)

    resumed = resume_sharded_session(hopped).advance()
    resumed_selected = sorted(map(str, resumed.summary()["selected"]))
    return {
        "n": n,
        "ok": resumed.finished and resumed_selected == selected,
        "selected": selected,
        "resumed_selected": resumed_selected,
        "manifest_bytes": manifest_bytes,
        "run_seconds": run_seconds,
        "hop_seconds": hop_seconds,
    }


STEAL_TENANTS = 3
STEAL_N = 80
STEAL_PACE = 0.004


def _prepare_skewed_fleet(root: str) -> list:
    """Checkpoint STEAL_TENANTS skewed tenants under ``root``.

    Each tenant's lane 1 is drained to the end of its subsequence while
    lane 0 is untouched — the worst-case imbalance a static serve must
    then grind through on a single lane.
    """
    from repro.online.serving import TenantSpec

    specs = []
    for i in range(STEAL_TENANTS):
        tenant_id = f"skew-{i}"
        session = start_sharded_session(
            policy="monotone", family="additive", n=STEAL_N, k=4,
            seed=SEED + i, shards=SHARDS,
        )
        session.advance_shard(1)
        remaining = [r.n - r.cursor for r in session.run.runs]
        assert remaining[1] == 0 and remaining[0] > 2
        write_tenant_checkpoint(session.checkpoint(), root, tenant_id)
        specs.append(TenantSpec(tenant_id, policy="monotone",
                                family="additive", n=STEAL_N, k=4,
                                seed=SEED + i, shards=SHARDS))
    return specs


def _serve(specs, root: str, autoscale) -> dict:
    from repro.online.serving import ServingLoop

    loop = ServingLoop(
        specs, checkpoint_root=root, resume=True,
        pace_seconds=STEAL_PACE, autoscale=autoscale,
    )
    return asyncio.run(loop.serve_async(install_signals=False))


def run_steal_cell() -> dict:
    """Static vs autoscaled serve over the same skewed fleet."""
    with tempfile.TemporaryDirectory() as static_root, \
            tempfile.TemporaryDirectory() as elastic_root:
        static_specs = _prepare_skewed_fleet(static_root)
        elastic_specs = _prepare_skewed_fleet(elastic_root)

        static = _serve(static_specs, static_root, None)
        elastic = _serve(elastic_specs, elastic_root, (SHARDS, SHARDS))

    static_wall = static["totals"]["wall_seconds"]
    elastic_wall = elastic["totals"]["wall_seconds"]
    rebinds = elastic["totals"]["rebinds"]
    finished = (static["totals"]["finished"] == STEAL_TENANTS
                and elastic["totals"]["finished"] == STEAL_TENANTS)
    feasible = all(t["n_chosen"] <= 4 and t["value"] > 0
                   for t in elastic["tenants"].values())
    speedup = static_wall / max(elastic_wall, 1e-9)
    return {
        "tenants": STEAL_TENANTS,
        "n": STEAL_N,
        "pace_seconds": STEAL_PACE,
        "ok": finished and feasible and rebinds >= 1 and speedup > 1.0,
        "static_wall_seconds": static_wall,
        "elastic_wall_seconds": elastic_wall,
        "speedup": speedup,
        "rebinds": rebinds,
        "autoscale": [SHARDS, SHARDS],
        "note": ("each tenant starts with one drained and one untouched "
                 "lane; the rebalancer re-partitions the unconsumed "
                 "suffix across both lanes, so the paced serve finishes "
                 "in roughly half the single-lane wall time"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write results JSON here")
    parser.add_argument("--steal", action="store_true",
                        help="also run the work-stealing serve cell")
    args = parser.parse_args(argv)

    cells = [run_transform_cell(n) for n in TRANSFORM_NS]
    for c in cells:
        status = "ok " if c["ok"] else "FAIL"
        print(f"{status} reshard n={c['n']:>5} "
              f"manifest={c['manifest_bytes']:>6}B "
              f"hop={c['hop_seconds'] * 1e3:.2f}ms "
              f"run={c['run_seconds'] * 1e3:.1f}ms")
    ok = all(c["ok"] for c in cells)

    payload = {
        "format": "repro-bench-pr/1",
        "benchmark": "reshard-smoke",
        "shards": SHARDS,
        "hop": f"{SHARDS}>{2 * SHARDS}>{SHARDS}",
        "suspend_at": "n//2",
        "transform_cells": cells,
    }
    if args.steal:
        steal = run_steal_cell()
        payload["steal_cell"] = steal
        print(f"{'ok ' if steal['ok'] else 'FAIL'} steal "
              f"static={steal['static_wall_seconds']:.3f}s "
              f"elastic={steal['elastic_wall_seconds']:.3f}s "
              f"speedup={steal['speedup']:.2f}x "
              f"rebinds={steal['rebinds']}")
        ok = ok and steal["ok"]

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not ok:
        print("reshard smoke: FAILED", file=sys.stderr)
        return 1
    print("reshard smoke: all cells ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
