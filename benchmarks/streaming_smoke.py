"""Streaming smoke: every policy × every arrival process, tiny streams.

CI's ``streaming-smoke`` job runs this script on each push.  For each
(policy, process) pair it starts a session on a tiny workload, suspends
it mid-stream, JSON round-trips the checkpoint, resumes in-process, and
checks the resumed hires equal an uninterrupted run's — the end-to-end
contract of the online runtime, at smoke cost (a few seconds total).

Usage::

    PYTHONPATH=src python benchmarks/streaming_smoke.py [--output smoke.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.online.arrivals import arrival_process_names
from repro.online.session import SESSION_POLICIES, resume_session, start_session

N, K, SEED = 16, 3, 20100612


def run_pair(policy: str, process: str) -> dict:
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process)
    t0 = time.perf_counter()
    oneshot = start_session(**kwargs).advance()
    selected = sorted(map(str, oneshot.run.result().selected))

    suspended = start_session(**kwargs).advance(N // 2)
    checkpoint = json.loads(json.dumps(suspended.checkpoint(), allow_nan=False))
    resumed = resume_session(checkpoint).advance()
    resumed_selected = sorted(map(str, resumed.run.result().selected))

    ok = resumed.finished and resumed_selected == selected
    return {
        "policy": policy,
        "process": process,
        "ok": ok,
        "selected": selected,
        "resumed_selected": resumed_selected,
        "oracle_calls": oneshot.summary()["oracle_calls"],
        "wall_time": time.perf_counter() - t0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write results JSON here")
    args = parser.parse_args(argv)

    results = [
        run_pair(policy, process)
        for policy in SESSION_POLICIES
        for process in arrival_process_names()
    ]
    failures = [r for r in results if not r["ok"]]
    for r in results:
        status = "ok " if r["ok"] else "FAIL"
        print(f"{status} {r['policy']:<12} {r['process']:<15} "
              f"hired={len(r['selected'])} calls={r['oracle_calls']}")
    payload = {
        "pairs": len(results),
        "failures": len(failures),
        "results": results,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if failures:
        print(f"streaming smoke: {len(failures)} failing pairs", file=sys.stderr)
        return 1
    print(f"streaming smoke: all {len(results)} policy x process pairs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
